//! The certified wrapper: every token stream that leaves the lexing
//! subsystem is re-validated against the raw input and the spec.
//!
//! The maximal-munch driver is fast *extrinsically* verified code;
//! [`CertifiedLexer`] restores the paper's intrinsic-verification
//! contract at the subsystem boundary, the same move `lambek-lr` makes
//! for its parse trees. Two independent checks run on every emitted
//! stream:
//!
//! 1. **Tiling** — the lexeme spans concatenate *exactly* to the input:
//!    contiguous, in order, first at byte 0, last ending at
//!    `input.len()`, and each token's text is literally the bytes its
//!    span points at. This is the lexer-level analogue of the parse
//!    trees' "the yield is the input".
//! 2. **Membership** — each lexeme is re-matched against its rule's
//!    regex by the independent Brzozowski-derivative checker
//!    ([`regex_grammars::derivative::matches`]), which shares no code
//!    with the Thompson/determinize/minimize pipeline the driver runs
//!    on. A bug anywhere in that pipeline (or in the driver's
//!    backtracking) surfaces as a [`LexCertifyError`], never as a bad
//!    token reaching the parser.
//!
//! Both checks are *incremental*: [`LexCertifier`] carries the tiling
//! cursor as a running invariant and discharges the membership
//! obligation per token at its munch boundary, so [`CertifiedLexer::lex`]
//! and the streaming pipelines certify in O(lexeme) amortized work per
//! token instead of re-walking the whole stream at the end. The
//! re-match runs on [`LazyDerivMatcher`]s — the same derivatives,
//! memoized — and verdicts are cached per `(rule, lexeme)`.
//! [`CertifiedLexer::lex_full`] keeps the original whole-stream
//! re-validation as the slow differential reference.

use std::fmt;
use std::sync::{Arc, Mutex};

use regex_grammars::derivative::matches;
use regex_grammars::lazy::LazyDerivMatcher;

use crate::compile::LexAutomaton;
use crate::driver::{LexError, RawLexeme, Token, TokenStream};
use crate::fnv::FnvMap;
use crate::spec::LexSpec;

/// The outcome of a certified lex.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LexedOutcome {
    /// The input lexes; the stream has passed both certification
    /// checks.
    Tokens(TokenStream),
    /// The input does not lex; the error points at the offending byte.
    Reject(LexError),
}

impl LexedOutcome {
    /// The certified token stream, if the input lexed.
    pub fn tokens(&self) -> Option<&TokenStream> {
        match self {
            LexedOutcome::Tokens(t) => Some(t),
            LexedOutcome::Reject(_) => None,
        }
    }

    /// `true` when the input lexed.
    pub fn is_accept(&self) -> bool {
        matches!(self, LexedOutcome::Tokens(_))
    }
}

/// A violation of the lexer's certification contract: the driver
/// produced a token stream the independent checks refuse. This never
/// happens for a correctly compiled automaton; it is surfaced (rather
/// than trusted or panicked on) so callers can treat it as an internal
/// error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexCertifyError {
    /// What the re-validation found.
    pub message: String,
}

impl fmt::Display for LexCertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexer emitted an invalid token stream: {}", self.message)
    }
}

impl std::error::Error for LexCertifyError {}

/// A maximal-munch lexer whose every output is re-validated: spans must
/// tile the input and every lexeme must independently re-match its
/// rule's regex.
///
/// Cheap to clone (`Arc`-shared automaton) and `Send + Sync`.
///
/// # Examples
///
/// ```
/// use lambek_core::alphabet::Alphabet;
/// use lambek_lex::{CertifiedLexer, LexSpecBuilder};
///
/// let sigma = Alphabet::from_chars("ab ");
/// let spec = LexSpecBuilder::new(sigma)
///     .token("A", "aa*")?
///     .token("B", "b")?
///     .skip("WS", "  *")?
///     .build()?;
/// let lexer = CertifiedLexer::compile(spec);
/// let out = lexer.lex("aa b").unwrap();
/// let stream = out.tokens().expect("lexes");
/// assert_eq!(stream.yield_string().len(), 2); // A B — the skip is gone
/// # Ok::<(), lambek_lex::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CertifiedLexer {
    auto: LexAutomaton,
    /// One memoized derivative matcher per rule, shared by every
    /// certifier this lexer hands out — the lazily discovered
    /// derivative states persist across inputs.
    matchers: Arc<Vec<LazyDerivMatcher>>,
    /// Shared membership verdicts, one map per rule keyed by lexeme
    /// text. A lexeme's membership in a rule's regex is deterministic,
    /// so verdicts persist across inputs (the same reasoning that lets
    /// the derivative states persist) — in steady state a repeated
    /// lexeme certifies with a single hash lookup.
    verdicts: Arc<Vec<Mutex<FnvMap<String, bool>>>>,
}

impl CertifiedLexer {
    /// Compiles `spec` (Thompson → tagged determinize → minimize) and
    /// wraps it with the certification layer.
    pub fn compile(spec: LexSpec) -> CertifiedLexer {
        CertifiedLexer::from_automaton(LexAutomaton::compile(spec))
    }

    /// Wraps an already-compiled automaton.
    pub fn from_automaton(auto: LexAutomaton) -> CertifiedLexer {
        let sigma_len = auto.spec().alphabet().len();
        let matchers = auto
            .spec()
            .rules()
            .iter()
            .map(|r| LazyDerivMatcher::new(r.regex.clone(), sigma_len))
            .collect();
        let verdicts = auto
            .spec()
            .rules()
            .iter()
            .map(|_| Mutex::new(FnvMap::default()))
            .collect();
        CertifiedLexer {
            auto,
            matchers: Arc::new(matchers),
            verdicts: Arc::new(verdicts),
        }
    }

    /// The spec being served.
    pub fn spec(&self) -> &LexSpec {
        self.auto.spec()
    }

    /// The compiled automaton (introspection, streams, benchmarks).
    pub fn automaton(&self) -> &LexAutomaton {
        &self.auto
    }

    /// Lexes `input` and certifies the result, incrementally: each
    /// lexeme is checked at its munch boundary (span tiling as a
    /// running cursor, derivative re-match per token) rather than in a
    /// whole-stream pass at the end.
    ///
    /// # Errors
    ///
    /// [`LexCertifyError`] if the driver's output fails re-validation —
    /// impossible for a correctly compiled automaton, surfaced instead
    /// of trusted. A merely *unlexable* input is not an error; it comes
    /// back as [`LexedOutcome::Reject`].
    pub fn lex(&self, input: &str) -> Result<LexedOutcome, LexCertifyError> {
        let mut cert = self.certifier();
        let mut tokens = Vec::new();
        for item in self.auto.lexemes(input) {
            match item {
                Err(e) => return Ok(LexedOutcome::Reject(e)),
                Ok(t) => {
                    cert.check(input, &t)?;
                    tokens.push(t);
                }
            }
        }
        cert.finish(input)?;
        Ok(LexedOutcome::Tokens(TokenStream::from_tokens(tokens)))
    }

    /// [`CertifiedLexer::lex`] with the original whole-stream
    /// re-validation instead of the incremental certifier: the driver
    /// materializes the full token list, then [`CertifiedLexer::certify`]
    /// re-walks it from scratch. Kept as the slow reference the
    /// differential suites compare the incremental path against.
    ///
    /// # Errors
    ///
    /// As [`CertifiedLexer::lex`].
    pub fn lex_full(&self, input: &str) -> Result<LexedOutcome, LexCertifyError> {
        match self.auto.lex_raw(input) {
            Err(e) => Ok(LexedOutcome::Reject(e)),
            Ok(tokens) => {
                self.certify(input, &tokens)?;
                Ok(LexedOutcome::Tokens(TokenStream::from_tokens(tokens)))
            }
        }
    }

    /// Opens a fresh incremental certifier for one input: feed it every
    /// emitted token in order via [`LexCertifier::check`], then close
    /// the tiling with [`LexCertifier::finish`].
    pub fn certifier(&self) -> LexCertifier {
        LexCertifier {
            auto: self.auto.clone(),
            matchers: self.matchers.clone(),
            cursor: 0,
            index: 0,
            verdicts: self.verdicts.clone(),
        }
    }

    /// The certification pass on its own: checks that `tokens` tile
    /// `input` exactly and that every lexeme independently re-matches
    /// its rule's regex. Exposed so streaming consumers (which collect
    /// tokens incrementally) can run the same checks at `finish`.
    ///
    /// # Errors
    ///
    /// [`LexCertifyError`] describing the first violated obligation.
    pub fn certify(&self, input: &str, tokens: &[Token]) -> Result<(), LexCertifyError> {
        let spec = self.spec();
        let err = |message: String| Err(LexCertifyError { message });
        // (1) Spans tile the input exactly.
        let mut pos = 0usize;
        for (i, t) in tokens.iter().enumerate() {
            if t.span.start != pos {
                return err(format!(
                    "token {i} starts at byte {} but the previous lexeme ended at {pos}",
                    t.span.start
                ));
            }
            match input.get(t.span.start..t.span.end) {
                Some(slice) if slice == t.text => {}
                _ => {
                    return err(format!(
                        "token {i} claims {:?} at {} but the input disagrees",
                        t.text, t.span
                    ))
                }
            }
            pos = t.span.end;
        }
        if pos != input.len() {
            return err(format!(
                "lexemes cover only {pos} of {} input bytes",
                input.len()
            ));
        }
        // (2) Independent regex membership per lexeme, plus internal
        // consistency of the rule/symbol bookkeeping. Lexemes repeat
        // heavily (operators, short numerals), so verdicts are memoized
        // per (rule, text) within the pass — each *distinct* lexeme is
        // still re-derived from scratch.
        let mut verdicts: std::collections::HashMap<(usize, &str), bool> =
            std::collections::HashMap::new();
        for (i, t) in tokens.iter().enumerate() {
            let Some(rule) = spec.rules().get(t.rule) else {
                return err(format!("token {i} references unknown rule {}", t.rule));
            };
            if t.sym != spec.token_symbol(t.rule) {
                return err(format!(
                    "token {i} carries the wrong token-alphabet symbol for rule {:?}",
                    rule.name
                ));
            }
            let ok = match verdicts.get(&(t.rule, t.text.as_str())) {
                Some(&ok) => ok,
                None => {
                    let ok = spec
                        .alphabet()
                        .parse_str(&t.text)
                        .is_some_and(|w| matches(&rule.regex, &w));
                    verdicts.insert((t.rule, t.text.as_str()), ok);
                    ok
                }
            };
            if !ok {
                return err(format!(
                    "token {i} lexeme {:?} is not in rule {:?} (derivative re-match failed)",
                    t.text, rule.name
                ));
            }
        }
        Ok(())
    }
}

/// The incremental form of [`CertifiedLexer::certify`]: the same two
/// obligations — span tiling and independent regex membership —
/// discharged token by token as the driver emits them, instead of in a
/// whole-stream pass at the end.
///
/// The tiling check is a running byte cursor: each token must start
/// exactly where the previous lexeme ended and its text must be
/// literally the input bytes its span points at; [`LexCertifier::finish`]
/// closes the invariant by demanding the cursor reached the end of the
/// input. Membership re-matches each lexeme against its rule's regex on
/// a memoized derivative matcher, with verdicts cached per
/// `(rule, lexeme)` so repeated lexemes (operators, short numerals)
/// certify in O(1).
#[derive(Debug, Clone)]
pub struct LexCertifier {
    auto: LexAutomaton,
    matchers: Arc<Vec<LazyDerivMatcher>>,
    /// Where the next token must start: the running tiling invariant.
    cursor: usize,
    /// How many tokens have been checked (for error messages).
    index: usize,
    /// The lexer-wide verdict cache: one map per rule keyed by lexeme
    /// text — split per rule so lookups borrow `&str` with no
    /// allocation. Shared across certifiers (membership is
    /// deterministic), so in steady state a token certifies with one
    /// uncontended lock and one hash lookup.
    verdicts: Arc<Vec<Mutex<FnvMap<String, bool>>>>,
}

impl LexCertifier {
    /// Certifies the next emitted token against `input`, advancing the
    /// tiling cursor. `input` must be the same string (or a growing
    /// extension of it) on every call.
    ///
    /// # Errors
    ///
    /// [`LexCertifyError`] describing the first violated obligation;
    /// the messages match [`CertifiedLexer::certify`]'s.
    pub fn check(&mut self, input: &str, t: &Token) -> Result<(), LexCertifyError> {
        let i = self.index;
        let err = |message: String| Err(LexCertifyError { message });
        if t.span.start != self.cursor {
            return err(format!(
                "token {i} starts at byte {} but the previous lexeme ended at {}",
                t.span.start, self.cursor
            ));
        }
        match input.get(t.span.start..t.span.end) {
            Some(slice) if slice == t.text => {}
            _ => {
                return err(format!(
                    "token {i} claims {:?} at {} but the input disagrees",
                    t.text, t.span
                ))
            }
        }
        self.check_membership(i, t.rule, t.sym, &t.text)?;
        self.cursor = t.span.end;
        self.index += 1;
        Ok(())
    }

    /// Certifies the next emitted lexeme by *span*, reading the lexeme
    /// text straight out of `input`: the allocation-free form of
    /// [`LexCertifier::check`] the fused pipelines use, where no
    /// [`Token`] (and no owned text) ever exists. The obligations are
    /// identical — the span must start at the tiling cursor and denote
    /// a real slice of `input`, and that slice must independently
    /// re-match the rule's regex — only the "claimed text equals the
    /// slice" clause is vacuous, since the text *is* the slice.
    ///
    /// # Errors
    ///
    /// As [`LexCertifier::check`], with matching messages.
    pub fn check_raw(&mut self, input: &str, l: &RawLexeme) -> Result<(), LexCertifyError> {
        let i = self.index;
        if l.span.start != self.cursor {
            return Err(LexCertifyError {
                message: format!(
                    "token {i} starts at byte {} but the previous lexeme ended at {}",
                    l.span.start, self.cursor
                ),
            });
        }
        let Some(slice) = input.get(l.span.start..l.span.end) else {
            return Err(LexCertifyError {
                message: format!(
                    "token {i} claims span {} but the input has no such slice",
                    l.span
                ),
            });
        };
        self.check_membership(i, l.rule, l.sym, slice)?;
        self.cursor = l.span.end;
        self.index += 1;
        Ok(())
    }

    /// The membership half shared by [`LexCertifier::check`] and
    /// [`LexCertifier::check_raw`]: rule/symbol bookkeeping plus the
    /// independent derivative re-match, memoized per `(rule, text)`.
    /// The cache probe borrows `text` — a miss is the only path that
    /// allocates (to own the cache key).
    fn check_membership(
        &self,
        i: usize,
        rule_idx: usize,
        sym: Option<lambek_core::alphabet::Symbol>,
        text: &str,
    ) -> Result<(), LexCertifyError> {
        let spec = self.auto.spec();
        let err = |message: String| Err(LexCertifyError { message });
        let Some(rule) = spec.rules().get(rule_idx) else {
            return err(format!("token {i} references unknown rule {rule_idx}"));
        };
        if sym != spec.token_symbol(rule_idx) {
            return err(format!(
                "token {i} carries the wrong token-alphabet symbol for rule {:?}",
                rule.name
            ));
        }
        let cached = {
            let verdicts = self.verdicts[rule_idx]
                .lock()
                .expect("verdict cache poisoned");
            verdicts.get(text).copied()
        };
        {
            use std::sync::atomic::Ordering;
            let probe = if cached.is_some() {
                &crate::probes::VERDICT_HITS
            } else {
                &crate::probes::VERDICT_MISSES
            };
            probe.fetch_add(1, Ordering::Relaxed);
        }
        let ok = cached.unwrap_or_else(|| {
            // Compute outside the lock: the matcher memoizes its own
            // derivative states behind its own lock.
            let ok = spec
                .alphabet()
                .parse_str(text)
                .is_some_and(|w| self.matchers[rule_idx].matches(&w));
            self.verdicts[rule_idx]
                .lock()
                .expect("verdict cache poisoned")
                .insert(text.to_owned(), ok);
            ok
        });
        if !ok {
            return err(format!(
                "token {i} lexeme {text:?} is not in rule {:?} (derivative re-match failed)",
                rule.name
            ));
        }
        Ok(())
    }

    /// Closes the tiling invariant: the checked lexemes must cover the
    /// whole of `input`.
    ///
    /// # Errors
    ///
    /// [`LexCertifyError`] if bytes remain past the last lexeme.
    pub fn finish(&self, input: &str) -> Result<(), LexCertifyError> {
        if self.cursor != input.len() {
            return Err(LexCertifyError {
                message: format!(
                    "lexemes cover only {} of {} input bytes",
                    self.cursor,
                    input.len()
                ),
            });
        }
        Ok(())
    }

    /// How many tokens have been certified so far.
    pub fn checked(&self) -> usize {
        self.index
    }

    /// The tiling cursor: the byte offset the next token must start at.
    pub fn cursor(&self) -> usize {
        self.cursor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::Span;
    use crate::spec::LexSpecBuilder;
    use lambek_core::alphabet::Alphabet;

    fn lexer() -> CertifiedLexer {
        let sigma = Alphabet::from_chars("ab ");
        CertifiedLexer::compile(
            LexSpecBuilder::new(sigma)
                .token("A", "aa*")
                .unwrap()
                .token("B", "b")
                .unwrap()
                .skip("WS", "  *")
                .unwrap()
                .build()
                .unwrap(),
        )
    }

    #[test]
    fn accepted_streams_are_certified() {
        let lexer = lexer();
        let out = lexer.lex("aab aa b").unwrap();
        let ts = out.tokens().unwrap();
        // "aa" "b" " " "aa" " " "b" — the tiling includes the skips…
        assert_eq!(ts.tokens().len(), 6);
        // …and the yield drops them: A B A B.
        assert_eq!(ts.yield_string().len(), 4);
        assert!(out.is_accept());
    }

    #[test]
    fn rejections_are_outcomes_not_certify_errors() {
        let lexer = lexer();
        let out = lexer.lex("aXa").unwrap();
        assert!(!out.is_accept());
        assert!(out.tokens().is_none());
        match out {
            LexedOutcome::Reject(e) => assert_eq!(e.at, 1),
            LexedOutcome::Tokens(_) => panic!("X does not lex"),
        }
    }

    #[test]
    fn certify_catches_every_kind_of_corruption() {
        let lexer = lexer();
        let good = lexer.auto.lex_raw("ab").unwrap();
        assert!(lexer.certify("ab", &good).is_ok());

        // A gap.
        let mut bad = good.clone();
        bad.remove(0);
        assert!(lexer
            .certify("ab", &bad)
            .unwrap_err()
            .message
            .contains("ended"));

        // Wrong text for the span.
        let mut bad = good.clone();
        bad[0].text = "b".to_owned();
        assert!(lexer.certify("ab", &bad).is_err());

        // Truncated coverage.
        let mut bad = good.clone();
        bad.pop();
        assert!(lexer
            .certify("ab", &bad)
            .unwrap_err()
            .message
            .contains("cover"));

        // Lexeme not in its rule's language (derivative re-match).
        let mut bad = good.clone();
        bad[0].rule = 1; // claim "a" came from rule B
        bad[0].sym = lexer.spec().token_symbol(1);
        assert!(lexer
            .certify("ab", &bad)
            .unwrap_err()
            .message
            .contains("derivative"));

        // Unknown rule index.
        let mut bad = good.clone();
        bad[0].rule = 99;
        assert!(lexer.certify("ab", &bad).is_err());

        // Wrong token symbol.
        let mut bad = good;
        bad[0].sym = None;
        assert!(lexer.certify("ab", &bad).is_err());
    }

    #[test]
    fn empty_input_certifies_trivially() {
        let lexer = lexer();
        let out = lexer.lex("").unwrap();
        let ts = out.tokens().unwrap();
        assert!(ts.tokens().is_empty());
        assert!(ts.yield_string().is_empty());
        assert_eq!(ts.span_of_yield(0, 0), Span::empty(0));
    }
}
