//! # lambek-lex — certified lexing for raw-text pipelines
//!
//! Every parser backend in this workspace consumes a pre-symbolized
//! `GString`; this crate supplies the layer in front: a [`LexSpec`] of
//! prioritized token rules (plus skip rules for whitespace/comments)
//! compiled through the existing verified constructions — Thompson
//! (Construction 4.11) per rule, a tagged union NFA, tagged Rabin–Scott
//! determinization (Construction 4.10) and tag-refined minimization —
//! into a **tagged-accept DFA**: one dense-table automaton whose accept
//! states also say *which* rule matched, ties broken by rule priority.
//!
//! On top of the automaton sit a maximal-munch driver (one
//! left-to-right pass with last-accept backtracking, one-shot via
//! [`LexAutomaton::lex_raw`] or push-mode via [`LexStream`]) and the
//! [`CertifiedLexer`], which restores the paper's
//! intrinsic-verification contract at the new subsystem boundary: every
//! emitted [`TokenStream`] is re-validated — lexeme spans must tile the
//! raw input exactly, and each lexeme is independently re-matched
//! against its rule's regex by the Brzozowski-derivative checker. Since
//! PR 6 the re-validation is *incremental*: a [`LexCertifier`] carries
//! the tiling cursor as a running invariant and discharges membership
//! per token on memoized derivative matchers, so certification costs
//! O(lexeme) amortized at each munch boundary instead of a second
//! whole-input pass (`lex_full` keeps the old pass as the differential
//! reference). The
//! certified token-level `GString` then flows into the workspace's
//! certified CFG backends (LR or Earley), giving raw-text → certified
//! parse tree end to end; `lambek-engine` packages that composition as
//! `lexed_cfg` pipelines.
//!
//! ```
//! use lambek_lex::demo::{arith_spec, arith_token_cfg};
//! use lambek_lex::CertifiedLexer;
//! use lambek_lr::CertifiedLrParser;
//!
//! let lexer = CertifiedLexer::compile(arith_spec());
//! let parser = CertifiedLrParser::compile(&arith_token_cfg()).unwrap();
//! let out = lexer.lex("12 + (345 + 6)").unwrap();
//! let tokens = out.tokens().expect("lexes");
//! let tree = parser
//!     .parse(tokens.yield_string())
//!     .unwrap()
//!     .accepted()
//!     .cloned()
//!     .expect("parses");
//! // Intrinsic at both layers: the tree's yield is the token string,
//! // and the tokens' spans tile the raw text.
//! assert_eq!(&tree.flatten(), tokens.yield_string());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certified;
pub mod compile;
pub mod demo;
pub mod driver;
mod fnv;
pub mod parallel;
pub mod probes;
pub mod spec;

pub use certified::{CertifiedLexer, LexCertifier, LexCertifyError, LexedOutcome};
pub use compile::LexAutomaton;
pub use driver::{
    CharwiseLexemes, LexError, LexResumeError, LexStream, LexStreamState, Lexemes, RawLexeme,
    RawLexemes, SabotageLex, Span, Token, TokenSink, TokenStream,
};
pub use parallel::{chunk_starts, LexChunk};
pub use probes::LexProbes;
pub use spec::{class, literal, plus, LexRule, LexSpec, LexSpecBuilder, SpecError};
