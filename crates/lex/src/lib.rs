//! # lambek-lex — certified lexing for raw-text pipelines
//!
//! Every parser backend in this workspace consumes a pre-symbolized
//! `GString`; this crate supplies the layer in front: a [`LexSpec`] of
//! prioritized token rules (plus skip rules for whitespace/comments)
//! compiled through the existing verified constructions — Thompson
//! (Construction 4.11) per rule, a tagged union NFA, tagged Rabin–Scott
//! determinization (Construction 4.10) and tag-refined minimization —
//! into a **tagged-accept DFA**: one dense-table automaton whose accept
//! states also say *which* rule matched, ties broken by rule priority.
//!
//! On top of the automaton sit a maximal-munch driver (one
//! left-to-right pass with last-accept backtracking, one-shot via
//! [`LexAutomaton::lex_raw`] or push-mode via [`LexStream`]) and the
//! [`CertifiedLexer`], which restores the paper's
//! intrinsic-verification contract at the new subsystem boundary: every
//! emitted [`TokenStream`] is re-validated — lexeme spans must tile the
//! raw input exactly, and each lexeme is independently re-matched
//! against its rule's regex by the Brzozowski-derivative checker. The
//! certified token-level `GString` then flows into the workspace's
//! certified CFG backends (LR or Earley), giving raw-text → certified
//! parse tree end to end; `lambek-engine` packages that composition as
//! `lexed_cfg` pipelines.
//!
//! ```
//! use lambek_lex::demo::{arith_spec, arith_token_cfg};
//! use lambek_lex::CertifiedLexer;
//! use lambek_lr::CertifiedLrParser;
//!
//! let lexer = CertifiedLexer::compile(arith_spec());
//! let parser = CertifiedLrParser::compile(&arith_token_cfg()).unwrap();
//! let out = lexer.lex("12 + (345 + 6)").unwrap();
//! let tokens = out.tokens().expect("lexes");
//! let tree = parser
//!     .parse(tokens.yield_string())
//!     .unwrap()
//!     .accepted()
//!     .cloned()
//!     .expect("parses");
//! // Intrinsic at both layers: the tree's yield is the token string,
//! // and the tokens' spans tile the raw text.
//! assert_eq!(&tree.flatten(), tokens.yield_string());
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod certified;
pub mod compile;
pub mod demo;
pub mod driver;
pub mod spec;

pub use certified::{CertifiedLexer, LexCertifyError, LexedOutcome};
pub use compile::LexAutomaton;
pub use driver::{LexError, LexStream, Span, Token, TokenStream};
pub use spec::{LexRule, LexSpec, LexSpecBuilder, SpecError};
