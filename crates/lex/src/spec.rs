//! Lexical specifications: prioritized token rules over a character
//! alphabet.
//!
//! A [`LexSpec`] is an *ordered* list of rules `token name ← Regex` —
//! earlier rules have higher priority, which is how a keyword beats the
//! identifier rule that also matches it — plus *skip* rules (whitespace,
//! comments) whose matches are consumed but never reach the parser. The
//! spec induces two alphabets: the **character alphabet** its regexes
//! range over, and the **token alphabet** with one symbol per non-skip
//! rule, in rule order — the alphabet the downstream token-level grammar
//! must be stated over.

use std::fmt;

use lambek_core::alphabet::{Alphabet, Symbol};
use regex_grammars::ast::{parse_regex, Regex, RegexSyntaxError};

/// One lexical rule: a named regex, optionally marked as a skip rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexRule {
    /// The rule's name. For token rules this becomes a symbol of the
    /// token alphabet; for skip rules it only appears in diagnostics.
    pub name: String,
    /// The pattern, over the spec's character alphabet.
    pub regex: Regex,
    /// `true` for whitespace/comment rules: matches are consumed by the
    /// driver but excluded from the token-level yield.
    pub skip: bool,
}

/// Why a [`LexSpecBuilder`] rejected a rule or a whole spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The pattern did not parse.
    Syntax {
        /// The offending rule's name.
        rule: String,
        /// The parser's verdict.
        cause: RegexSyntaxError,
    },
    /// The rule's language contains ε. A nullable rule would let the
    /// maximal-munch driver emit zero-length tokens forever, so it is
    /// rejected at spec-construction time.
    Nullable {
        /// The offending rule's name.
        rule: String,
    },
    /// Two rules share a name (the token alphabet needs distinct names).
    Duplicate {
        /// The repeated name.
        rule: String,
    },
    /// The spec has no token (non-skip) rules, so it could never emit a
    /// token.
    NoTokenRules,
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::Syntax { rule, cause } => {
                write!(f, "rule {rule:?}: {cause}")
            }
            SpecError::Nullable { rule } => {
                write!(f, "rule {rule:?} matches the empty string")
            }
            SpecError::Duplicate { rule } => {
                write!(f, "duplicate rule name {rule:?}")
            }
            SpecError::NoTokenRules => write!(f, "spec has no token rules"),
        }
    }
}

impl std::error::Error for SpecError {}

/// Builds a [`LexSpec`] rule by rule, in priority order.
///
/// # Examples
///
/// ```
/// use lambek_core::alphabet::Alphabet;
/// use lambek_lex::spec::LexSpecBuilder;
///
/// let chars = Alphabet::from_chars("ifx ");
/// let spec = LexSpecBuilder::new(chars)
///     .token("IF", "if")? // keywords first: priority is rule order
///     .token("ID", "(i|f|x)(i|f|x)*")?
///     .skip("WS", "  *")?
///     .build()?;
/// assert_eq!(spec.token_alphabet().names(), ["IF", "ID"]);
/// # Ok::<(), lambek_lex::spec::SpecError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LexSpecBuilder {
    alphabet: Alphabet,
    rules: Vec<LexRule>,
}

impl LexSpecBuilder {
    /// Starts an empty spec over the given character alphabet.
    pub fn new(alphabet: Alphabet) -> LexSpecBuilder {
        LexSpecBuilder {
            alphabet,
            rules: Vec::new(),
        }
    }

    fn push(mut self, name: &str, regex: Regex, skip: bool) -> Result<LexSpecBuilder, SpecError> {
        if self.rules.iter().any(|r| r.name == name) {
            return Err(SpecError::Duplicate {
                rule: name.to_owned(),
            });
        }
        if regex.nullable() {
            return Err(SpecError::Nullable {
                rule: name.to_owned(),
            });
        }
        self.rules.push(LexRule {
            name: name.to_owned(),
            regex,
            skip,
        });
        Ok(self)
    }

    /// Appends a token rule with a concrete-syntax pattern (the syntax
    /// of [`regex_grammars::ast::parse_regex`]).
    ///
    /// # Errors
    ///
    /// [`SpecError::Syntax`] on a malformed pattern,
    /// [`SpecError::Nullable`] if the pattern accepts ε,
    /// [`SpecError::Duplicate`] on a repeated name.
    pub fn token(self, name: &str, pattern: &str) -> Result<LexSpecBuilder, SpecError> {
        let regex = parse_regex(&self.alphabet, pattern).map_err(|cause| SpecError::Syntax {
            rule: name.to_owned(),
            cause,
        })?;
        self.push(name, regex, false)
    }

    /// Appends a token rule with an already-built [`Regex`] (for
    /// patterns awkward in concrete syntax — large character classes,
    /// programmatically assembled literals).
    ///
    /// # Errors
    ///
    /// As [`LexSpecBuilder::token`], minus the syntax case.
    pub fn token_re(self, name: &str, regex: Regex) -> Result<LexSpecBuilder, SpecError> {
        self.push(name, regex, false)
    }

    /// Appends a skip rule (whitespace, comments) from concrete syntax.
    ///
    /// # Errors
    ///
    /// As [`LexSpecBuilder::token`].
    pub fn skip(self, name: &str, pattern: &str) -> Result<LexSpecBuilder, SpecError> {
        let regex = parse_regex(&self.alphabet, pattern).map_err(|cause| SpecError::Syntax {
            rule: name.to_owned(),
            cause,
        })?;
        self.push(name, regex, true)
    }

    /// Appends a skip rule from an already-built [`Regex`].
    ///
    /// # Errors
    ///
    /// As [`LexSpecBuilder::token_re`].
    pub fn skip_re(self, name: &str, regex: Regex) -> Result<LexSpecBuilder, SpecError> {
        self.push(name, regex, true)
    }

    /// Finishes the spec.
    ///
    /// # Errors
    ///
    /// [`SpecError::NoTokenRules`] if every rule is a skip rule (or
    /// there are none).
    pub fn build(self) -> Result<LexSpec, SpecError> {
        let token_names: Vec<String> = self
            .rules
            .iter()
            .filter(|r| !r.skip)
            .map(|r| r.name.clone())
            .collect();
        if token_names.is_empty() {
            return Err(SpecError::NoTokenRules);
        }
        let token_alphabet = Alphabet::new(&token_names);
        let mut token_syms = Vec::with_capacity(self.rules.len());
        let mut next = 0usize;
        for r in &self.rules {
            if r.skip {
                token_syms.push(None);
            } else {
                token_syms.push(Some(Symbol::from_index(next)));
                next += 1;
            }
        }
        Ok(LexSpec {
            alphabet: self.alphabet,
            rules: self.rules,
            token_alphabet,
            token_syms,
        })
    }
}

/// A complete, validated lexical specification.
///
/// Rule order is priority order: when two rules accept the same longest
/// match, the earlier rule wins (keywords before identifiers). Every
/// rule's language excludes ε by construction.
#[derive(Debug, Clone)]
pub struct LexSpec {
    alphabet: Alphabet,
    rules: Vec<LexRule>,
    token_alphabet: Alphabet,
    /// Per rule: its symbol in the token alphabet (`None` for skips).
    token_syms: Vec<Option<Symbol>>,
}

impl LexSpec {
    /// The character alphabet the rules' regexes range over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The rules, in priority order.
    pub fn rules(&self) -> &[LexRule] {
        &self.rules
    }

    /// The token alphabet: one symbol per non-skip rule, in rule order.
    /// A token-level grammar composed with this lexer must be stated
    /// over an alphabet equal to this one.
    pub fn token_alphabet(&self) -> &Alphabet {
        &self.token_alphabet
    }

    /// The token-alphabet symbol rule `rule` emits (`None` for skips).
    pub fn token_symbol(&self, rule: usize) -> Option<Symbol> {
        self.token_syms[rule]
    }

    /// The name of rule `rule`.
    pub fn rule_name(&self, rule: usize) -> &str {
        &self.rules[rule].name
    }

    /// A canonical, structure-determined rendering of the spec (rule
    /// names, skip flags, regexes by symbol index). Together with the
    /// character alphabet's identity this determines the spec — the
    /// engine interns it as the lexer half of its pipeline cache key.
    pub fn fingerprint(&self) -> String {
        use fmt::Write;
        let mut out = String::new();
        for r in &self.rules {
            let kind = if r.skip { "skip" } else { "token" };
            // `Regex`'s Display prints symbols by index, so the
            // rendering is stable under alphabet renamings that the
            // alphabet-id component of the key already distinguishes.
            let _ = writeln!(out, "{kind} {}\u{1f}{}", r.name, r.regex);
        }
        out
    }
}

/// A character-class regex: the alternation of the named single-char
/// symbols of `chars`, e.g. `class(&sigma, "0123456789")` for digits.
///
/// # Panics
///
/// Panics if `chars` is empty or contains a character that is not a
/// symbol of `alphabet`.
pub fn class(alphabet: &Alphabet, chars: &str) -> Regex {
    let mut it = chars.chars().map(|c| {
        Regex::Char(
            alphabet
                .symbol_of_char(c)
                .unwrap_or_else(|| panic!("{c:?} is not in the alphabet")),
        )
    });
    let first = it.next().expect("a class needs at least one character");
    it.fold(first, Regex::alt)
}

/// The literal word `text` as a regex (concatenation of its characters).
///
/// # Panics
///
/// Panics if `text` is empty or contains a character outside `alphabet`.
pub fn literal(alphabet: &Alphabet, text: &str) -> Regex {
    let mut it = text.chars().map(|c| {
        Regex::Char(
            alphabet
                .symbol_of_char(c)
                .unwrap_or_else(|| panic!("{c:?} is not in the alphabet")),
        )
    });
    let first = it.next().expect("a literal needs at least one character");
    it.fold(first, Regex::concat)
}

/// `r+` — one or more repetitions, as `r r*` (the concrete syntax has
/// no postfix `+`).
pub fn plus(r: Regex) -> Regex {
    Regex::concat(r.clone(), Regex::star(r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_orders_and_validates() {
        let sigma = Alphabet::from_chars("ab ");
        let spec = LexSpecBuilder::new(sigma.clone())
            .token("A", "aa*")
            .unwrap()
            .skip("WS", "  *")
            .unwrap()
            .token("B", "b")
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(spec.rules().len(), 3);
        assert_eq!(spec.token_alphabet().names(), ["A", "B"]);
        assert_eq!(spec.token_symbol(0), Some(Symbol::from_index(0)));
        assert_eq!(spec.token_symbol(1), None, "skips have no token symbol");
        assert_eq!(spec.token_symbol(2), Some(Symbol::from_index(1)));
        assert_eq!(spec.rule_name(1), "WS");
    }

    #[test]
    fn nullable_duplicate_and_empty_specs_are_rejected() {
        let sigma = Alphabet::from_chars("ab");
        assert_eq!(
            LexSpecBuilder::new(sigma.clone())
                .token("A", "a*")
                .unwrap_err(),
            SpecError::Nullable {
                rule: "A".to_owned()
            }
        );
        let dup = LexSpecBuilder::new(sigma.clone())
            .token("A", "a")
            .unwrap()
            .token("A", "b")
            .unwrap_err();
        assert_eq!(
            dup,
            SpecError::Duplicate {
                rule: "A".to_owned()
            }
        );
        assert_eq!(
            LexSpecBuilder::new(sigma.clone())
                .skip("WS", "a")
                .unwrap()
                .build()
                .unwrap_err(),
            SpecError::NoTokenRules
        );
        assert!(matches!(
            LexSpecBuilder::new(sigma).token("A", "(((").unwrap_err(),
            SpecError::Syntax { .. }
        ));
    }

    #[test]
    fn helpers_build_classes_literals_and_plus() {
        use regex_grammars::derivative::matches;
        let sigma = Alphabet::from_chars("abc0189");
        let digits = class(&sigma, "0189");
        let word = literal(&sigma, "abc");
        let num = plus(digits.clone());
        let m = |re: &Regex, s: &str| matches(re, &sigma.parse_str(s).unwrap());
        assert!(m(&digits, "0") && m(&digits, "9") && !m(&digits, "a"));
        assert!(m(&word, "abc") && !m(&word, "ab"));
        assert!(m(&num, "0") && m(&num, "0189") && !m(&num, ""));
    }

    #[test]
    fn fingerprints_separate_specs() {
        let sigma = Alphabet::from_chars("ab");
        let one = LexSpecBuilder::new(sigma.clone())
            .token("A", "a")
            .unwrap()
            .build()
            .unwrap();
        let two = LexSpecBuilder::new(sigma.clone())
            .token("A", "b")
            .unwrap()
            .build()
            .unwrap();
        let skipped = LexSpecBuilder::new(sigma.clone())
            .token("A", "a")
            .unwrap()
            .skip("B", "b")
            .unwrap()
            .build()
            .unwrap();
        let tokened = LexSpecBuilder::new(sigma)
            .token("A", "a")
            .unwrap()
            .token("B", "b")
            .unwrap()
            .build()
            .unwrap();
        assert_ne!(one.fingerprint(), two.fingerprint());
        assert_ne!(skipped.fingerprint(), tokened.fingerprint());
        assert_eq!(
            one.fingerprint(),
            LexSpecBuilder::new(Alphabet::from_chars("ab"))
                .token("A", "a")
                .unwrap()
                .build()
                .unwrap()
                .fingerprint()
        );
    }
}
