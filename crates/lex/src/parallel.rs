//! Speculative parallel chunked lexing: split the input at guessed
//! boundaries, scan every chunk independently with the byte-sliced
//! maximal-munch scanner, and join at the seams.
//!
//! Maximal munch is sequential on its face — where one lexeme ends is
//! where the next begins, so the token boundaries of chunk *k+1* depend
//! on all of chunk *k*. The classic way out is *speculation with
//! resynchronization*: each worker scans from a guessed (merely
//! char-boundary-snapped) start position, and in practice the munch
//! chain resynchronizes with the true token boundaries within a lexeme
//! or two. The join then only has to *replay* the sequential chain with
//! a memo:
//!
//! * the true chain is `s₀ = 0`, `sₖ₊₁ = end(scan(sₖ))` — one
//!   `scan_token` per lexeme, each depending only on its start
//!   position and the full input;
//! * every lexeme a chunk recorded was produced by exactly that
//!   `scan_token` at its recorded start over the *full* input (chunks
//!   bound where scans *begin*, never where they read), so whenever the
//!   replay's position equals a recorded lexeme start, determinism
//!   makes the chunk's entire remaining chain the true chain — splice
//!   it in O(1) per lexeme and jump to its end;
//! * only when the replay's position matches no recorded start (the
//!   seam-straddling lexemes of a chunk that guessed wrong) does the
//!   join re-munch with the scanner itself, which re-establishes the
//!   invariant at the next lexeme.
//!
//! A chunk's recorded *error* is trusted under the same rule: it is
//! returned only when the replayed trajectory actually reaches the
//! position where the chunk's scan died — a speculative error at a
//! misguessed position is simply never reached, and the re-munch path
//! reproduces any real one. The result is *observational equivalence*
//! with [`LexAutomaton::raw_lexemes`] — same lexemes, same spans, same
//! error — proven by the `prop_lex_parallel` differential suite.
//!
//! This module is engine-agnostic: [`LexAutomaton::lex_chunk`] is the
//! embarrassingly parallel piece (ship it to any worker pool — the
//! engine runs it on its persistent pool via `Engine::lex_str_parallel`)
//! and [`LexAutomaton::join_chunks`] is the cheap sequential join.

use crate::compile::LexAutomaton;
use crate::driver::{scan_token, LexError, RawLexeme, Span};

/// The result of speculatively scanning one chunk: the lexeme chain
/// from the chunk's (guessed) start position, and the error the scan
/// died on, if any. Produced by [`LexAutomaton::lex_chunk`], consumed
/// by [`LexAutomaton::join_chunks`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexChunk {
    /// The chunk's start offset (a char boundary).
    pub start: usize,
    /// The chunk's end offset: where scans stop *beginning* (lexemes
    /// may well end past it — the seam overlap the join resolves).
    pub end: usize,
    /// The maximal-munch chain scanned from `start`: contiguous
    /// lexemes, the first starting at `start`, each next at the
    /// previous one's end, the last being the first to start at or
    /// beyond `end`. Trustworthy exactly from the point the true token
    /// chain passes through one of their start offsets.
    pub lexemes: Vec<RawLexeme>,
    /// Set when the chunk's scan found a position from which no rule
    /// matches; the chain stops there. Speculative like the lexemes:
    /// the join honors it only if the true chain reaches `err.at`.
    pub err: Option<LexError>,
}

/// Splits `input` into at most `chunks` contiguous ranges of roughly
/// equal byte length, each start snapped *forward* to a char boundary
/// (never splitting a multi-byte scalar). Returns the start offsets;
/// chunk `k` covers `starts[k]..starts[k+1]` (the last runs to
/// `input.len()`). Always returns at least one start (`0`), and the
/// starts are strictly increasing — snapping that would collide two
/// starts drops the later one.
pub fn chunk_starts(input: &str, chunks: usize) -> Vec<usize> {
    let n = input.len();
    let chunks = chunks.max(1);
    let mut starts = vec![0usize];
    for k in 1..chunks {
        let mut b = n * k / chunks;
        while b < n && !input.is_char_boundary(b) {
            b += 1;
        }
        if b > *starts.last().expect("starts is never empty") && b < n {
            starts.push(b);
        }
    }
    starts
}

impl LexAutomaton {
    /// Speculatively scans one chunk: runs the byte-sliced maximal-munch
    /// scanner from `start` (which must be a char boundary of `input`),
    /// recording lexemes until one *starts* at or beyond `end` or the
    /// scan dies. Scans read the full input — a lexeme beginning before
    /// `end` is followed to wherever it really ends.
    ///
    /// Chunks are independent: this method touches no shared state and
    /// is the piece to fan out across worker threads.
    pub fn lex_chunk(&self, input: &str, start: usize, end: usize) -> LexChunk {
        let core = self.core();
        let mut lexemes = Vec::new();
        let mut err = None;
        let mut tally = crate::probes::ScanTally::default();
        let mut pos = start;
        while pos < end {
            let scan = scan_token(core, input, pos);
            tally.scan(&scan, pos, input.len());
            let Some((rule, end_at)) = scan.last else {
                err = Some(LexError {
                    at: pos,
                    found: input[pos..]
                        .chars()
                        .next()
                        .expect("a non-empty remainder has a first char"),
                });
                break;
            };
            tally.settled(&scan, input.len());
            lexemes.push(RawLexeme {
                rule,
                span: Span {
                    start: pos,
                    end: end_at,
                },
                sym: core.spec.token_symbol(rule),
            });
            pos = end_at;
        }
        LexChunk {
            start,
            end,
            lexemes,
            err,
        }
    }

    /// Joins speculatively scanned chunks into the sequential lexeme
    /// chain — the memoized replay described in the module docs. The
    /// chunks must be [`LexAutomaton::lex_chunk`] results over this
    /// same `input`, in order, tiling it (`chunks[0].start == 0`, each
    /// `end` the next `start`, the last `end == input.len()`).
    ///
    /// Work is O(spliced lexemes) plus one fresh `scan_token` per
    /// seam-straddling lexeme — on well-guessed seams, a handful of
    /// re-munches total regardless of input size.
    ///
    /// # Errors
    ///
    /// The [`LexError`] the sequential scan would produce, with the
    /// same offset and offending char.
    pub fn join_chunks(
        &self,
        input: &str,
        chunks: &[LexChunk],
    ) -> Result<Vec<RawLexeme>, LexError> {
        let core = self.core();
        let mut out: Vec<RawLexeme> =
            Vec::with_capacity(chunks.iter().map(|c| c.lexemes.len()).sum());
        let mut tally = crate::probes::ScanTally::default();
        let mut p = 0usize;
        for c in chunks {
            debug_assert!(p >= c.start, "replay can never lag a chunk's start");
            while p < c.end {
                // Memo hit: the true chain passes through a recorded
                // start, so the chunk's remaining chain IS the true
                // chain — splice it whole.
                if let Ok(i) = c.lexemes.binary_search_by_key(&p, |l| l.span.start) {
                    out.extend_from_slice(&c.lexemes[i..]);
                    p = c.lexemes.last().expect("found at index i").span.end;
                    if let Some(e) = &c.err {
                        // The chunk died where the true chain now
                        // stands: the error is real.
                        if e.at == p {
                            return Err(e.clone());
                        }
                    }
                    continue;
                }
                // Seam miss: re-munch one lexeme from the true position.
                let scan = scan_token(core, input, p);
                tally.scan(&scan, p, input.len());
                let Some((rule, end)) = scan.last else {
                    return Err(LexError {
                        at: p,
                        found: input[p..]
                            .chars()
                            .next()
                            .expect("a non-empty remainder has a first char"),
                    });
                };
                tally.settled(&scan, input.len());
                out.push(RawLexeme {
                    rule,
                    span: Span { start: p, end },
                    sym: core.spec.token_symbol(rule),
                });
                p = end;
            }
        }
        Ok(out)
    }

    /// Chunked lexing end to end on the calling thread: split via
    /// [`chunk_starts`], scan each chunk, join. Observationally equal
    /// to collecting [`LexAutomaton::raw_lexemes`] for every input and
    /// every chunk count — this is the harness the differential suites
    /// drive (and a fan-out caller replaces the loop's body with pool
    /// jobs, exactly like `Engine::lex_str_parallel`).
    ///
    /// # Errors
    ///
    /// As [`LexAutomaton::raw_lexemes`].
    pub fn lex_raw_chunked(&self, input: &str, chunks: usize) -> Result<Vec<RawLexeme>, LexError> {
        let starts = chunk_starts(input, chunks);
        let scanned: Vec<LexChunk> = starts
            .iter()
            .enumerate()
            .map(|(k, &s)| {
                let end = starts.get(k + 1).copied().unwrap_or(input.len());
                self.lex_chunk(input, s, end)
            })
            .collect();
        self.join_chunks(input, &scanned)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LexSpecBuilder;
    use lambek_core::alphabet::Alphabet;

    fn arith() -> LexAutomaton {
        LexAutomaton::compile(crate::demo::arith_spec())
    }

    #[test]
    fn chunk_starts_snap_to_char_boundaries() {
        let s = "aß∂aßa"; // 1+2+3+1+2+1 bytes
        for n in 1..8 {
            let starts = chunk_starts(s, n);
            assert_eq!(starts[0], 0);
            for w in starts.windows(2) {
                assert!(w[0] < w[1]);
            }
            for &b in &starts {
                assert!(s.is_char_boundary(b), "{b} in {starts:?}");
            }
        }
        assert_eq!(chunk_starts("", 4), vec![0]);
    }

    #[test]
    fn chunked_equals_sequential_on_arith() {
        let auto = arith();
        let input = "12 + (345 + 6) + 78";
        let sequential: Vec<RawLexeme> = auto
            .raw_lexemes(input)
            .collect::<Result<_, _>>()
            .expect("lexes");
        for chunks in 1..10 {
            assert_eq!(
                auto.lex_raw_chunked(input, chunks).expect("lexes"),
                sequential,
                "{chunks} chunks"
            );
        }
    }

    #[test]
    fn chunked_errors_match_sequential() {
        let auto = arith();
        let input = "12 + X + 34";
        let seq_err = auto
            .raw_lexemes(input)
            .collect::<Result<Vec<_>, _>>()
            .expect_err("X does not lex");
        for chunks in 1..8 {
            assert_eq!(
                auto.lex_raw_chunked(input, chunks)
                    .expect_err("X does not lex"),
                seq_err,
                "{chunks} chunks"
            );
        }
    }

    #[test]
    fn seams_inside_maximal_munch_lookahead_resync() {
        // One rule "aa" and one "b": chunk seams landing mid-"aa" force
        // the speculative chain to desync and the join to re-munch.
        let sigma = Alphabet::from_chars("ab");
        let auto = LexAutomaton::compile(
            LexSpecBuilder::new(sigma)
                .token("AA", "aa")
                .unwrap()
                .token("B", "b")
                .unwrap()
                .build()
                .unwrap(),
        );
        let input = "aabaaaab";
        let sequential: Vec<RawLexeme> = auto.raw_lexemes(input).collect::<Result<_, _>>().unwrap();
        for chunks in 1..input.len() + 2 {
            assert_eq!(
                auto.lex_raw_chunked(input, chunks).unwrap(),
                sequential,
                "{chunks} chunks"
            );
        }
        // "aab" + odd run of a's: error position must match too.
        let bad = "aabaaab";
        let seq_err = auto
            .raw_lexemes(bad)
            .collect::<Result<Vec<_>, _>>()
            .unwrap_err();
        for chunks in 1..bad.len() + 2 {
            assert_eq!(auto.lex_raw_chunked(bad, chunks).unwrap_err(), seq_err);
        }
    }
}
