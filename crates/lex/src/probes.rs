//! Process-global hot-path probes for the lexing layer.
//!
//! These are *throughput* counters, not per-request metrics: plain
//! relaxed `AtomicU64` statics, incremented by the scan drivers and the
//! certifier, readable at any time via [`snapshot`]. They are
//! process-wide (all lexers and engines in the process share them) and
//! monotone — the interesting quantities are deltas between snapshots.
//!
//! Cost discipline: the per-byte scanner loop is never touched. Scan
//! drivers accumulate into a stack-local tally (the crate-private
//! `ScanTally`) and flush it to
//! the statics once per driver call (or iterator drop), so the probe
//! cost is a handful of `fetch_add`s per *lex run*, not per byte or per
//! token. The certifier's verdict-cache probe is one `fetch_add` per
//! token — noise next to the hash lookup it annotates.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::driver::{Scan, ScanStop};

pub(crate) static SCAN_BYTES: AtomicU64 = AtomicU64::new(0);
pub(crate) static FAST_LANE_TOKENS: AtomicU64 = AtomicU64::new(0);
pub(crate) static FALLBACK_TOKENS: AtomicU64 = AtomicU64::new(0);
pub(crate) static BACKTRACKS: AtomicU64 = AtomicU64::new(0);
pub(crate) static VERDICT_HITS: AtomicU64 = AtomicU64::new(0);
pub(crate) static VERDICT_MISSES: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide lexing probes (see the
/// module docs for what is and is not counted).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LexProbes {
    /// Bytes read by the byte-sliced scanner, lookahead included
    /// (re-scans of a pending token count each time — this measures
    /// scan *work*, not input size).
    pub scan_bytes: u64,
    /// Lexemes whose scan stayed entirely in the ASCII fast lane.
    pub fast_lane_tokens: u64,
    /// Lexemes whose scan dropped to the char-level fallback at least
    /// once (non-ASCII input).
    pub fallback_tokens: u64,
    /// Maximal-munch backtracks: scans (or push-mode munches) that
    /// consumed lookahead past the token boundary they settled on.
    pub backtracks: u64,
    /// Certifier derivative-verdict cache hits.
    pub verdict_cache_hits: u64,
    /// Certifier derivative-verdict cache misses (full derivative
    /// re-match computed).
    pub verdict_cache_misses: u64,
}

/// Reads all lexing probes (relaxed; counters are individually exact,
/// mutually unsynchronized).
pub fn snapshot() -> LexProbes {
    LexProbes {
        scan_bytes: SCAN_BYTES.load(Ordering::Relaxed),
        fast_lane_tokens: FAST_LANE_TOKENS.load(Ordering::Relaxed),
        fallback_tokens: FALLBACK_TOKENS.load(Ordering::Relaxed),
        backtracks: BACKTRACKS.load(Ordering::Relaxed),
        verdict_cache_hits: VERDICT_HITS.load(Ordering::Relaxed),
        verdict_cache_misses: VERDICT_MISSES.load(Ordering::Relaxed),
    }
}

/// A stack-local accumulator the scan drivers batch probe updates in;
/// flushed to the global statics on drop, so every driver exit path
/// (including `?`) publishes exactly once.
#[derive(Debug, Default)]
pub(crate) struct ScanTally {
    bytes: u64,
    fast: u64,
    fallback: u64,
    backtracks: u64,
}

impl ScanTally {
    /// Accounts the bytes one `scan_token` read, starting at byte
    /// `start` of an `input_len`-byte input.
    #[inline]
    pub(crate) fn scan(&mut self, scan: &Scan, start: usize, input_len: usize) {
        self.bytes += (Self::stop_pos(scan, input_len) - start) as u64;
    }

    /// Accounts one token *settled* at the scan's last accept — called
    /// only by drivers that actually cut there (push-mode scans that
    /// stop at end-of-input leave the munch pending and must not call
    /// this).
    #[inline]
    pub(crate) fn settled(&mut self, scan: &Scan, input_len: usize) {
        if scan.fell_back {
            self.fallback += 1;
        } else {
            self.fast += 1;
        }
        if let Some((_, end)) = scan.last {
            if Self::stop_pos(scan, input_len) > end {
                self.backtracks += 1;
            }
        }
    }

    #[inline]
    fn stop_pos(scan: &Scan, input_len: usize) -> usize {
        match scan.stop {
            ScanStop::Dead(d) => d,
            ScanStop::EndOfInput => input_len,
        }
    }
}

impl Drop for ScanTally {
    fn drop(&mut self) {
        if self.bytes > 0 {
            SCAN_BYTES.fetch_add(self.bytes, Ordering::Relaxed);
        }
        if self.fast > 0 {
            FAST_LANE_TOKENS.fetch_add(self.fast, Ordering::Relaxed);
        }
        if self.fallback > 0 {
            FALLBACK_TOKENS.fetch_add(self.fallback, Ordering::Relaxed);
        }
        if self.backtracks > 0 {
            BACKTRACKS.fetch_add(self.backtracks, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::ScanStop;

    #[test]
    fn tally_classifies_scans() {
        let before = snapshot();
        {
            let mut t = ScanTally::default();
            // Clean fast-lane token: accepted at 4, died at 4.
            let clean = Scan {
                last: Some((0, 4)),
                stop: ScanStop::Dead(4),
                fell_back: false,
            };
            t.scan(&clean, 0, 10);
            t.settled(&clean, 10);
            // Backtracking fallback token: accepted at 6, died at 9.
            let overrun = Scan {
                last: Some((1, 6)),
                stop: ScanStop::Dead(9),
                fell_back: true,
            };
            t.scan(&overrun, 4, 10);
            t.settled(&overrun, 10);
            // Pending tail: no accept yet, ran out of input — bytes
            // only, no token.
            t.scan(
                &Scan {
                    last: None,
                    stop: ScanStop::EndOfInput,
                    fell_back: false,
                },
                6,
                10,
            );
        }
        let after = snapshot();
        assert_eq!(after.scan_bytes - before.scan_bytes, 4 + 5 + 4);
        assert_eq!(after.fast_lane_tokens - before.fast_lane_tokens, 1);
        assert_eq!(after.fallback_tokens - before.fallback_tokens, 1);
        assert_eq!(after.backtracks - before.backtracks, 1);
    }
}
