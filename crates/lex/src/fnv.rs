//! A minimal FNV-1a hasher for the certifier's verdict caches.
//!
//! The incremental certifier hashes one short lexeme per emitted token;
//! SipHash's keyed setup dominates at those lengths. FNV-1a is a few
//! multiplies for a short string and needs no per-map key material. Not
//! DoS-hardened — fine here, because the keys are lexemes the trusted
//! driver just produced, not attacker-chosen map insertions.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The classic 64-bit FNV-1a streaming hash.
#[derive(Debug, Default, Clone)]
pub(crate) struct Fnv1a(u64);

impl Hasher for Fnv1a {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut h = if self.0 == 0 {
            0xcbf2_9ce4_8422_2325
        } else {
            self.0
        };
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }
}

/// A `HashMap` keyed with [`Fnv1a`].
pub(crate) type FnvMap<K, V> = HashMap<K, V, BuildHasherDefault<Fnv1a>>;
