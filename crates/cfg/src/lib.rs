//! # lambek-cfg — context-free grammars as inductive linear types
//!
//! The context-free layer of the Dependent Lambek Calculus reproduction
//! (§4.2 of the paper):
//!
//! * [`grammar`] — CFGs and their μ-regular encoding into linear types;
//! * [`analysis`] — FIRST/FOLLOW fixpoints, the inputs of table-driven
//!   parser constructions (the LR layer consumes them);
//! * [`earley`] — the Earley baseline parser (recognition + derivation
//!   trees in the μ-regular shape, with explicit ambiguity reporting);
//! * [`dyck`] — the Dyck grammar (Fig. 13), its strong equivalence with
//!   the counter automaton's traces, and the verified Dyck parser
//!   (Theorem 4.13);
//! * [`expr`] — the arithmetic `Exp`/`Atom` grammar, its weak equivalence
//!   with the lookahead automaton's traces, and the verified expression
//!   parser (Theorem 4.14).

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analysis;
pub mod dyck;
pub mod earley;
pub mod expr;
pub mod grammar;
pub mod semantics;
