//! Context-free grammars and their encoding as inductive linear types.
//!
//! CFGs are equivalent to μ-regular expressions — regular expressions
//! with the Kleene star generalized to arbitrary least fixed points
//! (Leiß's theorem, cited in §4.2). [`Cfg::to_lambek`] realizes exactly
//! that encoding: one `μ` definition per nonterminal, one `⊕` summand per
//! production, the production body as a right-nested `⊗`. Parse trees of
//! the resulting grammar are *derivation trees* of the CFG:
//! `roll (σ production (sym₁, (sym₂, …)))`.

use std::fmt;

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::expr::{chr, mu, plus, seq, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;

/// A grammar symbol: terminal or nonterminal. `Ord` so constructions
/// that group by symbol (the LALR successor fan-out) can iterate in a
/// deterministic order — state numbering must not depend on hash seeds,
/// or two compiles of the same grammar would disagree on serialized
/// parser state (see the session-migration contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GSym {
    /// A terminal character.
    T(Symbol),
    /// A nonterminal, by index.
    N(usize),
}

/// One production: a nonterminal and its right-hand side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Production {
    /// The right-hand side (empty = ε-production).
    pub rhs: Vec<GSym>,
}

/// A context-free grammar.
#[derive(Debug, Clone)]
pub struct Cfg {
    alphabet: Alphabet,
    nonterminal_names: Vec<String>,
    /// `productions[n]` lists the alternatives of nonterminal `n`.
    productions: Vec<Vec<Production>>,
    start: usize,
    /// Memoized μ-regular encoding: [`Cfg::to_lambek`] is consulted on
    /// hot paths (the engine derives its interned cache key from it), so
    /// the encoding is built once per `Cfg` value. Clones made after the
    /// first encoding share the cached `Arc`.
    lambek: std::sync::OnceLock<Grammar>,
}

impl Cfg {
    /// Creates a CFG.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range, the name/production lists differ
    /// in length, or any production references an unknown nonterminal.
    pub fn new(
        alphabet: Alphabet,
        nonterminal_names: Vec<String>,
        productions: Vec<Vec<Production>>,
        start: usize,
    ) -> Cfg {
        assert_eq!(
            nonterminal_names.len(),
            productions.len(),
            "one production list per nonterminal"
        );
        assert!(start < productions.len(), "start nonterminal out of range");
        for alts in &productions {
            for p in alts {
                for sym in &p.rhs {
                    if let GSym::N(n) = sym {
                        assert!(*n < productions.len(), "unknown nonterminal {n}");
                    }
                }
            }
        }
        Cfg {
            alphabet,
            nonterminal_names,
            productions,
            start,
            lambek: std::sync::OnceLock::new(),
        }
    }

    /// The terminal alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of nonterminals.
    pub fn num_nonterminals(&self) -> usize {
        self.productions.len()
    }

    /// The start nonterminal.
    pub fn start(&self) -> usize {
        self.start
    }

    /// The display name of nonterminal `n`.
    pub fn name(&self, n: usize) -> &str {
        &self.nonterminal_names[n]
    }

    /// The alternatives of nonterminal `n`.
    pub fn alternatives(&self, n: usize) -> &[Production] {
        &self.productions[n]
    }

    /// The μ-regular encoding: the CFG as an inductive linear type whose
    /// parses are derivation trees (§4.2). Memoized: repeated calls (the
    /// engine keys its pipeline cache off this) return the shared
    /// canonical `Arc` without re-encoding.
    pub fn to_lambek(&self) -> Grammar {
        self.lambek
            .get_or_init(|| mu(self.to_lambek_system(), self.start))
            .clone()
    }

    /// The underlying `μ` system (one definition per nonterminal).
    pub fn to_lambek_system(&self) -> std::sync::Arc<MuSystem> {
        let defs = self
            .productions
            .iter()
            .map(|alts| {
                plus(
                    alts.iter()
                        .map(|p| {
                            seq(p.rhs.iter().map(|sym| match sym {
                                GSym::T(c) => chr(*c),
                                GSym::N(n) => var(*n),
                            }))
                        })
                        .collect(),
                )
            })
            .collect();
        MuSystem::new(defs, self.nonterminal_names.clone())
    }

    /// Builds the derivation parse tree for nonterminal `nt` via
    /// production `alt` with the given child trees (one per RHS symbol).
    ///
    /// # Panics
    ///
    /// Panics if the child count does not match the production.
    pub fn derivation(&self, nt: usize, alt: usize, children: Vec<ParseTree>) -> ParseTree {
        let prod = &self.productions[nt][alt];
        assert_eq!(
            children.len(),
            prod.rhs.len(),
            "one child tree per RHS symbol"
        );
        // Right-nested tensor, empty RHS = Unit — mirroring `seq`.
        let mut iter = children.into_iter().rev();
        let body = match iter.next() {
            None => ParseTree::Unit,
            Some(last) => iter.fold(last, |acc, t| ParseTree::pair(t, acc)),
        };
        ParseTree::roll(ParseTree::inj(alt, body))
    }

    /// Generates a random sentence of the grammar (leftmost derivation
    /// with depth-limited recursion), or `None` if the limit is hit.
    pub fn random_sentence(&self, seed: u64, max_depth: usize) -> Option<GString> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut out = GString::new();
        self.expand(&mut rng, self.start, max_depth, &mut out)
            .then_some(out)
    }

    fn expand(&self, rng: &mut impl rand::Rng, nt: usize, depth: usize, out: &mut GString) -> bool {
        if depth == 0 {
            return false;
        }
        let alts = &self.productions[nt];
        if alts.is_empty() {
            return false;
        }
        // Prefer shorter productions when shallow to encourage termination.
        let idx = rng.gen_range(0..alts.len());
        let order: Vec<usize> = (0..alts.len()).map(|i| (i + idx) % alts.len()).collect();
        'alts: for i in order {
            let checkpoint = out.len();
            for sym in &alts[i].rhs {
                let ok = match sym {
                    GSym::T(c) => {
                        out.push(*c);
                        true
                    }
                    GSym::N(n) => self.expand(rng, *n, depth - 1, out),
                };
                if !ok {
                    // Roll back and try the next alternative.
                    *out = GString::from_symbols(out.as_slice()[..checkpoint].to_vec());
                    continue 'alts;
                }
            }
            return true;
        }
        false
    }
}

impl fmt::Display for Cfg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (n, alts) in self.productions.iter().enumerate() {
            write!(f, "{} ::=", self.nonterminal_names[n])?;
            for (i, p) in alts.iter().enumerate() {
                if i > 0 {
                    write!(f, " |")?;
                }
                if p.rhs.is_empty() {
                    write!(f, " ε")?;
                }
                for sym in &p.rhs {
                    match sym {
                        GSym::T(c) => write!(f, " {}", self.alphabet.name(*c))?,
                        GSym::N(n) => write!(f, " {}", self.nonterminal_names[*n])?,
                    }
                }
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// The `aⁿbⁿ` grammar: `S ::= ε | a S b` — the simplest properly
/// context-free language, used across the test suite.
pub fn anbn(alphabet: &Alphabet, a: Symbol, b: Symbol) -> Cfg {
    Cfg::new(
        alphabet.clone(),
        vec!["S".to_owned()],
        vec![vec![
            Production { rhs: vec![] },
            Production {
                rhs: vec![GSym::T(a), GSym::N(0), GSym::T(b)],
            },
        ]],
        0,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::{all_strings, check_unambiguous};

    fn ab() -> (Alphabet, Symbol, Symbol) {
        let s = Alphabet::abc();
        (s.clone(), s.symbol("a").unwrap(), s.symbol("b").unwrap())
    }

    #[test]
    fn anbn_language() {
        let (s, a, b) = ab();
        let cfg = anbn(&s, a, b);
        let cg = CompiledGrammar::new(&cfg.to_lambek());
        for n in 0..5 {
            let w = s
                .parse_str(&format!("{}{}", "a".repeat(n), "b".repeat(n)))
                .unwrap();
            assert!(cg.recognizes(&w), "a^{n} b^{n}");
        }
        for no in ["a", "b", "ba", "aab", "abb", "abab"] {
            assert!(!cg.recognizes(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn anbn_is_unambiguous() {
        let (s, a, b) = ab();
        let cfg = anbn(&s, a, b);
        check_unambiguous(&cfg.to_lambek(), &s, 4).unwrap();
    }

    #[test]
    fn derivation_builds_valid_trees() {
        let (s, a, b) = ab();
        let cfg = anbn(&s, a, b);
        // S → a S b with S → ε inside: parses "ab".
        let inner = cfg.derivation(0, 0, vec![]);
        let t = cfg.derivation(0, 1, vec![ParseTree::Char(a), inner, ParseTree::Char(b)]);
        let w = s.parse_str("ab").unwrap();
        validate(&t, &cfg.to_lambek(), &w).unwrap();
    }

    #[test]
    fn random_sentences_are_in_the_language() {
        let (s, a, b) = ab();
        let cfg = anbn(&s, a, b);
        let cg = CompiledGrammar::new(&cfg.to_lambek());
        let mut produced = 0;
        for seed in 0..20 {
            if let Some(w) = cfg.random_sentence(seed, 8) {
                assert!(cg.recognizes(&w), "{w}");
                produced += 1;
            }
        }
        assert!(produced > 0, "generator should succeed sometimes");
        let _ = all_strings(&s, 0);
    }

    #[test]
    fn display_shows_productions() {
        let (s, a, b) = ab();
        let cfg = anbn(&s, a, b);
        let text = format!("{cfg}");
        assert!(text.contains("S ::="), "{text}");
        assert!(text.contains('ε'), "{text}");
    }
}
