//! Classical grammar analysis: FIRST and FOLLOW sets.
//!
//! These are the standard fixpoint computations over a [`Cfg`] that every
//! table-driven parser construction starts from (Knuth's LR(1) item-set
//! closure consumes FIRST; SLR-style constructions consume FOLLOW). They
//! complement the nullability fixpoint of
//! [`nullable_set`], which was previously the only analysis exposed
//! publicly:
//!
//! * [`first_sets`] — for each nonterminal `A`, the terminals `c` such
//!   that `A ⇒* c·…` (ε-membership is [`nullable_set`]'s job, so the sets
//!   here contain terminals only);
//! * [`follow_sets`] — for each nonterminal `A`, the terminals `c` such
//!   that `S ⇒* …·A·c·…`, plus whether `A` can occur at the very end of a
//!   sentential form (the "FOLLOW contains `$`" bit, kept separate so the
//!   sets stay in terms of real [`Symbol`]s);
//! * [`first_of_seq`] — FIRST of a sentence fragment `α` relative to a
//!   continuation set, the helper LR closure needs for `FIRST(β a)`.
//!
//! All three are exact (least fixpoints), independent of reachability,
//! and linear in practice for the grammar sizes this workspace handles.

use std::collections::BTreeSet;

use lambek_core::alphabet::Symbol;

use crate::earley::nullable_set;
use crate::grammar::{Cfg, GSym};

/// FIRST sets: `first[n]` is the set of terminals that can begin a string
/// derived from nonterminal `n`. ε is *not* represented here — a
/// nonterminal derives ε exactly when [`nullable_set`] says so.
///
/// # Examples
///
/// The Fig. 15 expression grammar: `FIRST(Exp) = FIRST(Atom) = {NUM, (}`.
///
/// ```
/// use lambek_cfg::analysis::first_sets;
/// use lambek_cfg::expr::exp_cfg;
/// use lambek_automata::lookahead::ArithTokens;
///
/// let t = ArithTokens::new();
/// let first = first_sets(&exp_cfg(&t));
/// assert!(first[0].contains(&t.num) && first[0].contains(&t.lp));
/// assert_eq!(first[0], first[1]);
/// ```
pub fn first_sets(cfg: &Cfg) -> Vec<BTreeSet<Symbol>> {
    let nullable = nullable_set(cfg);
    let mut first: Vec<BTreeSet<Symbol>> = vec![BTreeSet::new(); cfg.num_nonterminals()];
    loop {
        let mut changed = false;
        for nt in 0..cfg.num_nonterminals() {
            for prod in cfg.alternatives(nt) {
                for sym in &prod.rhs {
                    match sym {
                        GSym::T(c) => {
                            changed |= first[nt].insert(*c);
                            break;
                        }
                        GSym::N(m) => {
                            // first[nt] ⊇ first[m]; borrow-split via clone
                            // of the (small) source set.
                            let src = first[*m].clone();
                            for c in src {
                                changed |= first[nt].insert(c);
                            }
                            if !nullable[*m] {
                                break;
                            }
                        }
                    }
                }
            }
        }
        if !changed {
            return first;
        }
    }
}

/// FIRST of the fragment `rest` followed by any terminal in `cont`: the
/// terminals that can begin a string derived from `rest`, plus all of
/// `cont` when `rest` is nullable. This is the `FIRST(β a)` computation
/// of the LR(1) closure rule, exposed so table constructions outside this
/// crate do not re-derive it.
pub fn first_of_seq(
    rest: &[GSym],
    cont: &BTreeSet<Symbol>,
    first: &[BTreeSet<Symbol>],
    nullable: &[bool],
) -> BTreeSet<Symbol> {
    let mut out = BTreeSet::new();
    for sym in rest {
        match sym {
            GSym::T(c) => {
                out.insert(*c);
                return out;
            }
            GSym::N(m) => {
                out.extend(first[*m].iter().copied());
                if !nullable[*m] {
                    return out;
                }
            }
        }
    }
    out.extend(cont.iter().copied());
    out
}

/// Whether the fragment `rest` can derive ε: every symbol is a nullable
/// nonterminal (a terminal breaks nullability). The shared predicate
/// behind [`follow_sets`] and the LR closure's `FIRST(β a)` rule.
pub fn seq_nullable(rest: &[GSym], nullable: &[bool]) -> bool {
    rest.iter().all(|s| matches!(s, GSym::N(m) if nullable[*m]))
}

/// FOLLOW sets for every nonterminal, as computed by [`follow_sets`].
///
/// The conventional presentation puts a synthetic end-of-input marker `$`
/// into FOLLOW sets; here the marker is a separate boolean per
/// nonterminal ([`FollowSets::may_end_input`]) so the terminal sets stay
/// in terms of real alphabet [`Symbol`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowSets {
    terminals: Vec<BTreeSet<Symbol>>,
    end: Vec<bool>,
}

impl FollowSets {
    /// The terminals that can immediately follow nonterminal `nt` in a
    /// sentential form derived from the start symbol.
    pub fn terminals(&self, nt: usize) -> &BTreeSet<Symbol> {
        &self.terminals[nt]
    }

    /// Whether `nt` can occur at the end of a complete sentence — the
    /// "`$ ∈ FOLLOW(nt)`" bit of the textbook presentation.
    pub fn may_end_input(&self, nt: usize) -> bool {
        self.end[nt]
    }

    /// Number of nonterminals covered.
    pub fn len(&self) -> usize {
        self.terminals.len()
    }

    /// `true` when the grammar has no nonterminals (never the case for a
    /// well-formed [`Cfg`]).
    pub fn is_empty(&self) -> bool {
        self.terminals.is_empty()
    }
}

/// Computes FOLLOW sets by the textbook fixpoint: for every production
/// `A → α B β`, `FOLLOW(B) ⊇ FIRST(β)`, and when `β` is nullable,
/// `FOLLOW(B) ⊇ FOLLOW(A)`; the start symbol may end the input.
///
/// # Examples
///
/// The Fig. 15 expression grammar: `FOLLOW(Exp) = {)}`,
/// `FOLLOW(Atom) = {+, )}`, and both may end the input.
///
/// ```
/// use lambek_cfg::analysis::follow_sets;
/// use lambek_cfg::expr::exp_cfg;
/// use lambek_automata::lookahead::ArithTokens;
///
/// let t = ArithTokens::new();
/// let follow = follow_sets(&exp_cfg(&t));
/// assert!(follow.terminals(1).contains(&t.add));
/// assert!(follow.may_end_input(0) && follow.may_end_input(1));
/// ```
pub fn follow_sets(cfg: &Cfg) -> FollowSets {
    let nullable = nullable_set(cfg);
    let first = first_sets(cfg);
    let n = cfg.num_nonterminals();
    let mut terminals: Vec<BTreeSet<Symbol>> = vec![BTreeSet::new(); n];
    let mut end = vec![false; n];
    end[cfg.start()] = true;
    loop {
        let mut changed = false;
        for nt in 0..n {
            for prod in cfg.alternatives(nt) {
                for (i, sym) in prod.rhs.iter().enumerate() {
                    let GSym::N(b) = sym else { continue };
                    let beta = &prod.rhs[i + 1..];
                    let beta_first = first_of_seq(beta, &BTreeSet::new(), &first, &nullable);
                    for c in beta_first {
                        changed |= terminals[*b].insert(c);
                    }
                    if seq_nullable(beta, &nullable) {
                        let src = terminals[nt].clone();
                        for c in src {
                            changed |= terminals[*b].insert(c);
                        }
                        if end[nt] && !end[*b] {
                            end[*b] = true;
                            changed = true;
                        }
                    }
                }
            }
        }
        if !changed {
            return FollowSets { terminals, end };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyck::{dyck_cfg, Parens};
    use crate::expr::exp_cfg;
    use crate::grammar::{anbn, Production};
    use lambek_automata::lookahead::ArithTokens;
    use lambek_core::alphabet::Alphabet;

    /// Index constants matching `exp_cfg`: 0 = Exp, 1 = Atom.
    const EXP: usize = 0;
    const ATOM: usize = 1;

    #[test]
    fn fig15_first_sets() {
        let t = ArithTokens::new();
        let first = first_sets(&exp_cfg(&t));
        let expected: BTreeSet<_> = [t.num, t.lp].into_iter().collect();
        assert_eq!(first[EXP], expected, "FIRST(Exp) = {{NUM, (}}");
        assert_eq!(first[ATOM], expected, "FIRST(Atom) = {{NUM, (}}");
    }

    #[test]
    fn fig15_follow_sets() {
        let t = ArithTokens::new();
        let follow = follow_sets(&exp_cfg(&t));
        let exp_follow: BTreeSet<_> = [t.rp].into_iter().collect();
        let atom_follow: BTreeSet<_> = [t.add, t.rp].into_iter().collect();
        assert_eq!(follow.terminals(EXP), &exp_follow, "FOLLOW(Exp) = {{)}}");
        assert_eq!(
            follow.terminals(ATOM),
            &atom_follow,
            "FOLLOW(Atom) = {{+, )}}"
        );
        assert!(follow.may_end_input(EXP), "Exp is the start symbol");
        assert!(
            follow.may_end_input(ATOM),
            "Exp ⇒ Atom, so Atom can end the input"
        );
        assert_eq!(follow.len(), 2);
        assert!(!follow.is_empty());
    }

    #[test]
    fn dyck_first_and_follow() {
        let p = Parens::new();
        let cfg = dyck_cfg(&p);
        let first = first_sets(&cfg);
        assert_eq!(first[0], [p.open].into_iter().collect());
        let follow = follow_sets(&cfg);
        assert_eq!(follow.terminals(0), &[p.close].into_iter().collect());
        assert!(follow.may_end_input(0));
    }

    #[test]
    fn anbn_first_and_follow() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        assert_eq!(first_sets(&cfg)[0], [a].into_iter().collect());
        let follow = follow_sets(&cfg);
        assert_eq!(follow.terminals(0), &[b].into_iter().collect());
        assert!(follow.may_end_input(0));
    }

    #[test]
    fn first_of_seq_respects_nullability() {
        // S ::= A a ; A ::= ε | b — FIRST(A a) = {a, b}.
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = Cfg::new(
            s,
            vec!["S".to_owned(), "A".to_owned()],
            vec![
                vec![Production {
                    rhs: vec![GSym::N(1), GSym::T(a)],
                }],
                vec![
                    Production { rhs: vec![] },
                    Production {
                        rhs: vec![GSym::T(b)],
                    },
                ],
            ],
            0,
        );
        let first = first_sets(&cfg);
        let nullable = crate::earley::nullable_set(&cfg);
        let seq = [GSym::N(1), GSym::T(a)];
        let got = first_of_seq(&seq, &BTreeSet::new(), &first, &nullable);
        assert_eq!(got, [a, b].into_iter().collect());
        // An empty fragment yields exactly the continuation set.
        let cont: BTreeSet<_> = [a].into_iter().collect();
        assert_eq!(first_of_seq(&[], &cont, &first, &nullable), cont);
    }
}
