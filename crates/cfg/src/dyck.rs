//! The Dyck grammar and its verified parser (Fig. 13, Fig. 14, Thm 4.13).
//!
//! `data Dyck : L where nil : Dyck ; bal : '(' ⊸ Dyck ⊸ ')' ⊸ Dyck ⊸ Dyck`
//!
//! Theorem 4.13 shows `Dyck` strongly equivalent to the accepting traces
//! `ParseM` of the counter automaton of Fig. 14, giving a verified Dyck
//! parser. We realize both directions:
//!
//! * `Dyck ⊸ ParseM` — run the (deterministic) automaton on the yield;
//! * `ParseM ⊸ Dyck` — a recursive-descent reconstruction of the unique
//!   balanced-parenthesis derivation.
//!
//! As with all ℕ-indexed automata the trace grammar is length-truncated
//! (exact for inputs of length ≤ the bound).

use std::sync::Arc;

use lambek_automata::counter::dyck_automaton;
use lambek_automata::dfa::parse_dfa;
use lambek_automata::run::dfa_trace_parser;
use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::expr::{alt, chr, eps, mu, seq, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::equivalence::{StrongEquiv, WeakEquiv};
use lambek_core::theory::parser::{extend_parser, VerifiedParser};
use lambek_core::transform::{TransformError, Transformer};

/// The parenthesis symbols, resolved once.
#[derive(Debug, Clone)]
pub struct Parens {
    /// The `{(, )}` alphabet.
    pub alphabet: Alphabet,
    /// `(`.
    pub open: Symbol,
    /// `)`.
    pub close: Symbol,
}

impl Parens {
    /// Resolves the standard parenthesis alphabet.
    pub fn new() -> Parens {
        let alphabet = Alphabet::parens();
        Parens {
            open: alphabet.symbol("(").expect("("),
            close: alphabet.symbol(")").expect(")"),
            alphabet,
        }
    }
}

impl Default for Parens {
    fn default() -> Parens {
        Parens::new()
    }
}

/// The Dyck language as a plain [`Cfg`](crate::grammar::Cfg)
/// (`S ::= ε | ( S ) S`), matching
/// the summand order of [`dyck_system`] so Earley/LR derivation trees and
/// the μ-regular parse trees coincide constructor-for-constructor. This is
/// what the engine's CFG pipelines and the LR table construction consume.
pub fn dyck_cfg(p: &Parens) -> crate::grammar::Cfg {
    use crate::grammar::{Cfg, GSym, Production};
    Cfg::new(
        p.alphabet.clone(),
        vec!["Dyck".to_owned()],
        vec![vec![
            Production { rhs: vec![] },
            Production {
                rhs: vec![GSym::T(p.open), GSym::N(0), GSym::T(p.close), GSym::N(0)],
            },
        ]],
        0,
    )
}

/// The Dyck grammar of Fig. 13 as a `μ` type:
/// `Dyck = I ⊕ ('(' ⊗ Dyck ⊗ ')' ⊗ Dyck)` — summand 0 is `nil`,
/// summand 1 is `bal`.
pub fn dyck_system(p: &Parens) -> Arc<MuSystem> {
    let bal = seq([chr(p.open), var(0), chr(p.close), var(0)]);
    MuSystem::new(vec![alt(eps(), bal)], vec!["Dyck".to_owned()])
}

/// The Dyck grammar as a closed linear type.
pub fn dyck_grammar(p: &Parens) -> Grammar {
    mu(dyck_system(p), 0)
}

/// The `nil` parse tree.
pub fn nil() -> ParseTree {
    ParseTree::roll(ParseTree::inj(0, ParseTree::Unit))
}

/// The `bal` parse tree `bal ( inner ) rest`.
pub fn bal(p: &Parens, inner: ParseTree, rest: ParseTree) -> ParseTree {
    ParseTree::roll(ParseTree::inj(
        1,
        ParseTree::pair(
            ParseTree::Char(p.open),
            ParseTree::pair(inner, ParseTree::pair(ParseTree::Char(p.close), rest)),
        ),
    ))
}

/// Recursive-descent construction of the unique Dyck parse of `w`, or
/// `None` if `w` is unbalanced. This is the `ParseM ⊸ Dyck` direction of
/// Theorem 4.13, phrased on the underlying string (the trace and its
/// string are interconvertible by `parseD`/`printD`).
pub fn parse_dyck_string(p: &Parens, w: &GString) -> Option<ParseTree> {
    let (tree, rest) = parse_prefix(p, w, 0)?;
    (rest == w.len()).then_some(tree)
}

/// Parses the longest balanced prefix of `w[pos..]`; returns the tree and
/// the position after it.
fn parse_prefix(p: &Parens, w: &GString, pos: usize) -> Option<(ParseTree, usize)> {
    if pos < w.len() && w[pos] == p.open {
        let (inner, after_inner) = parse_prefix(p, w, pos + 1)?;
        if after_inner >= w.len() || w[after_inner] != p.close {
            return None;
        }
        let (rest, end) = parse_prefix(p, w, after_inner + 1)?;
        Some((bal(p, inner, rest), end))
    } else {
        // nil: the empty balanced prefix.
        Some((nil(), pos))
    }
}

/// The strong equivalence `Dyck ≅ ParseM` of Theorem 4.13, with the
/// counter automaton truncated at `max_depth`.
pub fn dyck_trace_equiv(p: &Parens, max_depth: usize) -> StrongEquiv {
    let dfa = dyck_automaton(max_depth);
    let tg = dfa.trace_grammar();
    let dyck = dyck_grammar(p);
    let parse_m = tg.trace(dfa.init(), true);

    let dfa_f = dfa.clone();
    let tg_f = tg.clone();
    let fwd = Transformer::from_fn("Dyck→ParseM", dyck.clone(), parse_m.clone(), move |t| {
        let w = t.flatten();
        let (b, tree) = parse_dfa(&dfa_f, &tg_f, dfa_f.init(), &w);
        if b {
            Ok(tree)
        } else {
            Err(TransformError::Custom(format!(
                "a Dyck parse flattened to the unbalanced string {w}"
            )))
        }
    });

    let p_b = p.clone();
    let bwd = Transformer::from_fn("ParseM→Dyck", parse_m, dyck, move |t| {
        let w = t.flatten();
        parse_dyck_string(&p_b, &w).ok_or_else(|| {
            TransformError::Custom(format!("an accepting trace over unbalanced {w}"))
        })
    });

    StrongEquiv::new(WeakEquiv::new(fwd, bwd))
}

/// The verified Dyck parser of Theorem 4.13: the Theorem 4.9 parser for
/// the counter automaton's traces, extended along `ParseM ≈ Dyck`
/// (Lemma 4.8). Valid for inputs of length ≤ `max_depth`.
pub fn dyck_parser(max_depth: usize) -> VerifiedParser {
    let p = Parens::new();
    let dfa = dyck_automaton(max_depth);
    let base = dfa_trace_parser(&dfa, dfa.init());
    let eq = dyck_trace_equiv(&p, max_depth);
    // ParseM ≈ Dyck is the reverse of the stored direction.
    let parse_m_to_dyck = WeakEquiv::new(eq.weak().bwd.clone(), eq.weak().fwd.clone());
    extend_parser(&base, &parse_m_to_dyck).expect("grammars line up by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::parser::ParseOutcome;
    use lambek_core::theory::unambiguous::{all_strings, check_unambiguous};

    #[test]
    fn dyck_grammar_language() {
        let p = Parens::new();
        let cg = CompiledGrammar::new(&dyck_grammar(&p));
        for yes in ["", "()", "()()", "(())", "(()())()"] {
            assert!(cg.recognizes(&p.alphabet.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["(", ")", ")(", "(()", "())"] {
            assert!(!cg.recognizes(&p.alphabet.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn dyck_grammar_is_unambiguous() {
        let p = Parens::new();
        check_unambiguous(&dyck_grammar(&p), &p.alphabet, 6).unwrap();
    }

    #[test]
    fn recursive_descent_matches_enumeration() {
        let p = Parens::new();
        let g = dyck_grammar(&p);
        let cg = CompiledGrammar::new(&g);
        for w in all_strings(&p.alphabet, 6) {
            let descended = parse_dyck_string(&p, &w);
            let forest = cg.parses(&w, 4);
            match descended {
                Some(t) => {
                    validate(&t, &g, &w).unwrap();
                    assert_eq!(forest.trees, vec![t], "{w}");
                }
                None => assert!(forest.is_empty(), "{w}"),
            }
        }
    }

    #[test]
    fn theorem_4_13_strong_equivalence() {
        let p = Parens::new();
        let eq = dyck_trace_equiv(&p, 6);
        let strings = all_strings(&p.alphabet, 6);
        eq.check_on(&strings, 8).unwrap();
        eq.check_counts_on(&strings, 8).unwrap();
    }

    #[test]
    fn theorem_4_13_verified_parser() {
        let parser = dyck_parser(5);
        parser.audit_disjointness(5).unwrap();
        parser.audit_against_recognizer(5).unwrap();
        let p = Parens::new();
        let w = p.alphabet.parse_str("(())").unwrap();
        match parser.parse(&w).unwrap() {
            ParseOutcome::Accept(t) => {
                assert_eq!(t.flatten(), w);
                validate(&t, &dyck_grammar(&p), &w).unwrap();
            }
            ParseOutcome::Reject(_) => panic!("(()) is balanced"),
        }
        let w = p.alphabet.parse_str("())(").unwrap();
        assert!(!parser.parse(&w).unwrap().is_accept());
    }

    #[test]
    fn deep_nesting_parses() {
        let p = Parens::new();
        let depth = 12;
        let w = p
            .alphabet
            .parse_str(&format!("{}{}", "(".repeat(depth), ")".repeat(depth)))
            .unwrap();
        let t = parse_dyck_string(&p, &w).unwrap();
        assert_eq!(t.flatten(), w);
    }
}
