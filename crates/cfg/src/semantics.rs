//! Semantic actions over the CFG parsers (§6.2 of the paper).
//!
//! Verified parsing produces concrete syntax trees; in practice a parser
//! emits *semantic* values. The paper types this as `↑(A ⊸ ⊕_{_:X} ⊤)`;
//! here we instantiate it twice:
//!
//! * [`exp_sum_action`] — evaluates an `Exp` parse to a number (every
//!   `NUM` counts 1, `+` adds) — composing the verified parser with this
//!   action gives a verified calculator;
//! * [`dyck_depth_action`] — computes the maximum nesting depth of a
//!   Dyck parse.

use lambek_automata::lookahead::ArithTokens;
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::semantic_action::{ActionError, SemanticAction};

use crate::dyck::{dyck_grammar, Parens};
use crate::expr::exp_grammar;

/// Evaluates an `Exp` parse: each `NUM` token is worth 1 and `+` adds —
/// the simplest non-trivial semantics over Fig. 15's grammar.
pub fn exp_sum_action(t: &ArithTokens) -> SemanticAction<u64> {
    SemanticAction::new("exp-sum", exp_grammar(t), eval_exp)
}

fn eval_exp(tree: &ParseTree) -> Result<u64, ActionError> {
    // Exp = done(Atom) ⊕ add(Atom, '+', Exp).
    match tree {
        ParseTree::Roll(inner) => match &**inner {
            ParseTree::Inj { index: 0, tree } => eval_atom(tree),
            ParseTree::Inj { index: 1, tree } => match &**tree {
                ParseTree::Pair(atom, rest) => match &**rest {
                    ParseTree::Pair(_plus, exp) => Ok(eval_atom(atom)? + eval_exp(exp)?),
                    other => Err(ActionError::Failed(format!("bad add node {other}"))),
                },
                other => Err(ActionError::Failed(format!("bad add node {other}"))),
            },
            other => Err(ActionError::Failed(format!("bad Exp node {other}"))),
        },
        other => Err(ActionError::Failed(format!("bad Exp node {other}"))),
    }
}

fn eval_atom(tree: &ParseTree) -> Result<u64, ActionError> {
    // Atom = num('NUM') ⊕ parens('(', Exp, ')').
    match tree {
        ParseTree::Roll(inner) => match &**inner {
            ParseTree::Inj { index: 0, .. } => Ok(1),
            ParseTree::Inj { index: 1, tree } => match &**tree {
                ParseTree::Pair(_lp, rest) => match &**rest {
                    ParseTree::Pair(exp, _rp) => eval_exp(exp),
                    other => Err(ActionError::Failed(format!("bad parens node {other}"))),
                },
                other => Err(ActionError::Failed(format!("bad parens node {other}"))),
            },
            other => Err(ActionError::Failed(format!("bad Atom node {other}"))),
        },
        other => Err(ActionError::Failed(format!("bad Atom node {other}"))),
    }
}

/// Computes the maximum nesting depth of a Dyck parse.
pub fn dyck_depth_action(p: &Parens) -> SemanticAction<usize> {
    SemanticAction::new("dyck-depth", dyck_grammar(p), dyck_depth)
}

fn dyck_depth(tree: &ParseTree) -> Result<usize, ActionError> {
    // Dyck = nil ⊕ bal('(', Dyck, ')', Dyck).
    match tree {
        ParseTree::Roll(inner) => match &**inner {
            ParseTree::Inj { index: 0, .. } => Ok(0),
            ParseTree::Inj { index: 1, tree } => match &**tree {
                ParseTree::Pair(_open, rest) => match &**rest {
                    ParseTree::Pair(inner_dyck, rest2) => match &**rest2 {
                        ParseTree::Pair(_close, rest_dyck) => Ok(std::cmp::max(
                            1 + dyck_depth(inner_dyck)?,
                            dyck_depth(rest_dyck)?,
                        )),
                        other => Err(ActionError::Failed(format!("bad bal node {other}"))),
                    },
                    other => Err(ActionError::Failed(format!("bad bal node {other}"))),
                },
                other => Err(ActionError::Failed(format!("bad bal node {other}"))),
            },
            other => Err(ActionError::Failed(format!("bad Dyck node {other}"))),
        },
        other => Err(ActionError::Failed(format!("bad Dyck node {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dyck::parse_dyck_string;
    use crate::expr::parse_exp_string;
    use lambek_automata::counter::CounterMachine;
    use lambek_core::alphabet::GString;

    fn toks(t: &ArithTokens, s: &str) -> GString {
        s.chars()
            .map(|c| match c {
                '(' => t.lp,
                ')' => t.rp,
                '+' => t.add,
                'n' => t.num,
                other => panic!("bad token {other}"),
            })
            .collect()
    }

    #[test]
    fn exp_sum_counts_nums() {
        let t = ArithTokens::new();
        let action = exp_sum_action(&t);
        for (src, expected) in [
            ("n", 1),
            ("n+n", 2),
            ("n+n+n", 3),
            ("(n+n)+n", 3),
            ("((n))", 1),
            ("n+(n+(n+n))", 4),
        ] {
            let tree = parse_exp_string(&t, &toks(&t, src)).unwrap();
            assert_eq!(action.run(&tree).unwrap(), expected, "{src}");
        }
    }

    #[test]
    fn dyck_depth_matches_machine() {
        let p = Parens::new();
        let m = CounterMachine::new();
        let action = dyck_depth_action(&p);
        for src in ["", "()", "(())", "()()", "(()())()", "((()))"] {
            let w = p.alphabet.parse_str(src).unwrap();
            let tree = parse_dyck_string(&p, &w).unwrap();
            assert_eq!(action.run(&tree).unwrap(), m.max_depth(&w), "{src}");
        }
    }

    #[test]
    fn verified_parser_plus_action_is_a_verified_calculator() {
        // Compose the Theorem 4.14 parser with the semantic action: the
        // paper's end-to-end "parsing component of a verified system".
        let t = ArithTokens::new();
        let parser = crate::expr::exp_parser(16);
        let action = exp_sum_action(&t);
        let w = toks(&t, "(n+n)+(n+n)");
        let tree = parser.parse(&w).unwrap().accepted().unwrap().clone();
        let (value, consumed) = action.run_with_yield(&tree).unwrap();
        assert_eq!(value, 4);
        assert_eq!(consumed, w);
    }
}
