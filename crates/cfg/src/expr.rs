//! The arithmetic expression grammar and its verified parser
//! (Fig. 15, Theorem 4.14).
//!
//! ```text
//! data Exp  : L where done : Atom ⊸ Exp
//!                     add  : Atom ⊸ '+' ⊸ Exp ⊸ Exp
//! data Atom : L where num    : 'NUM' ⊸ Atom
//!                     parens : '(' ⊸ Exp ⊸ ')' ⊸ Atom
//! ```
//!
//! The grammar is right-associative (by its syntactic structure) and
//! LL(1). Theorem 4.14 shows it weakly equivalent to the accepting traces
//! `O 0 true` of the lookahead automaton; combining with the automaton's
//! Theorem 4.9-style parser gives a verified expression parser producing
//! `Exp` parse trees.

use std::sync::Arc;

use lambek_automata::lookahead::{
    lookahead_parser, parse_lookahead, simulate, ArithTokens, LookaheadGrammar, StateKind,
};
use lambek_core::alphabet::GString;
use lambek_core::grammar::expr::{chr, mu, plus, seq, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::equivalence::WeakEquiv;
use lambek_core::theory::parser::{extend_parser, VerifiedParser};
use lambek_core::transform::{TransformError, Transformer};

/// Indices of the two mutually recursive definitions.
const EXP: usize = 0;
/// Index of the `Atom` definition.
const ATOM: usize = 1;

/// The mutually recursive `Exp`/`Atom` system of Fig. 15.
///
/// Definition 0 is `Exp` (summand 0 = `done`, 1 = `add`), definition 1 is
/// `Atom` (summand 0 = `num`, 1 = `parens`).
pub fn exp_system(t: &ArithTokens) -> Arc<MuSystem> {
    let exp = plus(vec![
        var(ATOM),                              // done
        seq([var(ATOM), chr(t.add), var(EXP)]), // add
    ]);
    let atom = plus(vec![
        chr(t.num),                            // num
        seq([chr(t.lp), var(EXP), chr(t.rp)]), // parens
    ]);
    MuSystem::new(vec![exp, atom], vec!["Exp".to_owned(), "Atom".to_owned()])
}

/// The Fig. 15 grammar as a plain [`Cfg`](crate::grammar::Cfg)
/// (`Exp ::= Atom | Atom + Exp`,
/// `Atom ::= NUM | ( Exp )`), matching the summand order of
/// [`exp_system`] so Earley/LR derivation trees and the μ-regular parse
/// trees coincide constructor-for-constructor. This is what the engine's
/// CFG pipelines and the LR table construction consume.
pub fn exp_cfg(t: &ArithTokens) -> crate::grammar::Cfg {
    use crate::grammar::{Cfg, GSym, Production};
    Cfg::new(
        t.alphabet.clone(),
        vec!["Exp".to_owned(), "Atom".to_owned()],
        vec![
            vec![
                Production {
                    rhs: vec![GSym::N(ATOM)],
                },
                Production {
                    rhs: vec![GSym::N(ATOM), GSym::T(t.add), GSym::N(EXP)],
                },
            ],
            vec![
                Production {
                    rhs: vec![GSym::T(t.num)],
                },
                Production {
                    rhs: vec![GSym::T(t.lp), GSym::N(EXP), GSym::T(t.rp)],
                },
            ],
        ],
        EXP,
    )
}

/// The `Exp` grammar as a closed linear type.
pub fn exp_grammar(t: &ArithTokens) -> Grammar {
    mu(exp_system(t), EXP)
}

/// The `Atom` grammar as a closed linear type.
pub fn atom_grammar(t: &ArithTokens) -> Grammar {
    mu(exp_system(t), ATOM)
}

/// LL(1) recursive-descent parser for `Exp`, producing the unique parse
/// tree, or `None` if the token string is not an expression. This is the
/// `O 0 true ⊸ Exp` direction of Theorem 4.14 phrased on strings.
pub fn parse_exp_string(t: &ArithTokens, w: &GString) -> Option<ParseTree> {
    let (tree, rest) = parse_exp(t, w, 0)?;
    (rest == w.len()).then_some(tree)
}

fn parse_exp(t: &ArithTokens, w: &GString, pos: usize) -> Option<(ParseTree, usize)> {
    let (atom, after_atom) = parse_atom(t, w, pos)?;
    // One token of lookahead: '+' continues with `add`, else `done`.
    if after_atom < w.len() && w[after_atom] == t.add {
        let (rest, end) = parse_exp(t, w, after_atom + 1)?;
        Some((
            ParseTree::roll(ParseTree::inj(
                1,
                ParseTree::pair(atom, ParseTree::pair(ParseTree::Char(t.add), rest)),
            )),
            end,
        ))
    } else {
        Some((ParseTree::roll(ParseTree::inj(0, atom)), after_atom))
    }
}

fn parse_atom(t: &ArithTokens, w: &GString, pos: usize) -> Option<(ParseTree, usize)> {
    if pos >= w.len() {
        return None;
    }
    let tok = w[pos];
    if tok == t.num {
        Some((
            ParseTree::roll(ParseTree::inj(0, ParseTree::Char(tok))),
            pos + 1,
        ))
    } else if tok == t.lp {
        let (inner, after_inner) = parse_exp(t, w, pos + 1)?;
        if after_inner >= w.len() || w[after_inner] != t.rp {
            return None;
        }
        Some((
            ParseTree::roll(ParseTree::inj(
                1,
                ParseTree::pair(
                    ParseTree::Char(t.lp),
                    ParseTree::pair(inner, ParseTree::Char(t.rp)),
                ),
            )),
            after_inner + 1,
        ))
    } else {
        None
    }
}

/// The weak equivalence `Exp ≈ O 0 true` of Theorem 4.14, with the
/// lookahead automaton truncated at `max`.
pub fn exp_trace_equiv(max: usize) -> WeakEquiv {
    let lg = LookaheadGrammar::new(max);
    let t = lg.tokens.clone();
    let exp = exp_grammar(&t);
    let o_true = lg.state(StateKind::O, 0, true);

    let lg_f = LookaheadGrammar::new(max);
    let fwd = Transformer::from_fn("Exp→O", exp.clone(), o_true.clone(), move |tree| {
        let w = tree.flatten();
        if w.len() > lg_f.max {
            return Err(TransformError::Custom(format!(
                "input of length {} exceeds truncation bound {}",
                w.len(),
                lg_f.max
            )));
        }
        let (b, trace) = parse_lookahead(&lg_f, &w);
        if b {
            Ok(trace)
        } else {
            Err(TransformError::Custom(format!(
                "an Exp parse flattened to the non-expression {w}"
            )))
        }
    });

    let t_b = t.clone();
    let bwd = Transformer::from_fn("O→Exp", o_true, exp, move |tree| {
        let w = tree.flatten();
        parse_exp_string(&t_b, &w).ok_or_else(|| {
            TransformError::Custom(format!("an accepting trace over the non-expression {w}"))
        })
    });

    WeakEquiv::new(fwd, bwd)
}

/// The verified expression parser of Theorem 4.14: the lookahead
/// automaton's trace parser extended along `O 0 true ≈ Exp` (Lemma 4.8).
/// Valid for inputs of length ≤ `max`.
pub fn exp_parser(max: usize) -> VerifiedParser {
    let base = lookahead_parser(max);
    let eq = exp_trace_equiv(max);
    let o_to_exp = WeakEquiv::new(eq.bwd.clone(), eq.fwd.clone());
    extend_parser(&base, &o_to_exp).expect("grammars line up by construction")
}

/// Convenience: whether `w` is a well-formed expression (machine run, no
/// tree building, no truncation bound).
pub fn is_expression(t: &ArithTokens, w: &GString) -> bool {
    simulate(t, w)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::parser::ParseOutcome;
    use lambek_core::theory::unambiguous::{all_strings, check_unambiguous};

    fn toks(t: &ArithTokens, s: &str) -> GString {
        s.chars()
            .map(|c| match c {
                '(' => t.lp,
                ')' => t.rp,
                '+' => t.add,
                'n' => t.num,
                other => panic!("bad token {other}"),
            })
            .collect()
    }

    #[test]
    fn exp_grammar_language() {
        let t = ArithTokens::new();
        let cg = CompiledGrammar::new(&exp_grammar(&t));
        for yes in ["n", "n+n", "(n)", "(n+n)+n", "n+(n)"] {
            assert!(cg.recognizes(&toks(&t, yes)), "{yes}");
        }
        for no in ["", "+", "n+", "()", "nn", "(n", "n)"] {
            assert!(!cg.recognizes(&toks(&t, no)), "{no}");
        }
    }

    #[test]
    fn exp_grammar_is_unambiguous() {
        let t = ArithTokens::new();
        check_unambiguous(&exp_grammar(&t), &t.alphabet, 4).unwrap();
    }

    #[test]
    fn ll1_parser_matches_enumeration() {
        let t = ArithTokens::new();
        let g = exp_grammar(&t);
        let cg = CompiledGrammar::new(&g);
        for w in all_strings(&t.alphabet, 4) {
            let descended = parse_exp_string(&t, &w);
            let forest = cg.parses(&w, 4);
            match descended {
                Some(tree) => {
                    validate(&tree, &g, &w).unwrap();
                    assert_eq!(forest.trees, vec![tree], "{w}");
                }
                None => assert!(forest.is_empty(), "{w}"),
            }
        }
    }

    #[test]
    fn grammar_encodes_right_associativity() {
        // n+n+n parses as n+(n+n): the top node is `add` whose Exp child
        // is again `add`.
        let t = ArithTokens::new();
        let tree = parse_exp_string(&t, &toks(&t, "n+n+n")).unwrap();
        match &tree {
            ParseTree::Roll(inner) => match &**inner {
                ParseTree::Inj { index: 1, tree } => match &**tree {
                    ParseTree::Pair(_, plus_rest) => match &**plus_rest {
                        ParseTree::Pair(_, rest) => {
                            assert!(matches!(
                                &**rest,
                                ParseTree::Roll(r) if matches!(&**r, ParseTree::Inj { index: 1, .. })
                            ));
                        }
                        other => panic!("unexpected {other}"),
                    },
                    other => panic!("unexpected {other}"),
                },
                other => panic!("top must be add, got {other}"),
            },
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn theorem_4_14_weak_equivalence() {
        let eq = exp_trace_equiv(4);
        let t = ArithTokens::new();
        // Both composites are the identity on the unambiguous grammars —
        // the equivalence is in fact strong on this fragment.
        lambek_core::theory::equivalence::check_retract_on(&eq, &all_strings(&t.alphabet, 3), 4)
            .unwrap();
        lambek_core::theory::equivalence::check_retract_on(
            &eq.reverse(),
            &all_strings(&t.alphabet, 3),
            4,
        )
        .unwrap();
    }

    #[test]
    fn theorem_4_14_verified_parser() {
        let parser = exp_parser(3);
        parser.audit_disjointness(3).unwrap();
        parser.audit_against_recognizer(3).unwrap();
        let t = ArithTokens::new();
        let parser = exp_parser(8);
        let w = toks(&t, "(n+n)+n");
        match parser.parse(&w).unwrap() {
            ParseOutcome::Accept(tree) => {
                assert_eq!(tree.flatten(), w);
                validate(&tree, &exp_grammar(&t), &w).unwrap();
            }
            ParseOutcome::Reject(_) => panic!("(n+n)+n is an expression"),
        }
        assert!(!parser.parse(&toks(&t, "n+)")).unwrap().is_accept());
    }
}
