//! Earley parsing: the classical CFG baseline.
//!
//! The paper's CFG parsers go through deterministic automata; this module
//! is the general-purpose comparator the benchmarks measure them against.
//! Recognition is textbook Earley (predict/scan/complete), but the
//! runtime representation is table-driven rather than hash-based:
//!
//! * the chart of completed spans is a dense `Vec<u64>` bitset indexed by
//!   `(nonterminal, i, j)` — a probe is one shift and one AND, replacing
//!   the seed's `HashSet<(usize, usize, usize)>`;
//! * per-position item sets are append-only `Vec<Item>` worklists with a
//!   dotted-rule × origin membership bitset, replacing `HashSet<Item>`
//!   (both index sets fall back to sparse hashing for inputs long enough
//!   that the n²-sized dense arrays would dominate memory);
//! * nullable nonterminals are precomputed by fixpoint
//!   ([`nullable_set`]), so the predictor advances over a nullable
//!   nonterminal immediately (the Aycock–Horspool fix) instead of
//!   re-deriving ε at every position through the generic machinery.
//!
//! Tree extraction rebuilds a derivation from the completed spans,
//! producing parse trees in the same shape as
//! [`Cfg::to_lambek`](crate::grammar::Cfg::to_lambek) so they validate
//! against the μ-regular grammar directly.

use std::collections::HashSet;

use lambek_core::alphabet::GString;
use lambek_core::grammar::parse_tree::ParseTree;

use crate::grammar::{Cfg, GSym};

/// An Earley item: position `dot` in alternative `alt` of nonterminal
/// `nt`, started at input position `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    nt: usize,
    alt: usize,
    dot: usize,
    origin: usize,
}

/// Above this capacity a [`BitSet`] falls back to a sparse hash set:
/// the dense arrays are Θ(capacity) *allocated up front*, which for very
/// long inputs (the index space grows with n²) would dwarf the items
/// actually present. 2²⁶ bits = 8 MiB per set — far above every bench
/// size, far below pathological allocations.
const MAX_DENSE_BITS: usize = 1 << 26;

/// An index set over a fixed capacity: a dense `Vec<u64>` bitset for
/// ordinary inputs, a sparse hash set past [`MAX_DENSE_BITS`].
#[derive(Debug, Clone)]
enum BitSet {
    Dense(Vec<u64>),
    Sparse(HashSet<usize>),
}

impl BitSet {
    /// A set of capacity `bits`, dense only if the *aggregate* footprint
    /// of all `copies` sibling sets (the chart allocates one member set
    /// per input position) stays under [`MAX_DENSE_BITS`].
    fn new(bits: usize, copies: usize) -> BitSet {
        if bits.saturating_mul(copies) <= MAX_DENSE_BITS {
            BitSet::Dense(vec![0; bits.div_ceil(64)])
        } else {
            BitSet::Sparse(HashSet::new())
        }
    }

    /// Sets bit `i`; returns `true` if it was previously clear.
    #[inline]
    fn insert(&mut self, i: usize) -> bool {
        match self {
            BitSet::Dense(words) => {
                let word = &mut words[i / 64];
                let mask = 1u64 << (i % 64);
                let fresh = *word & mask == 0;
                *word |= mask;
                fresh
            }
            BitSet::Sparse(set) => set.insert(i),
        }
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        match self {
            BitSet::Dense(words) => words[i / 64] & (1u64 << (i % 64)) != 0,
            BitSet::Sparse(set) => set.contains(&i),
        }
    }
}

/// The set of nullable nonterminals (those deriving ε), by fixpoint
/// iteration over the productions.
pub fn nullable_set(cfg: &Cfg) -> Vec<bool> {
    let mut nullable = vec![false; cfg.num_nonterminals()];
    loop {
        let mut changed = false;
        for nt in 0..cfg.num_nonterminals() {
            if nullable[nt] {
                continue;
            }
            let derives_eps = cfg.alternatives(nt).iter().any(|p| {
                p.rhs
                    .iter()
                    .all(|sym| matches!(sym, GSym::N(m) if nullable[*m]))
            });
            if derives_eps {
                nullable[nt] = true;
                changed = true;
            }
        }
        if !changed {
            return nullable;
        }
    }
}

/// The Earley chart: completed spans per nonterminal, as a dense bitset.
#[derive(Debug)]
pub struct EarleyChart {
    n: usize,
    /// `(n + 1)²`, the stride of one nonterminal's span plane.
    plane: usize,
    /// Bit `nt · plane + i · (n+1) + j` ⇔ `nt` derives `w[i..j]`.
    completed: BitSet,
    /// Precomputed nullable flags, kept for extraction early-exits.
    nullable: Vec<bool>,
}

impl EarleyChart {
    /// Whether nonterminal `nt` derives the span `w[i..j]`.
    #[inline]
    pub fn derives(&self, nt: usize, i: usize, j: usize) -> bool {
        self.completed
            .contains(nt * self.plane + i * (self.n + 1) + j)
    }

    /// Whether nonterminal `nt` derives the empty string.
    pub fn nullable(&self, nt: usize) -> bool {
        self.nullable[nt]
    }

    /// Input length the chart was built for.
    pub fn input_len(&self) -> usize {
        self.n
    }
}

/// Runs Earley recognition, returning the chart of completed spans.
pub fn earley_chart(cfg: &Cfg, w: &GString) -> EarleyChart {
    let n = w.len();
    let span = n + 1;
    let num_nt = cfg.num_nonterminals();
    let nullable = nullable_set(cfg);

    // Dotted-rule numbering: a dense id for every (nt, alt, dot) triple,
    // so item membership per position is a bitset probe, not a hash.
    let mut dot_base: Vec<Vec<usize>> = Vec::with_capacity(num_nt);
    let mut dotted_total = 0usize;
    for nt in 0..num_nt {
        let bases = cfg
            .alternatives(nt)
            .iter()
            .map(|p| {
                let base = dotted_total;
                dotted_total += p.rhs.len() + 1;
                base
            })
            .collect();
        dot_base.push(bases);
    }
    let item_bit = |item: &Item| (dot_base[item.nt][item.alt] + item.dot) * span + item.origin;

    let mut completed = BitSet::new(num_nt * span * span, 1);
    let span_bit = |nt: usize, i: usize, j: usize| nt * span * span + i * span + j;

    // Append-only worklists double as the item sets; `member` dedups.
    let mut sets: Vec<Vec<Item>> = vec![Vec::new(); span];
    let mut member: Vec<BitSet> = (0..span)
        .map(|_| BitSet::new(dotted_total * span, span))
        .collect();

    for alt in 0..cfg.alternatives(cfg.start()).len() {
        let item = Item {
            nt: cfg.start(),
            alt,
            dot: 0,
            origin: 0,
        };
        if member[0].insert(item_bit(&item)) {
            sets[0].push(item);
        }
    }

    for pos in 0..=n {
        let mut cursor = 0;
        while cursor < sets[pos].len() {
            let item = sets[pos][cursor];
            cursor += 1;
            let rhs = &cfg.alternatives(item.nt)[item.alt].rhs;
            if item.dot == rhs.len() {
                // Complete.
                completed.insert(span_bit(item.nt, item.origin, pos));
                let mut pi = 0;
                while pi < sets[item.origin].len() {
                    let p = sets[item.origin][pi];
                    pi += 1;
                    let prhs = &cfg.alternatives(p.nt)[p.alt].rhs;
                    if p.dot < prhs.len() && prhs[p.dot] == GSym::N(item.nt) {
                        let advanced = Item {
                            dot: p.dot + 1,
                            ..p
                        };
                        if member[pos].insert(item_bit(&advanced)) {
                            sets[pos].push(advanced);
                        }
                    }
                }
            } else {
                match rhs[item.dot] {
                    GSym::T(c) => {
                        // Scan.
                        if pos < n && w[pos] == c {
                            let advanced = Item {
                                dot: item.dot + 1,
                                ..item
                            };
                            if member[pos + 1].insert(item_bit(&advanced)) {
                                sets[pos + 1].push(advanced);
                            }
                        }
                    }
                    GSym::N(m) => {
                        // Predict.
                        for alt in 0..cfg.alternatives(m).len() {
                            let predicted = Item {
                                nt: m,
                                alt,
                                dot: 0,
                                origin: pos,
                            };
                            if member[pos].insert(item_bit(&predicted)) {
                                sets[pos].push(predicted);
                            }
                        }
                        // Nullable early-exit (Aycock–Horspool): `m` is
                        // known to derive ε, so advance immediately instead
                        // of waiting for the ε-derivation to complete at
                        // this position — and record the fact in the chart
                        // so tree extraction sees the span too.
                        if nullable[m] {
                            completed.insert(span_bit(m, pos, pos));
                            let advanced = Item {
                                dot: item.dot + 1,
                                ..item
                            };
                            if member[pos].insert(item_bit(&advanced)) {
                                sets[pos].push(advanced);
                            }
                        }
                    }
                }
            }
        }
    }
    EarleyChart {
        n,
        plane: span * span,
        completed,
        nullable,
    }
}

/// Whether the CFG derives `w` from its start symbol.
pub fn earley_recognize(cfg: &Cfg, w: &GString) -> bool {
    earley_chart(cfg, w).derives(cfg.start(), 0, w.len())
}

/// Extracts one derivation tree for `w` (the first found, scanning
/// alternatives in order), as a parse tree of `cfg.to_lambek()`. Returns
/// `None` if the string is not derivable.
pub fn earley_parse(cfg: &Cfg, w: &GString) -> Option<ParseTree> {
    let chart = earley_chart(cfg, w);
    if !chart.derives(cfg.start(), 0, w.len()) {
        return None;
    }
    let mut guard = HashSet::new();
    build_nt(cfg, w, &chart, cfg.start(), 0, w.len(), &mut guard)
}

fn build_nt(
    cfg: &Cfg,
    w: &GString,
    chart: &EarleyChart,
    nt: usize,
    i: usize,
    j: usize,
    guard: &mut HashSet<(usize, usize, usize)>,
) -> Option<ParseTree> {
    if !chart.derives(nt, i, j) || !guard.insert((nt, i, j)) {
        // Not derivable, or a unit/ε cycle: fail this path (another
        // alternative will be tried by the caller).
        return None;
    }
    let mut result = None;
    for (alt, prod) in cfg.alternatives(nt).iter().enumerate() {
        if let Some(children) = build_seq(cfg, w, chart, &prod.rhs, i, j, guard) {
            result = Some(cfg.derivation(nt, alt, children));
            break;
        }
    }
    guard.remove(&(nt, i, j));
    result
}

fn build_seq(
    cfg: &Cfg,
    w: &GString,
    chart: &EarleyChart,
    rhs: &[GSym],
    i: usize,
    j: usize,
    guard: &mut HashSet<(usize, usize, usize)>,
) -> Option<Vec<ParseTree>> {
    match rhs.split_first() {
        None => (i == j).then(Vec::new),
        Some((first, rest)) => match first {
            GSym::T(c) => {
                if i < j && w[i] == *c {
                    let mut children = build_seq(cfg, w, chart, rest, i + 1, j, guard)?;
                    children.insert(0, ParseTree::Char(*c));
                    Some(children)
                } else {
                    None
                }
            }
            GSym::N(m) => {
                for k in i..=j {
                    if !chart.derives(*m, i, k) {
                        continue;
                    }
                    if let Some(head) = build_nt(cfg, w, chart, *m, i, k, guard) {
                        if let Some(mut children) = build_seq(cfg, w, chart, rest, k, j, guard) {
                            children.insert(0, head);
                            return Some(children);
                        }
                    }
                }
                None
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{anbn, Production};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn earley_agrees_with_denotational_recognizer_on_anbn() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        let cg = CompiledGrammar::new(&cfg.to_lambek());
        for w in all_strings(&s, 5) {
            assert_eq!(earley_recognize(&cfg, &w), cg.recognizes(&w), "{w}");
        }
    }

    #[test]
    fn earley_trees_validate_against_the_lambek_grammar() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        let g = cfg.to_lambek();
        for n in 0..4 {
            let w = s
                .parse_str(&format!("{}{}", "a".repeat(n), "b".repeat(n)))
                .unwrap();
            let t = earley_parse(&cfg, &w).unwrap();
            validate(&t, &g, &w).unwrap();
        }
        assert!(earley_parse(&cfg, &s.parse_str("ab" /* ok */).unwrap()).is_some());
        assert!(earley_parse(&cfg, &s.parse_str("ba").unwrap()).is_none());
    }

    #[test]
    fn left_recursive_grammar_works() {
        // E ::= E a | a — left recursion, Earley handles it fine.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["E".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::T(a)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        for n in 1..6 {
            let w = s.parse_str(&"a".repeat(n)).unwrap();
            assert!(earley_recognize(&cfg, &w), "a^{n}");
            let t = earley_parse(&cfg, &w).unwrap();
            validate(&t, &cfg.to_lambek(), &w).unwrap();
        }
        assert!(!earley_recognize(&cfg, &GString::new()));
    }

    #[test]
    fn nullable_chains_are_handled() {
        // S ::= A A ; A ::= ε | a.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned()],
            vec![
                vec![Production {
                    rhs: vec![GSym::N(1), GSym::N(1)],
                }],
                vec![
                    Production { rhs: vec![] },
                    Production {
                        rhs: vec![GSym::T(a)],
                    },
                ],
            ],
            0,
        );
        for (w, expect) in [("", true), ("a", true), ("aa", true), ("aaa", false)] {
            let w = s.parse_str(w).unwrap();
            assert_eq!(earley_recognize(&cfg, &w), expect, "{w}");
        }
    }

    /// A grammar whose nullability is only reachable through a chain of
    /// empty productions (S ::= A S b | ε via A ::= B, B ::= ε): the
    /// regression case for the nullable-prediction early exit.
    fn chain_nullable_cfg(s: &Alphabet) -> Cfg {
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned(), "B".to_owned()],
            vec![
                vec![
                    Production {
                        rhs: vec![GSym::N(1), GSym::T(a), GSym::N(0), GSym::T(b)],
                    },
                    Production { rhs: vec![] },
                ],
                vec![Production {
                    rhs: vec![GSym::N(2)],
                }],
                vec![Production { rhs: vec![] }],
            ],
            0,
        )
    }

    #[test]
    fn empty_production_chains_recognize_and_extract() {
        // Regression: nullability through A ::= B, B ::= ε must be seen by
        // the predictor (early exit) and by tree extraction (the chart
        // records the ε-span at every predicted position).
        let s = Alphabet::abc();
        let cfg = chain_nullable_cfg(&s);
        assert_eq!(nullable_set(&cfg), vec![true, true, true]);
        let g = cfg.to_lambek();
        let cg = CompiledGrammar::new(&g);
        for w in all_strings(&s, 6) {
            let recognized = earley_recognize(&cfg, &w);
            assert_eq!(recognized, cg.recognizes(&w), "{w}");
            match earley_parse(&cfg, &w) {
                Some(t) => {
                    assert!(recognized, "{w}");
                    validate(&t, &g, &w).unwrap();
                }
                None => assert!(!recognized, "{w}"),
            }
        }
    }

    #[test]
    fn nullable_flags_are_exposed_on_the_chart() {
        let s = Alphabet::abc();
        let cfg = chain_nullable_cfg(&s);
        let chart = earley_chart(&cfg, &s.parse_str("ab").unwrap());
        assert!(chart.nullable(0) && chart.nullable(1) && chart.nullable(2));
        assert!(chart.derives(2, 0, 0), "B derives ε at position 0");
    }
}
