//! Earley parsing: the classical CFG baseline.
//!
//! The paper's CFG parsers go through deterministic automata; this module
//! is the general-purpose comparator the benchmarks measure them against.
//! Recognition is textbook Earley (predict/scan/complete), but the
//! runtime representation is table-driven rather than hash-based:
//!
//! * the chart of completed spans is a dense `Vec<u64>` bitset indexed by
//!   `(nonterminal, i, j)` — a probe is one shift and one AND, replacing
//!   the seed's `HashSet<(usize, usize, usize)>`;
//! * per-position item sets are append-only `Vec<Item>` worklists with a
//!   dotted-rule × origin membership bitset, replacing `HashSet<Item>`
//!   (both index sets fall back to sparse hashing for inputs long enough
//!   that the n²-sized dense arrays would dominate memory);
//! * nullable nonterminals are precomputed by fixpoint
//!   ([`nullable_set`]), so the predictor advances over a nullable
//!   nonterminal immediately (the Aycock–Horspool fix) instead of
//!   re-deriving ε at every position through the generic machinery.
//!
//! Tree extraction rebuilds a derivation from the completed spans,
//! producing parse trees in the same shape as
//! [`Cfg::to_lambek`](crate::grammar::Cfg::to_lambek) so they validate
//! against the μ-regular grammar directly.

use std::collections::HashSet;

use lambek_core::alphabet::GString;
use lambek_core::grammar::parse_tree::ParseTree;

use crate::grammar::{Cfg, GSym};

/// An Earley item: position `dot` in alternative `alt` of nonterminal
/// `nt`, started at input position `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    nt: usize,
    alt: usize,
    dot: usize,
    origin: usize,
}

/// Above this capacity a [`BitSet`] falls back to a sparse hash set:
/// the dense arrays are Θ(capacity) *allocated up front*, which for very
/// long inputs (the index space grows with n²) would dwarf the items
/// actually present. 2²⁶ bits = 8 MiB per set — far above every bench
/// size, far below pathological allocations.
const MAX_DENSE_BITS: usize = 1 << 26;

/// An index set over a fixed capacity: a dense `Vec<u64>` bitset for
/// ordinary inputs, a sparse hash set past [`MAX_DENSE_BITS`].
#[derive(Debug, Clone)]
enum BitSet {
    Dense(Vec<u64>),
    Sparse(HashSet<usize>),
}

impl BitSet {
    /// A set of capacity `bits`, dense only if the *aggregate* footprint
    /// of all `copies` sibling sets (the chart allocates one member set
    /// per input position) stays under [`MAX_DENSE_BITS`].
    fn new(bits: usize, copies: usize) -> BitSet {
        if bits.saturating_mul(copies) <= MAX_DENSE_BITS {
            BitSet::Dense(vec![0; bits.div_ceil(64)])
        } else {
            BitSet::Sparse(HashSet::new())
        }
    }

    /// Sets bit `i`; returns `true` if it was previously clear.
    #[inline]
    fn insert(&mut self, i: usize) -> bool {
        match self {
            BitSet::Dense(words) => {
                let word = &mut words[i / 64];
                let mask = 1u64 << (i % 64);
                let fresh = *word & mask == 0;
                *word |= mask;
                fresh
            }
            BitSet::Sparse(set) => set.insert(i),
        }
    }

    #[inline]
    fn contains(&self, i: usize) -> bool {
        match self {
            BitSet::Dense(words) => words[i / 64] & (1u64 << (i % 64)) != 0,
            BitSet::Sparse(set) => set.contains(&i),
        }
    }
}

/// The set of nullable nonterminals (those deriving ε), by fixpoint
/// iteration over the productions.
pub fn nullable_set(cfg: &Cfg) -> Vec<bool> {
    let mut nullable = vec![false; cfg.num_nonterminals()];
    loop {
        let mut changed = false;
        for nt in 0..cfg.num_nonterminals() {
            if nullable[nt] {
                continue;
            }
            let derives_eps = cfg.alternatives(nt).iter().any(|p| {
                p.rhs
                    .iter()
                    .all(|sym| matches!(sym, GSym::N(m) if nullable[*m]))
            });
            if derives_eps {
                nullable[nt] = true;
                changed = true;
            }
        }
        if !changed {
            return nullable;
        }
    }
}

/// The Earley chart: completed spans per nonterminal, as a dense bitset.
#[derive(Debug)]
pub struct EarleyChart {
    n: usize,
    /// `(n + 1)²`, the stride of one nonterminal's span plane.
    plane: usize,
    /// Bit `nt · plane + i · (n+1) + j` ⇔ `nt` derives `w[i..j]`.
    completed: BitSet,
    /// Precomputed nullable flags, kept for extraction early-exits.
    nullable: Vec<bool>,
}

impl EarleyChart {
    /// Whether nonterminal `nt` derives the span `w[i..j]`.
    #[inline]
    pub fn derives(&self, nt: usize, i: usize, j: usize) -> bool {
        self.completed
            .contains(nt * self.plane + i * (self.n + 1) + j)
    }

    /// Whether nonterminal `nt` derives the empty string.
    pub fn nullable(&self, nt: usize) -> bool {
        self.nullable[nt]
    }

    /// Input length the chart was built for.
    pub fn input_len(&self) -> usize {
        self.n
    }
}

/// Runs Earley recognition, returning the chart of completed spans.
pub fn earley_chart(cfg: &Cfg, w: &GString) -> EarleyChart {
    let n = w.len();
    let span = n + 1;
    let num_nt = cfg.num_nonterminals();
    let nullable = nullable_set(cfg);

    // Dotted-rule numbering: a dense id for every (nt, alt, dot) triple,
    // so item membership per position is a bitset probe, not a hash.
    let mut dot_base: Vec<Vec<usize>> = Vec::with_capacity(num_nt);
    let mut dotted_total = 0usize;
    for nt in 0..num_nt {
        let bases = cfg
            .alternatives(nt)
            .iter()
            .map(|p| {
                let base = dotted_total;
                dotted_total += p.rhs.len() + 1;
                base
            })
            .collect();
        dot_base.push(bases);
    }
    let item_bit = |item: &Item| (dot_base[item.nt][item.alt] + item.dot) * span + item.origin;

    let mut completed = BitSet::new(num_nt * span * span, 1);
    let span_bit = |nt: usize, i: usize, j: usize| nt * span * span + i * span + j;

    // Append-only worklists double as the item sets; `member` dedups.
    let mut sets: Vec<Vec<Item>> = vec![Vec::new(); span];
    let mut member: Vec<BitSet> = (0..span)
        .map(|_| BitSet::new(dotted_total * span, span))
        .collect();

    for alt in 0..cfg.alternatives(cfg.start()).len() {
        let item = Item {
            nt: cfg.start(),
            alt,
            dot: 0,
            origin: 0,
        };
        if member[0].insert(item_bit(&item)) {
            sets[0].push(item);
        }
    }

    for pos in 0..=n {
        let mut cursor = 0;
        while cursor < sets[pos].len() {
            let item = sets[pos][cursor];
            cursor += 1;
            let rhs = &cfg.alternatives(item.nt)[item.alt].rhs;
            if item.dot == rhs.len() {
                // Complete.
                completed.insert(span_bit(item.nt, item.origin, pos));
                let mut pi = 0;
                while pi < sets[item.origin].len() {
                    let p = sets[item.origin][pi];
                    pi += 1;
                    let prhs = &cfg.alternatives(p.nt)[p.alt].rhs;
                    if p.dot < prhs.len() && prhs[p.dot] == GSym::N(item.nt) {
                        let advanced = Item {
                            dot: p.dot + 1,
                            ..p
                        };
                        if member[pos].insert(item_bit(&advanced)) {
                            sets[pos].push(advanced);
                        }
                    }
                }
            } else {
                match rhs[item.dot] {
                    GSym::T(c) => {
                        // Scan.
                        if pos < n && w[pos] == c {
                            let advanced = Item {
                                dot: item.dot + 1,
                                ..item
                            };
                            if member[pos + 1].insert(item_bit(&advanced)) {
                                sets[pos + 1].push(advanced);
                            }
                        }
                    }
                    GSym::N(m) => {
                        // Predict.
                        for alt in 0..cfg.alternatives(m).len() {
                            let predicted = Item {
                                nt: m,
                                alt,
                                dot: 0,
                                origin: pos,
                            };
                            if member[pos].insert(item_bit(&predicted)) {
                                sets[pos].push(predicted);
                            }
                        }
                        // Nullable early-exit (Aycock–Horspool): `m` is
                        // known to derive ε, so advance immediately instead
                        // of waiting for the ε-derivation to complete at
                        // this position — and record the fact in the chart
                        // so tree extraction sees the span too.
                        if nullable[m] {
                            completed.insert(span_bit(m, pos, pos));
                            let advanced = Item {
                                dot: item.dot + 1,
                                ..item
                            };
                            if member[pos].insert(item_bit(&advanced)) {
                                sets[pos].push(advanced);
                            }
                        }
                    }
                }
            }
        }
    }
    EarleyChart {
        n,
        plane: span * span,
        completed,
        nullable,
    }
}

/// Whether the CFG derives `w` from its start symbol.
pub fn earley_recognize(cfg: &Cfg, w: &GString) -> bool {
    earley_chart(cfg, w).derives(cfg.start(), 0, w.len())
}

/// The span at which a derivation was found to be ambiguous: nonterminal
/// `nt` has at least two distinct derivations of `w[start..end]`.
///
/// This is the same notion of "deterministic" the LR layer's conflict
/// reports use: a grammar whose LR(1) table builds without conflicts never
/// produces an [`EarleyParse::Ambiguous`] answer (LR(1) grammars are
/// unambiguous), so the two parsers agree on which inputs have a unique
/// certified tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AmbiguitySite {
    /// The ambiguous nonterminal.
    pub nt: usize,
    /// Start of the ambiguous span (inclusive).
    pub start: usize,
    /// End of the ambiguous span (exclusive).
    pub end: usize,
}

impl AmbiguitySite {
    /// Renders the site with the grammar's nonterminal names.
    pub fn describe(&self, cfg: &Cfg) -> String {
        format!(
            "{} is ambiguous over [{}, {})",
            cfg.name(self.nt),
            self.start,
            self.end
        )
    }
}

/// The outcome of [`earley_parse`]: a *unique* derivation, an explicitly
/// flagged ambiguous one (with a witness tree and the offending span), or
/// no derivation at all. Callers that only care about "some tree" use
/// [`EarleyParse::tree`]; callers that need determinism (the engine's
/// certified paths) match on [`EarleyParse::Unique`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EarleyParse {
    /// Exactly one derivation exists; here it is.
    Unique(ParseTree),
    /// At least two derivations exist. `tree` is the first one found
    /// (scanning alternatives in order); `site` is the topmost span where
    /// the derivations diverge.
    Ambiguous {
        /// A witness derivation (alternatives scanned in order).
        tree: ParseTree,
        /// The topmost ambiguous span.
        site: AmbiguitySite,
    },
    /// The string is not in the language.
    NoParse,
}

impl EarleyParse {
    /// Any derivation tree, unique or not.
    pub fn tree(self) -> Option<ParseTree> {
        match self {
            EarleyParse::Unique(t) | EarleyParse::Ambiguous { tree: t, .. } => Some(t),
            EarleyParse::NoParse => None,
        }
    }

    /// The derivation tree, but only when it is unique.
    pub fn unique(self) -> Option<ParseTree> {
        match self {
            EarleyParse::Unique(t) => Some(t),
            _ => None,
        }
    }

    /// `true` when the input had two or more derivations.
    pub fn is_ambiguous(&self) -> bool {
        matches!(self, EarleyParse::Ambiguous { .. })
    }
}

/// Extracts a derivation tree for `w` as a parse tree of
/// `cfg.to_lambek()`, reporting ambiguity explicitly: the result
/// distinguishes "no parse" from "ambiguous at span" instead of silently
/// picking one tree.
///
/// Extraction is chart-guided: at every node `(nt, i, j)` a per-production
/// suffix DP (`suffix_ways`) counts the chart-supported decompositions
/// (production alternative + split positions) of the span, saturating at
/// two. The same table serves twice —
///
/// * a total ≥ 2 at any kept node is a proof of ambiguity (chart
///   soundness makes each decomposition a witness of a distinct
///   derivation), and the *topmost* such span is reported;
/// * split positions with a zero count are never descended into, so the
///   walk does no blind backtracking: the only retries are the (rare,
///   shallow) unit/ε-cycle guards, keeping extraction near-linear in the
///   tree size instead of exponential.
pub fn earley_parse(cfg: &Cfg, w: &GString) -> EarleyParse {
    let chart = earley_chart(cfg, w);
    if !chart.derives(cfg.start(), 0, w.len()) {
        return EarleyParse::NoParse;
    }
    let mut guard = HashSet::new();
    match extract(cfg, w, &chart, cfg.start(), 0, w.len(), &mut guard) {
        Some((tree, Some(site))) => EarleyParse::Ambiguous { tree, site },
        Some((tree, None)) => EarleyParse::Unique(tree),
        // Unreachable for a sound chart; kept as a defensive answer.
        None => EarleyParse::NoParse,
    }
}

/// The suffix-decomposition table of one production over one span:
/// `ways[idx][pos - i]` counts (saturating at 2) the chart-supported ways
/// `rhs[idx..]` can derive `w[pos..j]` — terminals must match the input,
/// nonterminal parts must be completed chart spans.
fn suffix_ways(w: &GString, chart: &EarleyChart, rhs: &[GSym], i: usize, j: usize) -> Vec<Vec<u8>> {
    let width = j - i + 1;
    let mut tables = vec![vec![0u8; width]; rhs.len() + 1];
    // The empty suffix derives exactly the empty span ending at j.
    tables[rhs.len()][j - i] = 1;
    for (idx, sym) in rhs.iter().enumerate().rev() {
        let (head, tail) = tables.split_at_mut(idx + 1);
        let (ways, next) = (&mut head[idx], &tail[0]);
        match sym {
            GSym::T(c) => {
                for pos in i..j {
                    if w[pos] == *c {
                        ways[pos - i] = next[pos + 1 - i];
                    }
                }
            }
            GSym::N(m) => {
                for pos in i..=j {
                    let mut acc = 0u8;
                    for k in pos..=j {
                        if next[k - i] > 0 && chart.derives(*m, pos, k) {
                            acc = (acc + next[k - i]).min(2);
                        }
                    }
                    ways[pos - i] = acc;
                }
            }
        }
    }
    tables
}

/// Builds one derivation of `(nt, i, j)` plus the topmost ambiguous span
/// at or below it, guided by the suffix DP. `None` only on unit/ε cycles
/// (the caller tries the next split) or for non-derivable spans.
fn extract(
    cfg: &Cfg,
    w: &GString,
    chart: &EarleyChart,
    nt: usize,
    i: usize,
    j: usize,
    guard: &mut HashSet<(usize, usize, usize)>,
) -> Option<(ParseTree, Option<AmbiguitySite>)> {
    if !chart.derives(nt, i, j) || !guard.insert((nt, i, j)) {
        return None;
    }
    let tables: Vec<Vec<Vec<u8>>> = cfg
        .alternatives(nt)
        .iter()
        .map(|p| suffix_ways(w, chart, &p.rhs, i, j))
        .collect();
    let total: u8 = tables.iter().fold(0, |acc, t| (acc + t[0][0]).min(2));
    let own_site = (total >= 2).then_some(AmbiguitySite {
        nt,
        start: i,
        end: j,
    });
    let mut result = None;
    for (alt, ways) in tables.iter().enumerate() {
        if ways[0][0] == 0 {
            continue;
        }
        let rhs = &cfg.alternatives(nt)[alt].rhs;
        if let Some((children, below)) = extract_seq(cfg, w, chart, rhs, ways, 0, i, i, j, guard) {
            result = Some((cfg.derivation(nt, alt, children), own_site.or(below)));
            break;
        }
    }
    guard.remove(&(nt, i, j));
    result
}

/// Builds the children of `rhs[idx..]` over `w[pos..j]` (the node started
/// at `base`, which anchors the DP tables). Splits are taken from the
/// non-zero entries of `ways`, so every descent is into a derivable
/// configuration; failures only bubble up from cycle guards.
#[allow(clippy::too_many_arguments)]
fn extract_seq(
    cfg: &Cfg,
    w: &GString,
    chart: &EarleyChart,
    rhs: &[GSym],
    ways: &[Vec<u8>],
    idx: usize,
    base: usize,
    pos: usize,
    j: usize,
    guard: &mut HashSet<(usize, usize, usize)>,
) -> Option<(Vec<ParseTree>, Option<AmbiguitySite>)> {
    let Some(sym) = rhs.get(idx) else {
        return (pos == j).then(|| (Vec::new(), None));
    };
    match sym {
        GSym::T(c) => {
            if pos < j && w[pos] == *c {
                let (mut children, below) =
                    extract_seq(cfg, w, chart, rhs, ways, idx + 1, base, pos + 1, j, guard)?;
                children.insert(0, ParseTree::Char(*c));
                Some((children, below))
            } else {
                None
            }
        }
        GSym::N(m) => {
            for k in pos..=j {
                if ways[idx + 1][k - base] == 0 || !chart.derives(*m, pos, k) {
                    continue;
                }
                if let Some((head, head_site)) = extract(cfg, w, chart, *m, pos, k, guard) {
                    if let Some((mut children, rest_site)) =
                        extract_seq(cfg, w, chart, rhs, ways, idx + 1, base, k, j, guard)
                    {
                        children.insert(0, head);
                        return Some((children, head_site.or(rest_site)));
                    }
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{anbn, Production};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn earley_agrees_with_denotational_recognizer_on_anbn() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        let cg = CompiledGrammar::new(&cfg.to_lambek());
        for w in all_strings(&s, 5) {
            assert_eq!(earley_recognize(&cfg, &w), cg.recognizes(&w), "{w}");
        }
    }

    #[test]
    fn earley_trees_validate_against_the_lambek_grammar() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        let g = cfg.to_lambek();
        for n in 0..4 {
            let w = s
                .parse_str(&format!("{}{}", "a".repeat(n), "b".repeat(n)))
                .unwrap();
            let t = earley_parse(&cfg, &w).unique().unwrap();
            validate(&t, &g, &w).unwrap();
        }
        assert!(earley_parse(&cfg, &s.parse_str("ab" /* ok */).unwrap())
            .tree()
            .is_some());
        assert_eq!(
            earley_parse(&cfg, &s.parse_str("ba").unwrap()),
            EarleyParse::NoParse
        );
    }

    #[test]
    fn left_recursive_grammar_works() {
        // E ::= E a | a — left recursion, Earley handles it fine.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["E".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::T(a)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        for n in 1..6 {
            let w = s.parse_str(&"a".repeat(n)).unwrap();
            assert!(earley_recognize(&cfg, &w), "a^{n}");
            let t = earley_parse(&cfg, &w).unique().unwrap();
            validate(&t, &cfg.to_lambek(), &w).unwrap();
        }
        assert!(!earley_recognize(&cfg, &GString::new()));
    }

    #[test]
    fn nullable_chains_are_handled() {
        // S ::= A A ; A ::= ε | a.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned()],
            vec![
                vec![Production {
                    rhs: vec![GSym::N(1), GSym::N(1)],
                }],
                vec![
                    Production { rhs: vec![] },
                    Production {
                        rhs: vec![GSym::T(a)],
                    },
                ],
            ],
            0,
        );
        for (w, expect) in [("", true), ("a", true), ("aa", true), ("aaa", false)] {
            let w = s.parse_str(w).unwrap();
            assert_eq!(earley_recognize(&cfg, &w), expect, "{w}");
        }
    }

    /// A grammar whose nullability is only reachable through a chain of
    /// empty productions (S ::= A S b | ε via A ::= B, B ::= ε): the
    /// regression case for the nullable-prediction early exit.
    fn chain_nullable_cfg(s: &Alphabet) -> Cfg {
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned(), "B".to_owned()],
            vec![
                vec![
                    Production {
                        rhs: vec![GSym::N(1), GSym::T(a), GSym::N(0), GSym::T(b)],
                    },
                    Production { rhs: vec![] },
                ],
                vec![Production {
                    rhs: vec![GSym::N(2)],
                }],
                vec![Production { rhs: vec![] }],
            ],
            0,
        )
    }

    #[test]
    fn empty_production_chains_recognize_and_extract() {
        // Regression: nullability through A ::= B, B ::= ε must be seen by
        // the predictor (early exit) and by tree extraction (the chart
        // records the ε-span at every predicted position).
        let s = Alphabet::abc();
        let cfg = chain_nullable_cfg(&s);
        assert_eq!(nullable_set(&cfg), vec![true, true, true]);
        let g = cfg.to_lambek();
        let cg = CompiledGrammar::new(&g);
        for w in all_strings(&s, 6) {
            let recognized = earley_recognize(&cfg, &w);
            assert_eq!(recognized, cg.recognizes(&w), "{w}");
            match earley_parse(&cfg, &w).tree() {
                Some(t) => {
                    assert!(recognized, "{w}");
                    validate(&t, &g, &w).unwrap();
                }
                None => assert!(!recognized, "{w}"),
            }
        }
    }

    #[test]
    fn ambiguity_is_reported_with_its_span() {
        // S ::= S S | a — the textbook ambiguous grammar: "aaa" has two
        // derivations, diverging at the very top span.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::N(0)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        let g = cfg.to_lambek();
        // "a" is unambiguous: only S → a derives it.
        let w = s.parse_str("a").unwrap();
        assert!(matches!(earley_parse(&cfg, &w), EarleyParse::Unique(_)));
        // "aaa" splits as (aa)a or a(aa).
        let w = s.parse_str("aaa").unwrap();
        match earley_parse(&cfg, &w) {
            EarleyParse::Ambiguous { tree, site } => {
                validate(&tree, &g, &w).unwrap();
                assert_eq!(
                    site,
                    AmbiguitySite {
                        nt: 0,
                        start: 0,
                        end: 3
                    }
                );
                assert_eq!(site.describe(&cfg), "S is ambiguous over [0, 3)");
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
        // "b" is no parse — distinguished from ambiguity.
        let w = s.parse_str("b").unwrap();
        assert_eq!(earley_parse(&cfg, &w), EarleyParse::NoParse);
    }

    #[test]
    fn nested_ambiguity_is_found_below_the_root() {
        // S ::= A c ; A ::= a P | a a ; P ::= a — "aac" has two
        // A-derivations while S itself has a single decomposition, so the
        // reported site must be the inner A span.
        let s = Alphabet::abc();
        let (a, c) = (s.symbol("a").unwrap(), s.symbol("c").unwrap());
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned(), "P".to_owned()],
            vec![
                vec![Production {
                    rhs: vec![GSym::N(1), GSym::T(c)],
                }],
                vec![
                    Production {
                        rhs: vec![GSym::T(a), GSym::N(2)],
                    },
                    Production {
                        rhs: vec![GSym::T(a), GSym::T(a)],
                    },
                ],
                vec![Production {
                    rhs: vec![GSym::T(a)],
                }],
            ],
            0,
        );
        let w = s.parse_str("aac").unwrap();
        match earley_parse(&cfg, &w) {
            EarleyParse::Ambiguous { site, .. } => {
                assert_eq!(
                    site,
                    AmbiguitySite {
                        nt: 1,
                        start: 0,
                        end: 2
                    },
                    "the divergence is at A, not S"
                );
            }
            other => panic!("expected ambiguity, got {other:?}"),
        }
    }

    #[test]
    fn nullable_flags_are_exposed_on_the_chart() {
        let s = Alphabet::abc();
        let cfg = chain_nullable_cfg(&s);
        let chart = earley_chart(&cfg, &s.parse_str("ab").unwrap());
        assert!(chart.nullable(0) && chart.nullable(1) && chart.nullable(2));
        assert!(chart.derives(2, 0, 0), "B derives ε at position 0");
    }
}
