//! Earley parsing: the classical CFG baseline.
//!
//! The paper's CFG parsers go through deterministic automata; this module
//! is the general-purpose comparator the benchmarks measure them against.
//! Recognition is textbook Earley (predict/scan/complete); tree extraction
//! rebuilds a derivation from the table of completed nonterminal spans,
//! producing parse trees in the same shape as
//! [`Cfg::to_lambek`](crate::grammar::Cfg::to_lambek) so they validate
//! against the μ-regular grammar directly.

use std::collections::HashSet;

use lambek_core::alphabet::GString;
use lambek_core::grammar::parse_tree::ParseTree;

use crate::grammar::{Cfg, GSym};

/// An Earley item: position `dot` in alternative `alt` of nonterminal
/// `nt`, started at input position `origin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Item {
    nt: usize,
    alt: usize,
    dot: usize,
    origin: usize,
}

/// The Earley chart: completed spans per nonterminal.
#[derive(Debug)]
pub struct EarleyChart {
    n: usize,
    /// `completed[(nt, i, j)]` ⇔ nonterminal `nt` derives `w[i..j]`.
    completed: HashSet<(usize, usize, usize)>,
}

impl EarleyChart {
    /// Whether nonterminal `nt` derives the span `w[i..j]`.
    pub fn derives(&self, nt: usize, i: usize, j: usize) -> bool {
        self.completed.contains(&(nt, i, j))
    }

    /// Input length the chart was built for.
    pub fn input_len(&self) -> usize {
        self.n
    }
}

/// Runs Earley recognition, returning the chart of completed spans.
pub fn earley_chart(cfg: &Cfg, w: &GString) -> EarleyChart {
    let n = w.len();
    let mut sets: Vec<HashSet<Item>> = vec![HashSet::new(); n + 1];
    let mut completed: HashSet<(usize, usize, usize)> = HashSet::new();

    let start_items: Vec<Item> = (0..cfg.alternatives(cfg.start()).len())
        .map(|alt| Item {
            nt: cfg.start(),
            alt,
            dot: 0,
            origin: 0,
        })
        .collect();
    for it in start_items {
        sets[0].insert(it);
    }

    for pos in 0..=n {
        let mut worklist: Vec<Item> = sets[pos].iter().copied().collect();
        while let Some(item) = worklist.pop() {
            let rhs = &cfg.alternatives(item.nt)[item.alt].rhs;
            if item.dot == rhs.len() {
                // Complete.
                completed.insert((item.nt, item.origin, pos));
                let parents: Vec<Item> = sets[item.origin]
                    .iter()
                    .filter(|p| {
                        let prhs = &cfg.alternatives(p.nt)[p.alt].rhs;
                        p.dot < prhs.len() && prhs[p.dot] == GSym::N(item.nt)
                    })
                    .copied()
                    .collect();
                for p in parents {
                    let advanced = Item {
                        dot: p.dot + 1,
                        ..p
                    };
                    if sets[pos].insert(advanced) {
                        worklist.push(advanced);
                    }
                }
            } else {
                match rhs[item.dot] {
                    GSym::T(c) => {
                        // Scan.
                        if pos < n && w[pos] == c {
                            let advanced = Item {
                                dot: item.dot + 1,
                                ..item
                            };
                            sets[pos + 1].insert(advanced);
                        }
                    }
                    GSym::N(m) => {
                        // Predict.
                        for alt in 0..cfg.alternatives(m).len() {
                            let predicted = Item {
                                nt: m,
                                alt,
                                dot: 0,
                                origin: pos,
                            };
                            if sets[pos].insert(predicted) {
                                worklist.push(predicted);
                            }
                        }
                        // Nullable completion (Aycock–Horspool style): if m
                        // already completed ε at pos, advance immediately.
                        if completed.contains(&(m, pos, pos)) {
                            let advanced = Item {
                                dot: item.dot + 1,
                                ..item
                            };
                            if sets[pos].insert(advanced) {
                                worklist.push(advanced);
                            }
                        }
                    }
                }
            }
        }
    }
    EarleyChart { n, completed }
}

/// Whether the CFG derives `w` from its start symbol.
pub fn earley_recognize(cfg: &Cfg, w: &GString) -> bool {
    earley_chart(cfg, w).derives(cfg.start(), 0, w.len())
}

/// Extracts one derivation tree for `w` (the first found, scanning
/// alternatives in order), as a parse tree of `cfg.to_lambek()`. Returns
/// `None` if the string is not derivable.
pub fn earley_parse(cfg: &Cfg, w: &GString) -> Option<ParseTree> {
    let chart = earley_chart(cfg, w);
    if !chart.derives(cfg.start(), 0, w.len()) {
        return None;
    }
    let mut guard = HashSet::new();
    build_nt(cfg, w, &chart, cfg.start(), 0, w.len(), &mut guard)
}

fn build_nt(
    cfg: &Cfg,
    w: &GString,
    chart: &EarleyChart,
    nt: usize,
    i: usize,
    j: usize,
    guard: &mut HashSet<(usize, usize, usize)>,
) -> Option<ParseTree> {
    if !chart.derives(nt, i, j) || !guard.insert((nt, i, j)) {
        // Not derivable, or a unit/ε cycle: fail this path (another
        // alternative will be tried by the caller).
        return None;
    }
    let mut result = None;
    for (alt, prod) in cfg.alternatives(nt).iter().enumerate() {
        if let Some(children) = build_seq(cfg, w, chart, &prod.rhs, i, j, guard) {
            result = Some(cfg.derivation(nt, alt, children));
            break;
        }
    }
    guard.remove(&(nt, i, j));
    result
}

fn build_seq(
    cfg: &Cfg,
    w: &GString,
    chart: &EarleyChart,
    rhs: &[GSym],
    i: usize,
    j: usize,
    guard: &mut HashSet<(usize, usize, usize)>,
) -> Option<Vec<ParseTree>> {
    match rhs.split_first() {
        None => (i == j).then(Vec::new),
        Some((first, rest)) => match first {
            GSym::T(c) => {
                if i < j && w[i] == *c {
                    let mut children = build_seq(cfg, w, chart, rest, i + 1, j, guard)?;
                    children.insert(0, ParseTree::Char(*c));
                    Some(children)
                } else {
                    None
                }
            }
            GSym::N(m) => {
                for k in i..=j {
                    if !chart.derives(*m, i, k) {
                        continue;
                    }
                    if let Some(head) = build_nt(cfg, w, chart, *m, i, k, guard) {
                        if let Some(mut children) = build_seq(cfg, w, chart, rest, k, j, guard) {
                            children.insert(0, head);
                            return Some(children);
                        }
                    }
                }
                None
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::{anbn, Production};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn earley_agrees_with_denotational_recognizer_on_anbn() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        let cg = CompiledGrammar::new(&cfg.to_lambek());
        for w in all_strings(&s, 5) {
            assert_eq!(earley_recognize(&cfg, &w), cg.recognizes(&w), "{w}");
        }
    }

    #[test]
    fn earley_trees_validate_against_the_lambek_grammar() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = anbn(&s, a, b);
        let g = cfg.to_lambek();
        for n in 0..4 {
            let w = s
                .parse_str(&format!("{}{}", "a".repeat(n), "b".repeat(n)))
                .unwrap();
            let t = earley_parse(&cfg, &w).unwrap();
            validate(&t, &g, &w).unwrap();
        }
        assert!(earley_parse(&cfg, &s.parse_str("ab" /* ok */).unwrap()).is_some());
        assert!(earley_parse(&cfg, &s.parse_str("ba").unwrap()).is_none());
    }

    #[test]
    fn left_recursive_grammar_works() {
        // E ::= E a | a — left recursion, Earley handles it fine.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["E".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::T(a)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        for n in 1..6 {
            let w = s.parse_str(&"a".repeat(n)).unwrap();
            assert!(earley_recognize(&cfg, &w), "a^{n}");
            let t = earley_parse(&cfg, &w).unwrap();
            validate(&t, &cfg.to_lambek(), &w).unwrap();
        }
        assert!(!earley_recognize(&cfg, &GString::new()));
    }

    #[test]
    fn nullable_chains_are_handled() {
        // S ::= A A ; A ::= ε | a.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned()],
            vec![
                vec![Production {
                    rhs: vec![GSym::N(1), GSym::N(1)],
                }],
                vec![
                    Production { rhs: vec![] },
                    Production {
                        rhs: vec![GSym::T(a)],
                    },
                ],
            ],
            0,
        );
        for (w, expect) in [("", true), ("a", true), ("aa", true), ("aaa", false)] {
            let w = s.parse_str(w).unwrap();
            assert_eq!(earley_recognize(&cfg, &w), expect, "{w}");
        }
    }
}
