//! # lambek-bench — the experiment harness
//!
//! Criterion benchmarks regenerating every figure and construction of the
//! paper's evaluation narrative; see DESIGN.md §5 for the experiment
//! index and EXPERIMENTS.md for paper-vs-measured records. Run with
//! `cargo bench`.
