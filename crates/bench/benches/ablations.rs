//! Ablations for the design choices of DESIGN.md §6:
//!
//! * `chart_vs_topdown` — the memoized-chart recognizer versus the
//!   memo-free top-down recognizer on the running-example grammar
//!   (expect: top-down blows up combinatorially on longer inputs);
//! * `checked_vs_unchecked` — transformer application with and without
//!   dynamic intrinsic verification (expect: a constant factor);
//! * `minimize_before_traces` — building the Theorem 4.9 parser from the
//!   raw determinized DFA versus the minimized one (expect: smaller trace
//!   grammar, cheaper construction).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::determinize::determinize;
use lambek_automata::gen::blowup_nfa;
use lambek_automata::minimize::minimize;
use lambek_automata::run::dfa_trace_parser;
use lambek_core::alphabet::Alphabet;
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::recognize::recognizes_topdown;
use regex_grammars::ast::parse_regex;
use regex_grammars::thompson::thompson_strong_equiv;

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();

    // (a) chart vs top-down recognition.
    let re = parse_regex(&sigma, "(a|b)*(ab|ba)*c").unwrap();
    let cg = CompiledGrammar::new(&re.to_grammar());
    let mut group = c.benchmark_group("ablate_recognizer");
    group.sample_size(10);
    for n in [4usize, 8, 12] {
        let w = sigma
            .parse_str(&format!("{}c", "ab".repeat(n / 2)))
            .unwrap();
        group.bench_with_input(BenchmarkId::new("chart", n), &w, |b, w| {
            b.iter(|| cg.recognizes(w))
        });
        group.bench_with_input(BenchmarkId::new("topdown", n), &w, |b, w| {
            b.iter(|| recognizes_topdown(&cg, w))
        });
    }
    group.finish();

    // (b) checked vs unchecked transformer application.
    let re = parse_regex(&sigma, "(a*b)|c").unwrap();
    let (_, eq) = thompson_strong_equiv(&sigma, &re);
    let w = sigma.parse_str(&format!("{}b", "a".repeat(64))).unwrap();
    let tree = CompiledGrammar::new(&re.to_grammar())
        .parses(&w, 2)
        .trees
        .remove(0);
    let mut group = c.benchmark_group("ablate_checking");
    group.sample_size(20);
    group.bench_function("apply_unchecked", |b| {
        b.iter(|| eq.weak().fwd.apply(&tree).unwrap())
    });
    group.bench_function("apply_checked", |b| {
        b.iter(|| eq.weak().fwd.apply_checked(&tree).unwrap())
    });
    group.finish();

    // (c) trace parser from raw vs minimized DFA.
    let nfa = blowup_nfa(6);
    let det = determinize(&nfa);
    let min = minimize(&det.dfa);
    println!(
        "ablate_minimize: raw DFA {} states vs minimized {} states",
        det.dfa.num_states(),
        min.num_states()
    );
    let mut group = c.benchmark_group("ablate_minimize");
    group.sample_size(10);
    group.bench_function("trace_parser_raw", |b| {
        b.iter(|| dfa_trace_parser(&det.dfa, det.dfa.init()))
    });
    group.bench_function("trace_parser_minimized", |b| {
        b.iter(|| dfa_trace_parser(&min, min.init()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
