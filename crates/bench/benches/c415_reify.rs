//! C4.15 — Turing reification: building `Reify(aⁿbⁿcⁿ)` up to a length
//! bound, and membership through the reified grammar versus running the
//! machine directly.
//!
//! Expected shape: construction cost is dominated by enumerating all
//! `|Σ|^ℓ` strings (exponential in the bound — the price of truncating an
//! infinite sum); membership through the machine is quadratic in the
//! input (marker passes), through the compiled reified grammar it
//! reflects chart recognition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_core::grammar::compile::CompiledGrammar;
use lambek_turing::machine::anbncn_machine;
use lambek_turing::reify::reify_machine;

const FUEL: usize = 100_000;

fn bench(c: &mut Criterion) {
    let tm = anbncn_machine();
    let sigma = tm.input_alphabet().clone();

    let mut group = c.benchmark_group("c415_reify");
    group.sample_size(10);
    for max_len in [3usize, 6, 9] {
        group.bench_with_input(
            BenchmarkId::new("construct", max_len),
            &max_len,
            |b, &ml| b.iter(|| reify_machine(&tm, FUEL, ml)),
        );
    }

    let reified = reify_machine(&tm, FUEL, 9);
    let cg = CompiledGrammar::new(&reified.grammar);
    for n in [1usize, 2, 3] {
        let w = sigma
            .parse_str(&format!(
                "{}{}{}",
                "a".repeat(n),
                "b".repeat(n),
                "c".repeat(n)
            ))
            .unwrap();
        group.bench_with_input(BenchmarkId::new("machine_accepts", 3 * n), &w, |b, w| {
            b.iter(|| tm.accepts(w, FUEL))
        });
        group.bench_with_input(BenchmarkId::new("grammar_recognizes", 3 * n), &w, |b, w| {
            b.iter(|| cg.recognizes(w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
