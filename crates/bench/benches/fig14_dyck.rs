//! F13/F14/T4.13 — parsing the Dyck language four ways over growing
//! balanced inputs:
//!
//! * `counter_machine` — Fig. 14's automaton, recognition only;
//! * `verified_parse`  — the Theorem 4.13 parser (trace + Dyck tree);
//! * `recursive_descent` — direct unique-derivation construction;
//! * `earley` — the general CFG baseline.
//!
//! Expected shape: machine/descent linear, verified parse linear with a
//! constant factor, Earley super-linear (its item sets grow with
//! nesting) — the automaton-based pipeline wins, as the paper's design
//! intends.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::counter::CounterMachine;
use lambek_automata::gen::random_dyck;
use lambek_cfg::dyck::{dyck_cfg, dyck_parser, parse_dyck_string, Parens};
use lambek_cfg::earley::earley_recognize;

fn bench(c: &mut Criterion) {
    let p = Parens::new();
    let machine = CounterMachine::new();
    let cfg = dyck_cfg(&p);

    let mut group = c.benchmark_group("fig14_dyck");
    group.sample_size(15);
    for pairs in [8usize, 32, 128] {
        let w = random_dyck(pairs, pairs as u64);
        let parser = dyck_parser(w.len());
        group.bench_with_input(BenchmarkId::new("counter_machine", pairs), &w, |b, w| {
            b.iter(|| machine.accepts(w))
        });
        group.bench_with_input(BenchmarkId::new("verified_parse", pairs), &w, |b, w| {
            b.iter(|| parser.parse(w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("recursive_descent", pairs), &w, |b, w| {
            b.iter(|| parse_dyck_string(&p, w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("earley", pairs), &w, |b, w| {
            b.iter(|| earley_recognize(&cfg, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
