//! F15/T4.14 — parsing arithmetic expressions with the lookahead
//! automaton versus the Earley baseline, over growing expressions.
//!
//! Expected shape: the LL(1) machine and the verified parser are linear;
//! Earley is super-linear. The verified parser's constant factor is the
//! price of building the trace plus the `Exp` tree.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::gen::random_arith;
use lambek_automata::lookahead::{simulate, ArithTokens};
use lambek_cfg::earley::earley_recognize;
use lambek_cfg::expr::{exp_cfg, exp_parser, parse_exp_string};

fn bench(c: &mut Criterion) {
    let t = ArithTokens::new();
    let cfg = exp_cfg(&t);

    let mut group = c.benchmark_group("fig15_expr");
    group.sample_size(15);
    for atoms in [8usize, 32, 128] {
        let w = random_arith(atoms, 3, atoms as u64);
        let parser = exp_parser(w.len());
        group.bench_with_input(BenchmarkId::new("lookahead_machine", atoms), &w, |b, w| {
            b.iter(|| simulate(&t, w))
        });
        group.bench_with_input(BenchmarkId::new("ll1_tree", atoms), &w, |b, w| {
            b.iter(|| parse_exp_string(&t, w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("verified_parse", atoms), &w, |b, w| {
            b.iter(|| parser.parse(w).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("earley", atoms), &w, |b, w| {
            b.iter(|| earley_recognize(&cfg, w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
