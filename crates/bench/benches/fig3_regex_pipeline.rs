//! F3/C4.12 — the running example `('a'* ⊗ 'b') ⊕ 'c'` parsed four ways,
//! over growing input length:
//!
//! * `derivative` — Brzozowski baseline (recognition only);
//! * `nfa_subset` — Thompson NFA subset simulation (recognition only);
//! * `dfa_run`    — the compiled DFA (recognition only);
//! * `verified_parse` — the full Corollary 4.12 pipeline *with* parse
//!   tree construction and intrinsic validation.
//!
//! Expected shape: all four are linear in the input; the DFA run is the
//! fastest recognizer, the derivative matcher the slowest; the verified
//! parse pays a constant-factor tree-building overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_core::alphabet::{Alphabet, GString};
use regex_grammars::ast::parse_regex;
use regex_grammars::derivative::matches;
use regex_grammars::pipeline::RegexParser;
use regex_grammars::thompson::thompson_strong_equiv;

fn input(n: usize, sigma: &Alphabet) -> GString {
    // aⁿ⁻¹ b — accepted, exercising the star loop.
    sigma.parse_str(&format!("{}b", "a".repeat(n - 1))).unwrap()
}

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();
    let re = parse_regex(&sigma, "(a*b)|c").unwrap();
    let (th, _) = thompson_strong_equiv(&sigma, &re);
    let parser = RegexParser::compile(&sigma, re.clone()).unwrap();

    let mut group = c.benchmark_group("fig3_regex");
    group.sample_size(20);
    for n in [8usize, 32, 128, 512] {
        let w = input(n, &sigma);
        group.bench_with_input(BenchmarkId::new("derivative", n), &w, |b, w| {
            b.iter(|| matches(&re, w))
        });
        group.bench_with_input(BenchmarkId::new("nfa_subset", n), &w, |b, w| {
            b.iter(|| th.nfa().accepts(w))
        });
        group.bench_with_input(BenchmarkId::new("dfa_run", n), &w, |b, w| {
            b.iter(|| parser.accepts(w))
        });
        group.bench_with_input(BenchmarkId::new("verified_parse", n), &w, |b, w| {
            b.iter(|| parser.parse(w).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
