//! F4 — Fig. 4's parse transformer `h : (A ⊗ A)* ⊸ A*` built from the
//! `fold` combinator, applied to lists of growing length.
//!
//! Expected shape: linear in the list length (fold is structural
//! recursion; each cons cell is visited once). The `checked` series adds
//! the dynamic intrinsic-verification overhead (validate + yield check).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use lambek_core::alphabet::Alphabet;
use lambek_core::grammar::expr::{
    alt, chr, eps, star, tensor, var, Grammar, GrammarExpr, MuSystem,
};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::transform::combinators::{assoc, either, id, inj, tensor_par};
use lambek_core::transform::fold::{fold, roll};
use lambek_core::transform::Transformer;

fn star_system(a: Grammar) -> Arc<MuSystem> {
    MuSystem::new(vec![alt(eps(), tensor(a, var(0)))], vec!["star".to_owned()])
}

/// Fig. 4's `h`, in the paper's combinator form (§5.3):
/// `h = fold nil (cons ∘ id ⊗ cons ∘ assoc⁻¹)`.
fn fig4(a: Grammar) -> Transformer {
    let pairs = star_system(tensor(a.clone(), a.clone()));
    let astar = star(a.clone());
    let star_sys = match &*astar {
        GrammarExpr::Mu { system, .. } => system.clone(),
        _ => unreachable!(),
    };
    let nil_case = inj(0, vec![eps(), tensor(a.clone(), astar.clone())])
        .then(&roll(star_sys.clone(), 0))
        .unwrap();
    let cons = |tail: Grammar| {
        inj(1, vec![eps(), tensor(a.clone(), tail)])
            .then(&roll(star_sys.clone(), 0))
            .unwrap()
    };
    let cons_case = assoc(a.clone(), a.clone(), astar.clone())
        .then(&tensor_par(id(a.clone()), cons(astar.clone())))
        .unwrap()
        .then(&cons(astar))
        .unwrap();
    fold(pairs, 0, vec![either(nil_case, cons_case)])
}

fn list_of_pairs(n: usize, a: lambek_core::alphabet::Symbol) -> ParseTree {
    let mut t = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
    for _ in 0..n {
        let pair = ParseTree::pair(ParseTree::Char(a), ParseTree::Char(a));
        t = ParseTree::roll(ParseTree::inj(1, ParseTree::pair(pair, t)));
    }
    t
}

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();
    let a = sigma.symbol("a").unwrap();
    let h = fig4(chr(a));

    let mut group = c.benchmark_group("fig4_fold");
    group.sample_size(20);
    for n in [16usize, 64, 256, 1024] {
        let input = list_of_pairs(n, a);
        group.bench_with_input(BenchmarkId::new("h_pairs_to_star", n), &input, |b, t| {
            b.iter(|| h.apply(t).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("h_checked", n), &input, |b, t| {
            b.iter(|| h.apply_checked(t).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
