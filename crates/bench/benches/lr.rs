//! LR vs Earley on the deterministic standards — the speedup the
//! certified LR subsystem buys over the general chart parser.
//!
//! Four comparisons per grammar (Dyck and the Fig. 15 expressions) at
//! input lengths n = 64 / 256 / 1024 symbols:
//!
//! * `lr_recognize` — the dense-table state run, no trees;
//! * `lr_parse` — shift-reduce tree building with the *incremental*
//!   certification (each reduction checked as it happens, O(1) per
//!   step via interned grammar ids);
//! * `lr_parse_full` — the same run finished with the whole-tree
//!   post-hoc re-validation (the pre-incremental contract price);
//! * `earley_recognize` / `earley_parse` — the baseline.
//!
//! Expected shape: LR linear with a small constant; Earley super-linear
//! (≥ 10× behind at n = 1024, typically far more). The trailing group
//! measures what the engine amortizes: LALR table construction from
//! scratch vs a cached `get_or_compile` hit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::gen::random_dyck;
use lambek_automata::lookahead::ArithTokens;
use lambek_cfg::dyck::{dyck_cfg, Parens};
use lambek_cfg::earley::{earley_parse, earley_recognize};
use lambek_cfg::expr::exp_cfg;
use lambek_cfg::grammar::Cfg;
use lambek_core::alphabet::GString;
use lambek_engine::{Engine, PipelineSpec};
use lambek_lr::CertifiedLrParser;

/// An expression of exactly `n` symbols (n odd): `n + n + … + n`.
fn chain_expr(t: &ArithTokens, n: usize) -> GString {
    let mut w = GString::singleton(t.num);
    while w.len() + 2 <= n {
        w.push(t.add);
        w.push(t.num);
    }
    w
}

fn bench_grammar(c: &mut Criterion, group: &str, cfg: &Cfg, inputs: &[(usize, GString)]) {
    let parser = CertifiedLrParser::compile(cfg).expect("deterministic standard");
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for (n, w) in inputs {
        g.bench_with_input(BenchmarkId::new("lr_recognize", n), w, |b, w| {
            b.iter(|| parser.recognizes(w))
        });
        g.bench_with_input(BenchmarkId::new("lr_parse", n), w, |b, w| {
            b.iter(|| parser.parse(w).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("lr_parse_full", n), w, |b, w| {
            b.iter(|| parser.parse_full(w).unwrap())
        });
        g.bench_with_input(BenchmarkId::new("earley_recognize", n), w, |b, w| {
            b.iter(|| earley_recognize(cfg, w))
        });
        g.bench_with_input(BenchmarkId::new("earley_parse", n), w, |b, w| {
            b.iter(|| earley_parse(cfg, w).tree().unwrap())
        });
    }
    g.finish();
}

fn bench(c: &mut Criterion) {
    let p = Parens::new();
    let dyck = dyck_cfg(&p);
    let dyck_inputs: Vec<(usize, GString)> = [64usize, 256, 1024]
        .iter()
        .map(|&n| (n, random_dyck(n / 2, n as u64)))
        .collect();
    bench_grammar(c, "lr_dyck", &dyck, &dyck_inputs);

    let t = ArithTokens::new();
    let expr = exp_cfg(&t);
    let expr_inputs: Vec<(usize, GString)> = [64usize, 256, 1024]
        .iter()
        .map(|&n| (n, chain_expr(&t, n)))
        .collect();
    bench_grammar(c, "lr_expr", &expr, &expr_inputs);

    // Construction vs amortization: building the LALR tables from
    // scratch against a warm engine cache hit for the same spec.
    let mut g = c.benchmark_group("lr_tables");
    g.sample_size(10);
    g.bench_function("build_dyck_tables", |b| {
        b.iter(|| CertifiedLrParser::compile(&dyck).unwrap())
    });
    g.bench_function("build_expr_tables", |b| {
        b.iter(|| CertifiedLrParser::compile(&expr).unwrap())
    });
    let engine = Engine::new();
    let spec = PipelineSpec::dyck_cfg();
    engine.get_or_compile(&spec).unwrap();
    g.bench_function("engine_cached_hit", |b| {
        b.iter(|| engine.get_or_compile(&spec).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
