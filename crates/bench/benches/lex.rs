//! Lexing throughput and the point of the lexed pipeline: raw-text
//! parsing as lex + token-level LR versus a char-level CFG fed to
//! Earley.
//!
//! Three groups:
//!
//! * `lex_throughput` — the maximal-munch tagged-DFA driver over
//!   arithmetic text at 1 KiB / 64 KiB / 1 MiB (MB/s is the number to
//!   read off: bytes ÷ time): the raw driver, the incremental certifier
//!   (span tiling as a running cursor, memoized derivative re-match at
//!   each munch boundary), and the full post-hoc re-validation pass;
//! * `lex_vs_char_earley` — the same raw arithmetic language parsed two
//!   ways: certified lex + certified LR over tokens (the new
//!   subsystem), against Earley over the character-level grammar with
//!   `NUM` expanded to digit productions (recognition only, to be
//!   generous to the baseline — tree extraction would slow it further);
//! * `lex_compile` — spec → tagged DFA construction vs a warm engine
//!   cache hit for the same lexed spec.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_cfg::earley::earley_recognize;
use lambek_engine::{Engine, PipelineSpec};
use lambek_lex::demo::{arith_char_cfg, arith_spec, arith_text, arith_token_cfg};
use lambek_lex::{CertifiedLexer, LexAutomaton};
use lambek_lr::CertifiedLrParser;

fn bench(c: &mut Criterion) {
    let auto = LexAutomaton::compile(arith_spec());
    let certified = CertifiedLexer::from_automaton(auto.clone());

    let mut g = c.benchmark_group("lex_throughput");
    g.sample_size(10);
    for kib in [1usize, 64, 1024] {
        let text = arith_text(kib * 1024);
        g.bench_with_input(
            BenchmarkId::new("raw_driver", format!("{kib}KiB")),
            &text,
            |b, t| b.iter(|| auto.lex_raw(t).unwrap().len()),
        );
        g.bench_with_input(
            BenchmarkId::new("certified_incremental", format!("{kib}KiB")),
            &text,
            |b, t| b.iter(|| certified.lex(t).unwrap().is_accept()),
        );
        g.bench_with_input(
            BenchmarkId::new("certified_full", format!("{kib}KiB")),
            &text,
            |b, t| b.iter(|| certified.lex_full(t).unwrap().is_accept()),
        );
    }
    g.finish();

    // The composed raw-text pipeline against the char-level baseline,
    // on the *same* language and the same inputs (no whitespace: the
    // char-level grammar has no skip channel).
    let token_cfg = arith_token_cfg();
    let lr = CertifiedLrParser::compile(&token_cfg).expect("Fig. 15 is LALR(1)");
    let char_cfg = arith_char_cfg();
    let char_alphabet = char_cfg.alphabet().clone();
    let mut g = c.benchmark_group("lex_vs_char_earley");
    g.sample_size(10);
    for kib in [1usize, 4] {
        let text = arith_text(kib * 1024);
        g.bench_with_input(
            BenchmarkId::new("lex_lr_parse_certified", format!("{kib}KiB")),
            &text,
            |b, t| {
                b.iter(|| {
                    let out = certified.lex(t).unwrap();
                    let tokens = out.tokens().expect("arith text lexes");
                    lr.parse(tokens.yield_string()).unwrap().is_accept()
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("char_earley_recognize", format!("{kib}KiB")),
            &text,
            |b, t| {
                let w = char_alphabet.parse_str(t).expect("chars in alphabet");
                b.iter(|| earley_recognize(&char_cfg, &w))
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("lex_compile");
    g.sample_size(10);
    g.bench_function("spec_to_tagged_dfa", |b| {
        b.iter(|| LexAutomaton::compile(arith_spec()).dfa().num_states())
    });
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    engine.get_or_compile(&spec).unwrap();
    g.bench_function("engine_cached_hit", |b| {
        b.iter(|| engine.get_or_compile(&spec).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
