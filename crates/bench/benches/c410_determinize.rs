//! C4.10 — Rabin–Scott determinization: time and state blow-up.
//!
//! Two series: random NFAs (mild growth) and the classic worst-case
//! family `(a|b)* a (a|b)^k`, whose minimal DFA needs `2^(k+1)` states.
//! The printed `k=…` rows record the measured blow-up shape for
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::determinize::determinize;
use lambek_automata::gen::{blowup_nfa, random_nfa};
use lambek_automata::minimize::minimize;
use lambek_core::alphabet::Alphabet;

fn bench(c: &mut Criterion) {
    println!("determinization blow-up (worst-case family):");
    for k in 1..=8 {
        let nfa = blowup_nfa(k);
        let det = determinize(&nfa);
        let min = minimize(&det.dfa);
        println!(
            "  k={k}: NFA {} states → DFA {} states (minimized {}; 2^(k+1) = {})",
            nfa.num_states(),
            det.dfa.num_states(),
            min.num_states(),
            1 << (k + 1)
        );
    }

    let mut group = c.benchmark_group("c410_determinize");
    group.sample_size(15);
    for k in [4usize, 6, 8, 10] {
        let nfa = blowup_nfa(k);
        group.bench_with_input(BenchmarkId::new("blowup_family", k), &nfa, |b, nfa| {
            b.iter(|| determinize(nfa))
        });
    }
    let sigma = Alphabet::abc();
    for n in [4usize, 8, 16, 32] {
        let nfa = random_nfa(&sigma, n, 1.5, 99);
        group.bench_with_input(BenchmarkId::new("random_nfa", n), &nfa, |b, nfa| {
            b.iter(|| determinize(nfa))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
