//! The incremental-certification headline numbers, emitted as
//! machine-readable JSON (`BENCH_certify.json` at the repo root) so CI
//! and the README table can track the certification overhead.
//!
//! Two families, each at three input sizes:
//!
//! * lexing (arith text, 1 KiB / 64 KiB / 1 MiB): the raw maximal-munch
//!   driver, the incremental certifier (running span cursor + memoized
//!   derivative re-match per munch boundary), and the full post-hoc
//!   re-validation pass it replaced;
//! * LR parsing (Dyck, 1 Ki / 64 Ki / 1 Mi symbols): bare recognition,
//!   uncertified tree building (the cost floor of materializing the
//!   derivation witness at all), tree building with per-reduction
//!   certification, and tree building finished with the whole-tree
//!   `validate`.
//!
//! Timing is hand-rolled (median of five samples) rather than Criterion
//! so the binary can write one flat JSON file without a report
//! directory. `CERTIFY_SAMPLE_MS` overrides the per-sample budget.
//!
//! Each family runs in its own child process (the binary re-execs
//! itself with `CERTIFY_SECTION` set): the lexing workload churns the
//! allocator with millions of short-lived tokens, and measuring the LR
//! family on that fragmented heap inflates its numbers by ~2.5× —
//! process isolation keeps every section on a fresh heap. Sections
//! print human-readable lines on stderr and their JSON rows on stdout.

use std::time::Instant;

use lambek_automata::gen::random_dyck;
use lambek_cfg::dyck::{dyck_cfg, Parens};
use lambek_lex::demo::{arith_spec, arith_text};
use lambek_lex::CertifiedLexer;
use lambek_lr::CertifiedLrParser;

/// Median seconds-per-iteration over five samples; each sample runs
/// iterations until the budget (default 20 ms) elapses.
fn time<R>(mut f: impl FnMut() -> R) -> f64 {
    let budget_ms: u128 = std::env::var("CERTIFY_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    std::hint::black_box(f()); // warm-up
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed().as_millis() >= budget_ms {
                break;
            }
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn row(pairs: &[(&str, f64)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.9}"))
        .collect();
    format!("    {{ {} }}", fields.join(", "))
}

fn lex_section() -> Vec<String> {
    let lexer = CertifiedLexer::compile(arith_spec());
    let auto = lexer.automaton().clone();
    let mut rows = Vec::new();
    for kib in [1usize, 64, 1024] {
        let text = arith_text(kib * 1024);
        let raw = time(|| auto.lex_raw(&text).unwrap().len());
        let incremental = time(|| lexer.lex(&text).unwrap().is_accept());
        let full = time(|| lexer.lex_full(&text).unwrap().is_accept());
        eprintln!(
            "lex {kib:>5} KiB: raw {raw:.3e}s  incremental {incremental:.3e}s \
             ({:.2}x)  full {full:.3e}s ({:.2}x)",
            incremental / raw,
            full / raw
        );
        rows.push(row(&[
            ("bytes", (kib * 1024) as f64),
            ("raw_s", raw),
            ("incremental_s", incremental),
            ("full_s", full),
            ("incremental_over_raw", incremental / raw),
            ("full_over_raw", full / raw),
        ]));
    }
    rows
}

fn lr_section() -> Vec<String> {
    let p = Parens::new();
    let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).expect("Dyck is LALR(1)");
    let mut rows = Vec::new();
    for n in [1usize << 10, 1 << 16, 1 << 20] {
        let w = random_dyck(n / 2, n as u64);
        let recognize = time(|| parser.recognizes(&w));
        let unchecked = time(|| parser.parse_unchecked(&w).is_accept());
        let incremental = time(|| parser.parse(&w).unwrap().is_accept());
        let full = time(|| parser.parse_full(&w).unwrap().is_accept());
        eprintln!(
            "lr  {n:>7} sym: recognize {recognize:.3e}s  parse {unchecked:.3e}s  \
             parse+cert {incremental:.3e}s ({:.2}x of parse, {:.2}x of recognize)  \
             parse+full {full:.3e}s ({:.2}x of recognize)",
            incremental / unchecked,
            incremental / recognize,
            full / recognize
        );
        rows.push(row(&[
            ("symbols", n as f64),
            ("recognize_s", recognize),
            ("parse_unchecked_s", unchecked),
            ("parse_incremental_s", incremental),
            ("parse_full_s", full),
            ("incremental_over_unchecked", incremental / unchecked),
            ("incremental_over_recognize", incremental / recognize),
            ("full_over_recognize", full / recognize),
        ]));
    }
    rows
}

fn main() {
    match std::env::var("CERTIFY_SECTION").as_deref() {
        Ok("lex") => print!("{}", lex_section().join(",\n")),
        Ok("lr") => print!("{}", lr_section().join(",\n")),
        _ => {
            let exe = std::env::current_exe().expect("own executable path");
            let section = |name: &str| {
                let out = std::process::Command::new(&exe)
                    .env("CERTIFY_SECTION", name)
                    .stderr(std::process::Stdio::inherit())
                    .output()
                    .unwrap_or_else(|e| panic!("spawn {name} section: {e}"));
                assert!(out.status.success(), "{name} section failed");
                String::from_utf8(out.stdout).expect("section rows are UTF-8")
            };
            let lex = section("lex");
            let lr = section("lr");
            let json = format!("{{\n  \"lex\": [\n{lex}\n  ],\n  \"lr_dyck\": [\n{lr}\n  ]\n}}\n");
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_certify.json");
            std::fs::write(path, json).expect("write BENCH_certify.json");
            println!("wrote {path}");
        }
    }
}
