//! Serving-tier headline numbers, emitted as machine-readable JSON
//! (`BENCH_serving.json` at the repo root):
//!
//! * batch throughput on a 4 KiB arith workload, persistent worker
//!   pool ([`Engine::parse_many_str`]) vs the per-call scoped-thread
//!   baseline ([`parse_batch_str`]) it replaced — the pool amortizes
//!   thread spawn/join across batches, so its per-batch time should be
//!   at or below the baseline;
//! * cache latency asymmetry: a hit on a resident pipeline vs the
//!   evict-and-recompile path a thrashing working set pays, plus the
//!   single-lookup hit latency the cost-weighted policy protects.
//!
//! Timing is hand-rolled (median of five samples) like `certify.rs`, so
//! the binary writes one flat JSON file. `SERVING_SAMPLE_MS` overrides
//! the per-sample budget (default 20 ms).

use std::time::Instant;

use lambek_engine::{parse_batch_str, CacheConfig, Engine, PipelineSpec};
use lambek_lex::demo::arith_text;

/// Median seconds-per-iteration over five samples; each sample runs
/// iterations until the budget elapses.
fn time<R>(mut f: impl FnMut() -> R) -> f64 {
    let budget_ms: u128 = std::env::var("SERVING_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    std::hint::black_box(f()); // warm-up
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed().as_millis() >= budget_ms {
                break;
            }
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn row(pairs: &[(&str, f64)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.9}"))
        .collect();
    format!("    {{ {} }}", fields.join(", "))
}

/// Pool vs scoped-thread batch throughput on 4 KiB arith documents.
fn pool_section() -> Vec<String> {
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    let pipeline = engine.get_or_compile(&spec).expect("arith compiles");
    let doc = arith_text(4096);
    let mut rows = Vec::new();
    for (batch, workers) in [(8usize, 4usize), (32, 4), (32, 8)] {
        let inputs: Vec<&str> = (0..batch).map(|_| doc.as_str()).collect();
        let scoped = time(|| parse_batch_str(&pipeline, &inputs, workers).len());
        let pool = time(|| {
            engine
                .parse_many_str(&spec, &inputs, workers)
                .expect("cached")
                .len()
        });
        let bytes = (batch * doc.len()) as f64;
        eprintln!(
            "batch {batch:>3} x 4 KiB, {workers} workers: scoped {scoped:.3e}s  \
             pool {pool:.3e}s  ({:.2}x, pool {:.1} MiB/s)",
            pool / scoped,
            bytes / pool / (1024.0 * 1024.0),
        );
        rows.push(row(&[
            ("batch", batch as f64),
            ("workers", workers as f64),
            ("bytes_per_input", doc.len() as f64),
            ("scoped_s", scoped),
            ("pool_s", pool),
            ("pool_over_scoped", pool / scoped),
            ("pool_bytes_per_s", bytes / pool),
            ("scoped_bytes_per_s", bytes / scoped),
        ]));
    }
    rows
}

/// Cache hit latency vs the evict-and-recompile path, under a capacity
/// deliberately below the working set.
fn cache_section() -> Vec<String> {
    // Capacity 2, working set 3: every round-robin lookup beyond the
    // second evicts the least-credited entry and recompiles.
    let thrashing = Engine::with_config(CacheConfig {
        max_entries: 2,
        max_weight: std::time::Duration::from_secs(3600),
    });
    let specs = [
        PipelineSpec::arith_lexed(),
        PipelineSpec::json_lexed(),
        PipelineSpec::expr_cfg(),
    ];
    let mut next = 0usize;
    let recompile = time(|| {
        let p = thrashing
            .get_or_compile(&specs[next % 3])
            .expect("compiles");
        next += 1;
        std::sync::Arc::strong_count(&p)
    });

    let resident = Engine::new();
    resident.get_or_compile(&specs[0]).expect("compiles");
    let hit =
        time(|| std::sync::Arc::strong_count(&resident.get_or_compile(&specs[0]).expect("cached")));

    let stats = thrashing.engine_stats();
    eprintln!(
        "cache: hit {hit:.3e}s  evict+recompile {recompile:.3e}s ({:.0}x); \
         {} evictions, slowest compile {:.3e}s",
        recompile / hit,
        stats.evictions,
        stats.compile_max.as_secs_f64(),
    );
    vec![row(&[
        ("hit_s", hit),
        ("evict_recompile_s", recompile),
        ("recompile_over_hit", recompile / hit),
        ("evictions", stats.evictions as f64),
        ("compile_max_s", stats.compile_max.as_secs_f64()),
        ("compile_total_s", stats.compile_total.as_secs_f64()),
    ])]
}

fn main() {
    let pool = pool_section().join(",\n");
    let cache = cache_section().join(",\n");
    let json =
        format!("{{\n  \"pool_vs_scoped\": [\n{pool}\n  ],\n  \"cache\": [\n{cache}\n  ]\n}}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(path, json).expect("write BENCH_serving.json");
    println!("wrote {path}");
}
