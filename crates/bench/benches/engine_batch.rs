//! Serving-engine benchmarks: compile-once cache amortization and batch
//! fan-out over worker threads.
//!
//! Expected shape: `get_cached` is nanoseconds against a multi-millisecond
//! `compile`, and `parse_many` scales with workers until tree building
//! saturates memory bandwidth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::gen::random_dyck;
use lambek_core::alphabet::GString;
use lambek_engine::{parse_batch, Engine, PipelineSpec};

fn bench(c: &mut Criterion) {
    let spec = PipelineSpec::dyck(64);

    let mut group = c.benchmark_group("engine");
    group.sample_size(10);

    group.bench_function("compile_dyck64", |b| b.iter(|| spec.compile().unwrap()));

    let engine = Engine::new();
    engine.get_or_compile(&spec).unwrap();
    group.bench_function("get_cached", |b| {
        b.iter(|| engine.get_or_compile(&spec).unwrap())
    });

    let inputs: Vec<GString> = (0..256).map(|i| random_dyck(16, i as u64)).collect();
    let pipeline = engine.get_or_compile(&spec).unwrap();
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("parse_many_256x32", workers),
            &workers,
            |b, &workers| b.iter(|| parse_batch(&pipeline, &inputs, workers)),
        );
    }

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
