//! Grammar-frontend corpus numbers, emitted as machine-readable JSON
//! (`BENCH_frontend.json` at the repo root), one row per shipped preset
//! (`lambek_frontend::presets`):
//!
//! * `text_compile_s` — the full cold cost of a text submission:
//!   self-hosted parse, elaboration, LALR table construction and
//!   certification ([`lambek_frontend::compile_text`]);
//! * `engine_resubmit_s` — what a *repeat* submission of the same text
//!   pays through [`Engine::compile_text`]: the meta parse and
//!   elaboration still run, but the interned `SpecKey` turns the table
//!   build into a cache hit. For the small preset grammars the meta
//!   parse dominates both paths, so the ratio hovers near 1 — the
//!   cache's real win is sharing the *compiled pipeline* (and its
//!   sessions) across submitters, not shaving the compile;
//! * parse throughput of the compiled pipeline over a corpus document
//!   in the preset's own format.
//!
//! Timing is hand-rolled (median of five samples) like `serving.rs`.
//! `FRONTEND_SAMPLE_MS` overrides the per-sample budget (default 20 ms).

use std::time::Instant;

use lambek_engine::Engine;
use lambek_frontend::{compile_text, presets, Budgets};

/// Median seconds-per-iteration over five samples; each sample runs
/// iterations until the budget elapses.
fn time<R>(mut f: impl FnMut() -> R) -> f64 {
    let budget_ms: u128 = std::env::var("FRONTEND_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    std::hint::black_box(f()); // warm-up
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed().as_millis() >= budget_ms {
                break;
            }
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn row(name: &str, pairs: &[(&str, f64)]) -> String {
    let mut fields = vec![format!("\"preset\": \"{name}\"")];
    fields.extend(pairs.iter().map(|(k, v)| format!("\"{k}\": {v:.9}")));
    format!("    {{ {} }}", fields.join(", "))
}

/// A corpus document in each preset's own format, sized to make parse
/// throughput a steady-state number rather than a startup one.
fn corpus_doc(name: &str) -> String {
    match name {
        "json" => {
            let item = r#"{"id": 17, "name": "widget", "tags": ["a", "b"], "price": 2.5e1, "ok": true, "note": null}"#;
            let items: Vec<&str> = (0..64).map(|_| item).collect();
            format!("[{}]", items.join(", "))
        }
        "csv" => {
            let mut doc = String::from("id,name,comment");
            for _ in 0..128 {
                doc.push_str("\n17,widget,\"he said \"\"hi\"\", twice\"");
            }
            doc
        }
        "ini" => {
            let mut doc = String::new();
            for _ in 0..64 {
                doc.push_str("[core]\nname = lambekd\nversion = \"0.1\"\n; a comment line\n");
            }
            doc
        }
        "http" => "GET /index.html?q=1&r=2 HTTP/1.1\r\n".repeat(128),
        "clf" => {
            "127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] \"GET /a.gif HTTP/1.0\" 200 2326\n"
                .repeat(64)
        }
        other => panic!("no corpus for preset {other}"),
    }
}

fn main() {
    let engine = Engine::new();
    let budgets = Budgets::default();
    let mut compile_rows = Vec::new();
    let mut parse_rows = Vec::new();

    for (name, text) in presets::all() {
        // Cold: the whole frontend stack, table build included.
        let cold = time(|| compile_text(text, &budgets).expect("preset compiles"));
        // Resubmission: meta parse + elaboration, table from the cache.
        let handle = engine.compile_text(text).expect("preset compiles");
        let resubmit = time(|| engine.compile_text(text).expect("cached").cache_hit);
        eprintln!(
            "{name:>5}: cold {cold:.3e}s  resubmit {resubmit:.3e}s ({:.1}x)",
            cold / resubmit
        );
        compile_rows.push(row(
            name,
            &[
                ("spec_bytes", text.len() as f64),
                ("text_compile_s", cold),
                ("engine_resubmit_s", resubmit),
                ("cold_over_resubmit", cold / resubmit),
            ],
        ));

        let doc = corpus_doc(name);
        let backend = handle.pipeline.lexed_backend().expect("text pipeline");
        assert!(
            backend
                .parse_str(&doc)
                .expect("certified parse")
                .is_accept(),
            "preset {name} rejects its own corpus document"
        );
        let parse = time(|| {
            backend
                .parse_str(&doc)
                .expect("certified parse")
                .is_accept()
        });
        let bytes = doc.len() as f64;
        eprintln!(
            "{name:>5}: parse {parse:.3e}s over {} B ({:.1} MiB/s)",
            doc.len(),
            bytes / parse / (1024.0 * 1024.0),
        );
        parse_rows.push(row(
            name,
            &[
                ("doc_bytes", bytes),
                ("parse_s", parse),
                ("bytes_per_s", bytes / parse),
            ],
        ));
    }

    let compile = compile_rows.join(",\n");
    let parse = parse_rows.join(",\n");
    let json = format!("{{\n  \"compile\": [\n{compile}\n  ],\n  \"parse\": [\n{parse}\n  ]\n}}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontend.json");
    std::fs::write(path, json).expect("write BENCH_frontend.json");
    println!("wrote {path}");
}
