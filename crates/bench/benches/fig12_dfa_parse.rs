//! F12/T4.9 — `parseD`/`printD` over growing inputs on a random DFA.
//!
//! Expected shape: both are linear in the input length; `printD` is a
//! cheap forward walk of the trace.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::dfa::{parse_dfa, print_dfa};
use lambek_automata::gen::{random_dfa, random_string};
use lambek_core::alphabet::Alphabet;

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();
    let dfa = random_dfa(&sigma, 8, 7);
    let tg = dfa.trace_grammar();

    let mut group = c.benchmark_group("fig12_parseD");
    group.sample_size(20);
    for n in [16usize, 64, 256, 1024] {
        let w = random_string(&sigma, n, n as u64);
        group.bench_with_input(BenchmarkId::new("parseD", n), &w, |b, w| {
            b.iter(|| parse_dfa(&dfa, &tg, dfa.init(), w))
        });
        let (bit, trace) = parse_dfa(&dfa, &tg, dfa.init(), &w);
        group.bench_with_input(BenchmarkId::new("printD", n), &trace, |b, t| {
            b.iter(|| print_dfa(&dfa, &tg, dfa.init(), bit, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
