//! F12/T4.9 — `parseD`/`printD` over growing inputs on a random DFA.
//!
//! Expected shape: both are linear in the input length; `printD` is a
//! cheap forward walk of the trace. The `run_dense` / `run_hashmap`
//! pair isolates the transition-table representation: the dense flat
//! `Vec` table against a hash-probed `HashMap<(state, sym), state>`
//! reference, on identical automata and inputs.

use std::collections::HashMap;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_automata::dfa::{parse_dfa, print_dfa, Dfa};
use lambek_automata::gen::{random_dfa, random_string};
use lambek_core::alphabet::{Alphabet, GString, Symbol};

/// Hash-probed transition table: the representation the dense flat table
/// replaced.
fn hashmap_table(dfa: &Dfa) -> HashMap<(usize, Symbol), usize> {
    let mut table = HashMap::new();
    for s in 0..dfa.num_states() {
        for c in dfa.alphabet().symbols() {
            table.insert((s, c), dfa.delta(s, c));
        }
    }
    table
}

fn run_hashmap(table: &HashMap<(usize, Symbol), usize>, start: usize, w: &GString) -> usize {
    let mut s = start;
    for sym in w.iter() {
        s = table[&(s, sym)];
    }
    s
}

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();
    let dfa = random_dfa(&sigma, 8, 7);
    let tg = dfa.trace_grammar();
    let table = hashmap_table(&dfa);

    let mut group = c.benchmark_group("fig12_parseD");
    group.sample_size(20);
    for n in [16usize, 64, 256, 1024] {
        let w = random_string(&sigma, n, n as u64);
        group.bench_with_input(BenchmarkId::new("parseD", n), &w, |b, w| {
            b.iter(|| parse_dfa(&dfa, &tg, dfa.init(), w))
        });
        let (bit, trace) = parse_dfa(&dfa, &tg, dfa.init(), &w);
        group.bench_with_input(BenchmarkId::new("printD", n), &trace, |b, t| {
            b.iter(|| print_dfa(&dfa, &tg, dfa.init(), bit, t))
        });
        group.bench_with_input(BenchmarkId::new("run_dense", n), &w, |b, w| {
            b.iter(|| dfa.final_state(dfa.init(), w))
        });
        group.bench_with_input(BenchmarkId::new("run_hashmap", n), &w, |b, w| {
            b.iter(|| run_hashmap(&table, dfa.init(), w))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
