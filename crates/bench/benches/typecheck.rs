//! §3/Fig 9 — ordered-linear type checker throughput, plus
//! interned-vs-baseline groups for the hash-consed core.
//!
//! * `typecheck/lambda_chain` — right-nested tensor chains
//!   `λ x₁ … λ xₙ. (x₁, (x₂, …))` checked against their `⊸` types
//!   (near-linear in the term size).
//! * `type_eq_deep`, `type_eq_wide`, `type_eq_repeated` — structural
//!   type equality on deep nesting, wide `⊕`/`&`, and repeated-subterm
//!   workloads: `baseline` builds types with raw (unshared) `Arc`s so
//!   `lin_type_equal` must descend structurally, `interned` builds the
//!   same types through the hash-consing constructors so the pointer
//!   fast path answers in O(1).
//! * `subst_repeated` — re-running the same index substitution:
//!   `uncached` is the structural recursion, `cached` the id-memoized
//!   interner path.
//! * `check_wide_with` — the checker's conversion checks on a wide `&`
//!   of a shared component type, end to end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use lambek_core::alphabet::Alphabet;
use lambek_core::check::Checker;
use lambek_core::syntax::nonlinear::{NlCtx, NlTerm};
use lambek_core::syntax::terms::LinTerm;
use lambek_core::syntax::types::{
    lin_type_equal, subst_lin_type, subst_lin_type_uncached, LinType, Signature,
};

/// Constructors that deliberately bypass the interner: every node is a
/// fresh allocation, nothing is shared — the pre-hash-consing baseline.
mod raw {
    use super::*;

    pub fn tensor(a: LinType, b: LinType) -> LinType {
        LinType::Tensor(Arc::new(a), Arc::new(b))
    }

    pub fn plus(ts: Vec<LinType>) -> LinType {
        LinType::Plus(ts)
    }

    pub fn with(ts: Vec<LinType>) -> LinType {
        LinType::With(ts)
    }
}

fn chr(name: &str) -> LinType {
    LinType::Char(Alphabet::abc().symbol(name).unwrap())
}

/// `λ x₁ … λ xₙ. (x₁, (x₂, (… xₙ)))` with its type.
fn chain(n: usize, a: &LinType) -> (LinTerm, LinType) {
    let vars: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
    let mut body = LinTerm::var(&vars[n - 1]);
    let mut ty = a.clone();
    for i in (0..n - 1).rev() {
        body = LinTerm::pair(LinTerm::var(&vars[i]), body);
        ty = LinType::tensor(a.clone(), ty);
    }
    let mut term = body;
    let mut full = ty;
    for v in vars.iter().rev() {
        term = LinTerm::Lam {
            var: v.clone(),
            dom: Arc::new(a.clone()),
            body: Arc::new(term),
        };
    }
    for _ in 0..n {
        full = LinType::lfun(a.clone(), full);
    }
    // Note: the ⊸-chain type nests the tensor codomain innermost.
    (term, full)
}

/// An n-deep tensor chain, built by `mk` (raw or interned).
fn deep(n: usize, mk: &dyn Fn(LinType, LinType) -> LinType) -> LinType {
    let mut t = chr("a");
    for _ in 0..n {
        t = mk(chr("b"), t);
    }
    t
}

/// A width-n `⊕` of distinct small tensors.
fn wide(
    n: usize,
    mk: &dyn Fn(Vec<LinType>) -> LinType,
    mk2: &dyn Fn(LinType, LinType) -> LinType,
) -> LinType {
    mk((0..n)
        .map(|i| {
            let c = ["a", "b", "c"][i % 3];
            mk2(chr(c), mk2(chr("a"), chr(c)))
        })
        .collect())
}

/// A width-k `&` whose every component is the *same* depth-`d` block —
/// the repeated-subterm workload.
fn repeated(
    k: usize,
    d: usize,
    mkw: &dyn Fn(Vec<LinType>) -> LinType,
    mk2: &dyn Fn(LinType, LinType) -> LinType,
) -> LinType {
    mkw((0..k).map(|_| deep(d, mk2)).collect())
}

fn bench_lambda_chain(c: &mut Criterion) {
    let sigma = Alphabet::abc();
    let a = LinType::Char(sigma.symbol("a").unwrap());
    let sig = Signature::new();
    let checker = Checker::new(&sig);

    let mut group = c.benchmark_group("typecheck");
    group.sample_size(20);
    for n in [4usize, 16, 64, 128] {
        let (term, ty) = chain(n, &a);
        group.bench_with_input(BenchmarkId::new("lambda_chain", n), &term, |b, t| {
            b.iter(|| checker.check(&NlCtx::new(), &[], t, &ty).unwrap())
        });
    }
    group.finish();
}

fn bench_type_equality(c: &mut Criterion) {
    let raw2: &dyn Fn(LinType, LinType) -> LinType = &raw::tensor;
    let int2: &dyn Fn(LinType, LinType) -> LinType = &LinType::tensor;

    let mut group = c.benchmark_group("type_eq_deep");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let (r1, r2) = (deep(n, raw2), deep(n, raw2));
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| assert!(lin_type_equal(&r1, &r2)))
        });
        let (i1, i2) = (deep(n, int2), deep(n, int2));
        group.bench_with_input(BenchmarkId::new("interned", n), &n, |b, _| {
            b.iter(|| assert!(lin_type_equal(&i1, &i2)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("type_eq_wide");
    group.sample_size(20);
    for n in [64usize, 256, 1024] {
        let (r1, r2) = (wide(n, &raw::plus, raw2), wide(n, &raw::plus, raw2));
        group.bench_with_input(BenchmarkId::new("baseline", n), &n, |b, _| {
            b.iter(|| assert!(lin_type_equal(&r1, &r2)))
        });
        let mk = |v: Vec<LinType>| LinType::Plus(v).interned();
        let (i1, i2) = (wide(n, &mk, int2), wide(n, &mk, int2));
        group.bench_with_input(BenchmarkId::new("interned", n), &n, |b, _| {
            b.iter(|| assert!(lin_type_equal(&i1, &i2)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("type_eq_repeated");
    group.sample_size(20);
    for k in [16usize, 64, 256] {
        let (r1, r2) = (
            repeated(k, 8, &raw::with, raw2),
            repeated(k, 8, &raw::with, raw2),
        );
        group.bench_with_input(BenchmarkId::new("baseline", k), &k, |b, _| {
            b.iter(|| assert!(lin_type_equal(&r1, &r2)))
        });
        let mk = |v: Vec<LinType>| LinType::With(v).interned();
        let (i1, i2) = (repeated(k, 8, &mk, int2), repeated(k, 8, &mk, int2));
        group.bench_with_input(BenchmarkId::new("interned", k), &k, |b, _| {
            b.iter(|| assert!(lin_type_equal(&i1, &i2)))
        });
    }
    group.finish();
}

fn bench_subst(c: &mut Criterion) {
    // A type whose index expressions mention `n` under every node, so
    // substitution must touch the whole tree.
    fn indexed(depth: usize) -> LinType {
        if depth == 0 {
            return LinType::Data {
                name: "T".to_owned(),
                args: vec![NlTerm::succ(NlTerm::var("n"))],
            };
        }
        LinType::Tensor(
            Arc::new(indexed(depth - 1)),
            Arc::new(LinType::Data {
                name: "T".to_owned(),
                args: vec![NlTerm::var("n")],
            }),
        )
    }

    let mut group = c.benchmark_group("subst_repeated");
    group.sample_size(20);
    for d in [16usize, 64, 256] {
        // Same canonical input for both: `uncached` re-runs the
        // structural recursion every time, `cached` hits the id-keyed
        // memo after the first call (re-interning a canonical type is an
        // O(1) address lookup).
        let ty = indexed(d).interned();
        let four = NlTerm::NatLit(4);
        group.bench_with_input(BenchmarkId::new("uncached", d), &d, |b, _| {
            b.iter(|| subst_lin_type_uncached(&ty, "n", &four))
        });
        group.bench_with_input(BenchmarkId::new("cached", d), &d, |b, _| {
            b.iter(|| subst_lin_type(&ty, "n", &four))
        });
    }
    group.finish();
}

fn bench_check_wide_with(c: &mut Criterion) {
    let sig = Signature::new();
    let checker = Checker::new(&sig);
    let raw2: &dyn Fn(LinType, LinType) -> LinType = &raw::tensor;
    let int2: &dyn Fn(LinType, LinType) -> LinType = &LinType::tensor;

    let mut group = c.benchmark_group("check_wide_with");
    group.sample_size(20);
    for k in [16usize, 64, 256] {
        // x : T ⊢ ⟨x, …, x⟩ ⇐ &ᵏ T: one conversion check per component.
        let term = LinTerm::Tuple(vec![LinTerm::var("x"); k]);

        // Every component type is built *independently* (no provenance
        // sharing through clones): the baseline deep-compares 64 nodes
        // per component, the interned build dedups them all to one
        // canonical allocation.
        let ctx = vec![("x".to_owned(), deep(64, raw2))];
        let expected = raw::with((0..k).map(|_| deep(64, raw2)).collect());
        group.bench_with_input(BenchmarkId::new("baseline", k), &k, |b, _| {
            b.iter(|| {
                checker
                    .check(&NlCtx::new(), &ctx, &term, &expected)
                    .unwrap()
            })
        });

        let ctx = vec![("x".to_owned(), deep(64, int2))];
        let expected = LinType::With((0..k).map(|_| deep(64, int2)).collect()).interned();
        group.bench_with_input(BenchmarkId::new("interned", k), &k, |b, _| {
            b.iter(|| {
                checker
                    .check(&NlCtx::new(), &ctx, &term, &expected)
                    .unwrap()
            })
        });
    }
    group.finish();
}

fn bench(c: &mut Criterion) {
    bench_lambda_chain(c);
    bench_type_equality(c);
    bench_subst(c);
    bench_check_wide_with(c);
}

criterion_group!(benches, bench);
criterion_main!(benches);
