//! §3/Fig 9 — ordered-linear type checker throughput on generated terms:
//! right-nested tensor chains `λ x₁ … λ xₙ. (x₁, (x₂, …))` of growing
//! size, checked against their `⊸` types.
//!
//! Expected shape: near-linear in the term size (splits are located by
//! free-variable sets; each variable is bound and consumed once).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use lambek_core::alphabet::Alphabet;
use lambek_core::check::Checker;
use lambek_core::syntax::nonlinear::NlCtx;
use lambek_core::syntax::terms::LinTerm;
use lambek_core::syntax::types::{LinType, Signature};

/// `λ x₁ … λ xₙ. (x₁, (x₂, (… xₙ)))` with its type.
fn chain(n: usize, a: &LinType) -> (LinTerm, LinType) {
    let vars: Vec<String> = (0..n).map(|i| format!("x{i}")).collect();
    let mut body = LinTerm::var(&vars[n - 1]);
    let mut ty = a.clone();
    for i in (0..n - 1).rev() {
        body = LinTerm::pair(LinTerm::var(&vars[i]), body);
        ty = LinType::tensor(a.clone(), ty);
    }
    let mut term = body;
    let mut full = ty;
    for v in vars.iter().rev() {
        term = LinTerm::Lam {
            var: v.clone(),
            dom: Arc::new(a.clone()),
            body: Arc::new(term),
        };
    }
    for _ in 0..n {
        full = LinType::lfun(a.clone(), full);
    }
    // Note: the ⊸-chain type nests the tensor codomain innermost.
    (term, full)
}

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();
    let a = LinType::Char(sigma.symbol("a").unwrap());
    let sig = Signature::new();
    let checker = Checker::new(&sig);

    let mut group = c.benchmark_group("typecheck");
    group.sample_size(20);
    for n in [4usize, 16, 64, 128] {
        let (term, ty) = chain(n, &a);
        group.bench_with_input(BenchmarkId::new("lambda_chain", n), &term, |b, t| {
            b.iter(|| checker.check(&NlCtx::new(), &[], t, &ty).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
