//! C4.11 — Thompson's construction: time and NFA size versus regex size.
//!
//! Expected shape: both linear in the regex size (the construction adds
//! at most two states and four ε-transitions per node).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use lambek_core::alphabet::Alphabet;
use regex_grammars::gen::random_regex;
use regex_grammars::thompson::thompson;

fn bench(c: &mut Criterion) {
    let sigma = Alphabet::abc();

    println!("thompson NFA size vs regex size:");
    for size in [8usize, 16, 32, 64, 128] {
        let re = random_regex(&sigma, size, 11);
        let th = thompson(&sigma, &re);
        println!(
            "  size={:>4} → {:>4} states, {:>4} ε-transitions (bound 2·size + 2 = {})",
            re.size(),
            th.nfa().num_states(),
            th.nfa().eps_transitions().len(),
            2 * re.size() + 2
        );
    }

    let mut group = c.benchmark_group("c411_thompson");
    group.sample_size(30);
    for size in [8usize, 32, 128, 512] {
        let re = random_regex(&sigma, size, 11);
        group.bench_with_input(BenchmarkId::new("construct", size), &re, |b, re| {
            b.iter(|| thompson(&sigma, re))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
