//! Observability overhead, emitted as machine-readable JSON
//! (`BENCH_obs.json` at the repo root): the same workloads driven
//! through an engine with observability fully enabled (`ObsConfig {
//! tracing: true, .. }` — staged per-stage spans, trace ring, exact
//! request/token counters) and through a default engine with tracing
//! off, so the delta *is* the price of watching.
//!
//! Three serving paths, at 64 KiB and 1 MiB of arith text:
//!
//! * **scan** — certified lexing only (`Engine::lex_str_parallel`,
//!   one chunk): tracing never touches this path, so the delta bounds
//!   the noise floor plus the always-on process-wide probe cost;
//! * **fused** — a one-request `parse_many_str` batch: tracing swaps
//!   the fused lex→certify→LR pass for the staged form that times
//!   each stage (the differentially-proven-equal `parse_str_staged`),
//!   the headline ≤ 3% acceptance row at 1 MiB;
//! * **parse_many** — a pooled batch of ~1 KiB requests over four
//!   workers: per-request traces, queue spans and counter updates all
//!   enabled at once.
//!
//! Timing is hand-rolled (median of five samples, `CERTIFY_SAMPLE_MS`
//! per-sample budget) like the other JSON harnesses; sections run in
//! child processes (`OBS_SECTION`) so each path measures on a fresh
//! heap, and the JSON carries a `cores` field because queue effects
//! depend on it.

use std::time::Instant;

use lambek_engine::{CacheConfig, Engine, ObsConfig, PipelineSpec};
use lambek_lex::demo::arith_text;

/// One timed sample: runs `f` repeatedly until the budget (default
/// 20 ms, `CERTIFY_SAMPLE_MS`) elapses, returns seconds-per-iteration.
fn sample<R>(f: &mut impl FnMut() -> R) -> f64 {
    let budget_ms: u128 = std::env::var("CERTIFY_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    let start = Instant::now();
    let mut iters = 0u64;
    loop {
        std::hint::black_box(f());
        iters += 1;
        if start.elapsed().as_millis() >= budget_ms {
            break;
        }
    }
    start.elapsed().as_secs_f64() / iters as f64
}

/// Times the disabled and enabled variants *interleaved* (eight sample
/// rounds, alternating which variant goes first) and returns each
/// variant's **minimum** sample. Two deliberate choices, both about
/// measuring a few-percent delta on a noisy shared host:
///
/// * interleaving — measuring one variant wholly after the other
///   systematically favors the second (warmed heap, hot pages), which
///   on the tracing-independent scan path showed up as a fictitious
///   double-digit "speedup";
/// * min, not median — scheduler preemption and VM steal time are
///   strictly one-sided (they only ever slow a sample down), so each
///   variant's fastest observed run is its least-contaminated one, and
///   comparing minima compares the code paths rather than the noise.
fn time_pair<A, B>(mut off: impl FnMut() -> A, mut on: impl FnMut() -> B) -> (f64, f64) {
    std::hint::black_box(off()); // warm-up, both variants
    std::hint::black_box(on());
    let (mut off_best, mut on_best) = (f64::INFINITY, f64::INFINITY);
    for round in 0..8 {
        if round % 2 == 0 {
            off_best = off_best.min(sample(&mut off));
            on_best = on_best.min(sample(&mut on));
        } else {
            on_best = on_best.min(sample(&mut on));
            off_best = off_best.min(sample(&mut off));
        }
    }
    (off_best, on_best)
}

fn row(pairs: &[(&str, f64)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.9}"))
        .collect();
    format!("    {{ {} }}", fields.join(", "))
}

/// A default engine (tracing off) and a fully-enabled one, both with
/// the spec pre-compiled so the rows measure serving, not compiling.
fn engine_pair(spec: &PipelineSpec) -> (Engine, Engine) {
    let off = Engine::new();
    let on = Engine::with_obs(
        CacheConfig::default(),
        ObsConfig {
            tracing: true,
            trace_ring: 32,
        },
    );
    off.get_or_compile(spec).expect("arith compiles");
    on.get_or_compile(spec).expect("arith compiles");
    (off, on)
}

fn delta_row(kib: usize, off_s: f64, on_s: f64, name: &str) -> String {
    let overhead = on_s / off_s - 1.0;
    eprintln!(
        "{name} {kib:>5} KiB: off {off_s:.3e}s  on {on_s:.3e}s  \
         overhead {:+.2}%",
        overhead * 100.0
    );
    row(&[
        ("bytes", (kib * 1024) as f64),
        ("off_s", off_s),
        ("on_s", on_s),
        ("overhead", overhead),
    ])
}

fn scan_section() -> Vec<String> {
    let spec = PipelineSpec::arith_lexed();
    let (off, on) = engine_pair(&spec);
    let mut rows = Vec::new();
    for kib in [64usize, 1024] {
        let text = arith_text(kib * 1024);
        let (off_s, on_s) = time_pair(
            || {
                off.lex_str_parallel(&spec, &text, 1)
                    .unwrap()
                    .tokens()
                    .is_some()
            },
            || {
                on.lex_str_parallel(&spec, &text, 1)
                    .unwrap()
                    .tokens()
                    .is_some()
            },
        );
        rows.push(delta_row(kib, off_s, on_s, "scan      "));
    }
    rows
}

fn fused_section() -> Vec<String> {
    let spec = PipelineSpec::arith_lexed();
    let (off, on) = engine_pair(&spec);
    let mut rows = Vec::new();
    for kib in [64usize, 1024] {
        let text = arith_text(kib * 1024);
        let inputs = [text.as_str()];
        let (off_s, on_s) = time_pair(
            || {
                off.parse_many_str(&spec, &inputs, 1).unwrap()[0]
                    .outcome
                    .is_accept()
            },
            || {
                on.parse_many_str(&spec, &inputs, 1).unwrap()[0]
                    .outcome
                    .is_accept()
            },
        );
        rows.push(delta_row(kib, off_s, on_s, "fused     "));
    }
    rows
}

fn parse_many_section() -> Vec<String> {
    let spec = PipelineSpec::arith_lexed();
    let (off, on) = engine_pair(&spec);
    let mut rows = Vec::new();
    for kib in [64usize, 1024] {
        // kib requests of ~1 KiB each, so the batch totals the same
        // bytes as the single-request rows above.
        let docs: Vec<String> = (0..kib).map(|_| arith_text(1024)).collect();
        let inputs: Vec<&str> = docs.iter().map(String::as_str).collect();
        let (off_s, on_s) = time_pair(
            || {
                off.parse_many_str(&spec, &inputs, 4)
                    .unwrap()
                    .iter()
                    .filter(|r| r.outcome.is_accept())
                    .count()
            },
            || {
                on.parse_many_str(&spec, &inputs, 4)
                    .unwrap()
                    .iter()
                    .filter(|r| r.outcome.is_accept())
                    .count()
            },
        );
        rows.push(delta_row(kib, off_s, on_s, "parse_many"));
    }
    rows
}

fn main() {
    match std::env::var("OBS_SECTION").as_deref() {
        Ok("scan") => print!("{}", scan_section().join(",\n")),
        Ok("fused") => print!("{}", fused_section().join(",\n")),
        Ok("parse_many") => print!("{}", parse_many_section().join(",\n")),
        _ => {
            let exe = std::env::current_exe().expect("own executable path");
            let section = |name: &str| {
                let out = std::process::Command::new(&exe)
                    .env("OBS_SECTION", name)
                    .stderr(std::process::Stdio::inherit())
                    .output()
                    .unwrap_or_else(|e| panic!("spawn {name} section: {e}"));
                assert!(out.status.success(), "{name} section failed");
                String::from_utf8(out.stdout).expect("section rows are UTF-8")
            };
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let scan = section("scan");
            let fused = section("fused");
            let parse_many = section("parse_many");
            let json = format!(
                "{{\n  \"cores\": {cores},\n  \"scan\": [\n{scan}\n  ],\n  \
                 \"fused\": [\n{fused}\n  ],\n  \"parse_many\": [\n{parse_many}\n  ]\n}}\n"
            );
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
            std::fs::write(path, json).expect("write BENCH_obs.json");
            println!("wrote {path}");
        }
    }
}
