//! The lexer hot-loop throughput numbers, emitted as machine-readable
//! JSON (`BENCH_lex_hot.json` at the repo root) so CI and the README
//! table can track the byte-sliced / parallel / fused speedups.
//!
//! Three families, each at three input sizes (arith text,
//! 1 KiB / 64 KiB / 1 MiB):
//!
//! * **scan** — the raw maximal-munch driver: the charwise reference
//!   loop, the byte-sliced token materializer, and the allocation-free
//!   spans-only iterator (the true hot-loop floor);
//! * **parallel** — speculative chunked lexing through
//!   `Engine::lex_str_parallel` at 1/2/4/8 chunks (the 1-chunk row is
//!   the sequential baseline on the same code path). The JSON carries
//!   a `cores` field: on a single-core host every chunk count runs on
//!   one worker and the numbers measure seam overhead, not scaling;
//! * **e2e** — certified text→tree: the fused lex→LR `parse_str`
//!   (no token materialization), the materializing
//!   `parse_str_tokens`, and the post-hoc `parse_str_full` pass.
//!
//! Timing is hand-rolled (median of five samples) rather than Criterion
//! so the binary can write one flat JSON file without a report
//! directory. `CERTIFY_SAMPLE_MS` overrides the per-sample budget.
//! Sections run in child processes (`LEX_HOT_SECTION`) so each family
//! measures on a fresh heap, exactly like the certify harness.

use std::time::Instant;

use lambek_engine::{Engine, PipelineSpec};
use lambek_lex::demo::{arith_spec, arith_text};
use lambek_lex::CertifiedLexer;

/// Median seconds-per-iteration over five samples; each sample runs
/// iterations until the budget (default 20 ms) elapses.
fn time<R>(mut f: impl FnMut() -> R) -> f64 {
    let budget_ms: u128 = std::env::var("CERTIFY_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(20);
    std::hint::black_box(f()); // warm-up
    let mut samples = Vec::with_capacity(5);
    for _ in 0..5 {
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            std::hint::black_box(f());
            iters += 1;
            if start.elapsed().as_millis() >= budget_ms {
                break;
            }
        }
        samples.push(start.elapsed().as_secs_f64() / iters as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn row(pairs: &[(&str, f64)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.9}"))
        .collect();
    format!("    {{ {} }}", fields.join(", "))
}

const GIB: f64 = (1u64 << 30) as f64;

fn scan_section() -> Vec<String> {
    let lexer = CertifiedLexer::compile(arith_spec());
    let auto = lexer.automaton().clone();
    let mut rows = Vec::new();
    for kib in [1usize, 64, 1024] {
        let text = arith_text(kib * 1024);
        let bytes = text.len() as f64;
        let charwise = time(|| auto.lex_raw_charwise(&text).unwrap().len());
        let tokens = time(|| auto.lex_raw(&text).unwrap().len());
        let spans = time(|| {
            let mut n = 0usize;
            for item in auto.raw_lexemes(&text) {
                n += item.unwrap().span.len();
            }
            n
        });
        eprintln!(
            "scan {kib:>5} KiB: charwise {charwise:.3e}s  byte-sliced {tokens:.3e}s \
             ({:.2}x)  spans-only {spans:.3e}s ({:.2}x, {:.2} GiB/s)",
            charwise / tokens,
            charwise / spans,
            bytes / spans / GIB
        );
        rows.push(row(&[
            ("bytes", bytes),
            ("charwise_s", charwise),
            ("byte_sliced_s", tokens),
            ("spans_only_s", spans),
            ("byte_sliced_speedup", charwise / tokens),
            ("spans_only_speedup", charwise / spans),
            ("spans_gib_per_s", bytes / spans / GIB),
        ]));
    }
    rows
}

fn parallel_section() -> Vec<String> {
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    engine.get_or_compile(&spec).expect("arith compiles");
    let mut rows = Vec::new();
    for kib in [1usize, 64, 1024] {
        let text = arith_text(kib * 1024);
        let secs: Vec<f64> = [1usize, 2, 4, 8]
            .iter()
            .map(|&chunks| {
                time(|| {
                    engine
                        .lex_str_parallel(&spec, &text, chunks)
                        .unwrap()
                        .tokens()
                        .is_some()
                })
            })
            .collect();
        eprintln!(
            "parallel {kib:>5} KiB: 1-chunk {:.3e}s  2 {:.3e}s ({:.2}x)  \
             4 {:.3e}s ({:.2}x)  8 {:.3e}s ({:.2}x)",
            secs[0],
            secs[1],
            secs[0] / secs[1],
            secs[2],
            secs[0] / secs[2],
            secs[3],
            secs[0] / secs[3],
        );
        rows.push(row(&[
            ("bytes", (kib * 1024) as f64),
            ("chunks1_s", secs[0]),
            ("chunks2_s", secs[1]),
            ("chunks4_s", secs[2]),
            ("chunks8_s", secs[3]),
            ("speedup2", secs[0] / secs[1]),
            ("speedup4", secs[0] / secs[2]),
            ("speedup8", secs[0] / secs[3]),
        ]));
    }
    rows
}

fn e2e_section() -> Vec<String> {
    let pipeline = PipelineSpec::arith_lexed()
        .compile()
        .expect("arith compiles");
    let backend = pipeline.lexed_backend().expect("arith is lexed");
    let mut rows = Vec::new();
    for kib in [1usize, 64, 1024] {
        let text = arith_text(kib * 1024);
        let fused = time(|| pipeline.parse_str(&text).unwrap().is_accept());
        let materialized = time(|| backend.parse_str_tokens(&text).unwrap().is_accept());
        let full = time(|| backend.parse_str_full(&text).unwrap().is_accept());
        eprintln!(
            "e2e  {kib:>5} KiB: fused {fused:.3e}s  materialized {materialized:.3e}s \
             ({:.2}x of fused)  full {full:.3e}s ({:.2}x of fused)",
            materialized / fused,
            full / fused
        );
        rows.push(row(&[
            ("bytes", (kib * 1024) as f64),
            ("fused_s", fused),
            ("materialized_s", materialized),
            ("full_s", full),
            ("fused_speedup_over_materialized", materialized / fused),
            ("fused_speedup_over_full", full / fused),
        ]));
    }
    rows
}

fn main() {
    match std::env::var("LEX_HOT_SECTION").as_deref() {
        Ok("scan") => print!("{}", scan_section().join(",\n")),
        Ok("parallel") => print!("{}", parallel_section().join(",\n")),
        Ok("e2e") => print!("{}", e2e_section().join(",\n")),
        _ => {
            let exe = std::env::current_exe().expect("own executable path");
            let section = |name: &str| {
                let out = std::process::Command::new(&exe)
                    .env("LEX_HOT_SECTION", name)
                    .stderr(std::process::Stdio::inherit())
                    .output()
                    .unwrap_or_else(|e| panic!("spawn {name} section: {e}"));
                assert!(out.status.success(), "{name} section failed");
                String::from_utf8(out.stdout).expect("section rows are UTF-8")
            };
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let scan = section("scan");
            let parallel = section("parallel");
            let e2e = section("e2e");
            let json = format!(
                "{{\n  \"cores\": {cores},\n  \"scan\": [\n{scan}\n  ],\n  \
                 \"parallel\": [\n{parallel}\n  ],\n  \"e2e\": [\n{e2e}\n  ]\n}}\n"
            );
            let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_lex_hot.json");
            std::fs::write(path, json).expect("write BENCH_lex_hot.json");
            println!("wrote {path}");
        }
    }
}
