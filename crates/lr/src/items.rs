//! LR(1) items and the LALR(1) collection of item sets.
//!
//! The construction is Knuth's, phrased over the existing
//! [`Cfg`] representation:
//!
//! * the grammar is *augmented* with a synthetic production `S' → S`
//!   (production index 0), so acceptance is one distinguished reduction;
//! * an [`Item`] is a dotted production with one terminal of lookahead
//!   (the end-of-input marker `$` is the extra terminal index
//!   `alphabet.len()`);
//! * [`closure`] saturates a kernel with predictions, computing
//!   `FIRST(β a)` lookaheads via the public
//!   [`lambek_cfg::analysis`] fixpoints;
//! * [`build_lalr`] builds the collection with LALR-style state merging
//!   *during* construction: successor kernels are keyed by their LR(0)
//!   core, lookaheads are unioned into the existing state, and states
//!   whose lookahead sets grew are re-enqueued until the fixpoint. This
//!   keeps the automaton at LR(0) size while retaining one-symbol
//!   lookahead precision (up to the usual LALR merge of lookaheads).

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

use lambek_cfg::analysis::{first_of_seq, first_sets, seq_nullable};
use lambek_cfg::earley::nullable_set;
use lambek_cfg::grammar::{Cfg, GSym};
use lambek_core::alphabet::Symbol;

/// Index of the synthetic augmented production `S' → S`.
pub(crate) const AUG_PROD: u32 = 0;

/// Side tables flattening a [`Cfg`] for table construction: a dense
/// production numbering (with the augmented production at index 0) and
/// the FIRST/nullable fixpoints.
#[derive(Debug)]
pub(crate) struct GrammarIndex {
    /// `(nt, alt)` of production `p` for `p ≥ 1`.
    prod_nt_alt: Vec<(usize, usize)>,
    /// `prod_base[nt] + alt` is the production index of `(nt, alt)`.
    prod_base: Vec<usize>,
    /// The synthetic RHS `[N(start)]` of production 0.
    aug_rhs: [GSym; 1],
    /// FIRST sets of every nonterminal (terminals only).
    pub first: Vec<BTreeSet<Symbol>>,
    /// Nullability of every nonterminal.
    pub nullable: Vec<bool>,
    /// The end-of-input lookahead: `alphabet.len()`.
    pub eof: u16,
}

impl GrammarIndex {
    pub(crate) fn new(cfg: &Cfg) -> GrammarIndex {
        let mut prod_nt_alt = vec![(usize::MAX, usize::MAX)]; // slot 0 = S' → S
        let mut prod_base = Vec::with_capacity(cfg.num_nonterminals());
        for nt in 0..cfg.num_nonterminals() {
            prod_base.push(prod_nt_alt.len());
            for alt in 0..cfg.alternatives(nt).len() {
                prod_nt_alt.push((nt, alt));
            }
        }
        GrammarIndex {
            prod_nt_alt,
            prod_base,
            aug_rhs: [GSym::N(cfg.start())],
            first: first_sets(cfg),
            nullable: nullable_set(cfg),
            eof: cfg.alphabet().len() as u16,
        }
    }

    /// Total number of productions, the synthetic one included.
    pub(crate) fn num_prods(&self) -> usize {
        self.prod_nt_alt.len()
    }

    /// The `(nt, alt)` behind production `p` (`p ≥ 1`).
    pub(crate) fn nt_alt(&self, p: u32) -> (usize, usize) {
        self.prod_nt_alt[p as usize]
    }

    /// The production index of `(nt, alt)`.
    pub(crate) fn prod_of(&self, nt: usize, alt: usize) -> u32 {
        (self.prod_base[nt] + alt) as u32
    }

    /// The right-hand side of production `p`.
    pub(crate) fn rhs<'g>(&'g self, cfg: &'g Cfg, p: u32) -> &'g [GSym] {
        if p == AUG_PROD {
            &self.aug_rhs
        } else {
            let (nt, alt) = self.nt_alt(p);
            &cfg.alternatives(nt)[alt].rhs
        }
    }
}

/// An LR(1) item: production `prod` with the dot before position `dot`,
/// valid under lookahead terminal `la` (`la == eof` is `$`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub(crate) struct Item {
    pub prod: u32,
    pub dot: u16,
    pub la: u16,
}

/// The LR(0) core of a kernel: dotted productions with lookaheads erased.
/// This is the key LALR merging groups states by.
pub(crate) type Core = Vec<(u32, u16)>;

pub(crate) fn core_of(kernel: &BTreeSet<Item>) -> Core {
    let mut core: Core = kernel.iter().map(|i| (i.prod, i.dot)).collect();
    core.dedup();
    core
}

/// The lookaheads `FIRST(β a)` for a prediction out of `item` (whose dot
/// sits before a nonterminal followed by `β`).
fn prediction_lookaheads(gi: &GrammarIndex, beta: &[GSym], la: u16) -> BTreeSet<u16> {
    let mut out: BTreeSet<u16> = first_of_seq(beta, &BTreeSet::new(), &gi.first, &gi.nullable)
        .into_iter()
        .map(|s| s.index() as u16)
        .collect();
    if seq_nullable(beta, &gi.nullable) {
        out.insert(la);
    }
    out
}

/// Saturates a kernel with the LR(1) prediction rule: for every item
/// `A → α · B β , a`, add `B → · γ , b` for each production of `B` and
/// each `b ∈ FIRST(β a)`.
pub(crate) fn closure(cfg: &Cfg, gi: &GrammarIndex, kernel: &BTreeSet<Item>) -> Vec<Item> {
    let mut seen: BTreeSet<Item> = kernel.clone();
    let mut queue: VecDeque<Item> = kernel.iter().copied().collect();
    while let Some(item) = queue.pop_front() {
        let rhs = gi.rhs(cfg, item.prod);
        let Some(GSym::N(b)) = rhs.get(item.dot as usize) else {
            continue;
        };
        let beta = &rhs[item.dot as usize + 1..];
        for la in prediction_lookaheads(gi, beta, item.la) {
            for alt in 0..cfg.alternatives(*b).len() {
                let predicted = Item {
                    prod: gi.prod_of(*b, alt),
                    dot: 0,
                    la,
                };
                if seen.insert(predicted) {
                    queue.push_back(predicted);
                }
            }
        }
    }
    seen.into_iter().collect()
}

/// The LALR(1) automaton: one kernel per LR(0) core, plus the transition
/// edges on grammar symbols.
#[derive(Debug)]
pub(crate) struct LalrAutomaton {
    /// Closed item sets (state 0 holds the closure of `S' → · S , $`).
    /// Captured from each state's *final* worklist processing — states
    /// are re-enqueued whenever their kernel's lookaheads grow, so at
    /// convergence this is the closure of the final kernel and the table
    /// builder does not re-close anything.
    pub closures: Vec<Vec<Item>>,
    /// `edges[state][sym]` is the successor on grammar symbol `sym`.
    pub edges: Vec<HashMap<GSym, usize>>,
}

/// Builds the LALR(1) collection by merged-core worklist iteration.
pub(crate) fn build_lalr(cfg: &Cfg, gi: &GrammarIndex) -> LalrAutomaton {
    let start_kernel: BTreeSet<Item> = [Item {
        prod: AUG_PROD,
        dot: 0,
        la: gi.eof,
    }]
    .into_iter()
    .collect();

    let mut kernels = vec![start_kernel];
    let mut closures: Vec<Vec<Item>> = vec![Vec::new()];
    let mut edges: Vec<HashMap<GSym, usize>> = vec![HashMap::new()];
    let mut by_core: HashMap<Core, usize> = HashMap::new();
    by_core.insert(core_of(&kernels[0]), 0);

    let mut work: VecDeque<usize> = VecDeque::from([0]);
    let mut queued = vec![true];

    while let Some(idx) = work.pop_front() {
        queued[idx] = false;
        let closed = closure(cfg, gi, &kernels[idx]);
        // Group advanceable items by the symbol after the dot. A
        // BTreeMap, not a HashMap: the iteration order below numbers
        // newly discovered states, and state numbering must be a
        // function of the grammar alone — sessions serialized from one
        // compile re-validate against tables from another.
        let mut successors: BTreeMap<GSym, BTreeSet<Item>> = BTreeMap::new();
        for item in &closed {
            if let Some(sym) = gi.rhs(cfg, item.prod).get(item.dot as usize) {
                successors.entry(*sym).or_default().insert(Item {
                    dot: item.dot + 1,
                    ..*item
                });
            }
        }
        for (sym, kernel) in successors {
            let core = core_of(&kernel);
            let target = match by_core.get(&core) {
                Some(&t) => {
                    // LALR merge: union the lookaheads into the existing
                    // state; if they grew, its successors must see the
                    // new lookaheads too.
                    let before = kernels[t].len();
                    kernels[t].extend(kernel.iter().copied());
                    if kernels[t].len() != before && !queued[t] {
                        queued[t] = true;
                        work.push_back(t);
                    }
                    t
                }
                None => {
                    let t = kernels.len();
                    by_core.insert(core, t);
                    kernels.push(kernel);
                    closures.push(Vec::new());
                    edges.push(HashMap::new());
                    queued.push(true);
                    work.push_back(t);
                    t
                }
            };
            edges[idx].insert(sym, target);
        }
        closures[idx] = closed;
    }
    LalrAutomaton { closures, edges }
}
