//! The certified wrapper: every tree that leaves the LR subsystem is
//! checked against the grammar before it escapes.
//!
//! The LR driver is fast *extrinsically* verified code: nothing about
//! the dense tables guarantees by construction that the trees it builds
//! are parses of the input. [`CertifiedLrParser`] restores the paper's
//! intrinsic-verification contract at the subsystem boundary —
//! **incrementally**: every shift and every reduction is certified as it
//! happens, by comparing interned grammar ids ([`CertTables`] built once
//! at compile time) in O(1) per step. The per-step checks maintain the
//! invariant that each stack tree `check_shape`s against its claimed
//! grammar and yields exactly the input slice it covers, so an accepted
//! tree satisfies the whole-tree
//! [`validate`](lambek_core::grammar::parse_tree::validate) contract
//! without ever being re-walked. A driver bug therefore cannot leak an
//! invalid tree; it surfaces as a [`CertifyError`] *at the offending
//! step*.
//!
//! The pre-incremental path — run the driver blind, then `validate` the
//! whole tree at the end — is retained behind
//! [`CertifiedLrParser::parse_full`] and
//! [`CertifiedLrParser::stream_full`]; the differential property suite
//! asserts the two paths accept and reject identically.

use std::fmt;
use std::sync::Arc;

use lambek_cfg::grammar::Cfg;
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::expr::Grammar;
use lambek_core::grammar::parse_tree::{validate, ParseTree, ValidateError};

use crate::driver::{
    parse_tree, recognize_states, would_accept_after_states, would_accept_states, CertTables,
    ClaimRef, Machine, SabotageLr, Step,
};
use crate::table::{LrConflictReport, LrTable};

/// The outcome of a certified LR parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LrOutcome {
    /// The input is in the grammar; the tree has been certified against
    /// the μ-regular grammar and the input string.
    Accept(ParseTree),
    /// The input is not in the grammar; the report says where the driver
    /// stopped and what it expected.
    Reject(crate::driver::LrReject),
}

impl LrOutcome {
    /// The accepted tree, if any.
    pub fn accepted(&self) -> Option<&ParseTree> {
        match self {
            LrOutcome::Accept(t) => Some(t),
            LrOutcome::Reject(_) => None,
        }
    }

    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, LrOutcome::Accept(_))
    }
}

/// A violation of the certification contract: the driver produced a tree
/// step the checker refused. This never happens for a correctly built
/// table; it is surfaced (rather than panicking) so callers can treat it
/// as an internal error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyError {
    /// The checker's verdict on the offending tree (step).
    pub cause: ValidateError,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LR driver emitted an invalid tree: {}", self.cause)
    }
}

impl std::error::Error for CertifyError {}

/// The shared immutable heart of a compiled LR parser: the grammar (in
/// both representations), its dense tables, and the interned-id tables
/// the incremental certifier compares against. One allocation, shared by
/// the parser and every stream opened from it.
#[derive(Debug)]
struct LrCore {
    cfg: Cfg,
    grammar: Grammar,
    table: LrTable,
    cert: CertTables,
}

/// A linear-time LR(1)/LALR parser whose every output tree is certified
/// against the grammar — incrementally, one interned-id comparison per
/// shift and per reduction.
///
/// Construction rejects grammars with unresolvable conflicts
/// ([`LrConflictReport`] points at the offending item sets); parsing is
/// a table-driven shift-reduce run with the certification checks fused
/// into each step. Cloning is cheap (`Arc`-shared core), and the parser
/// is `Send + Sync`, so one compiled instance can serve many threads.
///
/// # Examples
///
/// ```
/// use lambek_cfg::dyck::{dyck_cfg, Parens};
/// use lambek_lr::CertifiedLrParser;
///
/// let p = Parens::new();
/// let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
/// let w = p.alphabet.parse_str("(())()").unwrap();
/// let tree = parser.parse(&w).unwrap().accepted().cloned().unwrap();
/// assert_eq!(tree.flatten(), w); // intrinsic: the yield IS the input
/// assert!(!parser.recognizes(&p.alphabet.parse_str("())").unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct CertifiedLrParser {
    core: Arc<LrCore>,
}

impl CertifiedLrParser {
    /// Builds the LALR(1) tables for `cfg` and wraps them with the
    /// certification layer (including the interned-id tables the
    /// incremental checks compare against).
    ///
    /// # Errors
    ///
    /// Returns the structured conflict report when the grammar is not
    /// LALR(1) — callers typically fall back to Earley.
    pub fn compile(cfg: &Cfg) -> Result<CertifiedLrParser, LrConflictReport> {
        let table = LrTable::build(cfg)?;
        let cert = CertTables::build(&table, cfg);
        Ok(CertifiedLrParser {
            core: Arc::new(LrCore {
                grammar: cfg.to_lambek(),
                cfg: cfg.clone(),
                table,
                cert,
            }),
        })
    }

    /// The grammar the tables were built from.
    pub fn cfg(&self) -> &Cfg {
        &self.core.cfg
    }

    /// The μ-regular encoding trees are certified against.
    pub fn grammar(&self) -> &Grammar {
        &self.core.grammar
    }

    /// The dense ACTION/GOTO tables (introspection and benchmarks).
    pub fn table(&self) -> &LrTable {
        &self.core.table
    }

    /// Whether `w` is in the grammar — a pure table run, no trees, no
    /// allocation beyond the state stack.
    pub fn recognizes(&self, w: &GString) -> bool {
        recognize_states(&self.core.table, w)
    }

    /// Parses `w`: a linear shift-reduce run with every step certified
    /// as it happens. The accepted tree needs no whole-tree validation —
    /// the per-step checks compose to exactly that contract.
    ///
    /// # Errors
    ///
    /// [`CertifyError`] if the driver produced a step the incremental
    /// checker rejects — impossible for a correctly constructed table,
    /// surfaced instead of trusted.
    pub fn parse(&self, w: &GString) -> Result<LrOutcome, CertifyError> {
        match parse_tree(&self.core.table, &self.core.cfg, Some(&self.core.cert), w) {
            Ok(Ok(tree)) => Ok(LrOutcome::Accept(tree)),
            Ok(Err(reject)) => Ok(LrOutcome::Reject(reject)),
            Err(cause) => Err(CertifyError { cause }),
        }
    }

    /// The `full_validate` path: runs the driver blind and re-validates
    /// the whole tree at the end, exactly as the subsystem worked before
    /// incremental certification. Kept so the differential harness can
    /// assert incremental ≡ full on every input.
    ///
    /// # Errors
    ///
    /// [`CertifyError`] under the same (driver-bug) conditions as
    /// [`CertifiedLrParser::parse`].
    pub fn parse_full(&self, w: &GString) -> Result<LrOutcome, CertifyError> {
        match parse_tree(&self.core.table, &self.core.cfg, None, w) {
            Ok(Ok(tree)) => {
                validate(&tree, &self.core.grammar, w).map_err(|cause| CertifyError { cause })?;
                Ok(LrOutcome::Accept(tree))
            }
            Ok(Err(reject)) => Ok(LrOutcome::Reject(reject)),
            Err(_) => unreachable!("the uncertified driver never faults"),
        }
    }

    /// The uncertified baseline: the same shift-reduce run and tree
    /// construction with *no* certification at all — no per-step claims,
    /// no whole-tree validation. Exists only so the benches can separate
    /// the cost of materializing the derivation tree (inherent to any
    /// tree-producing parse) from the cost of certifying it.
    #[doc(hidden)]
    pub fn parse_unchecked(&self, w: &GString) -> LrOutcome {
        match parse_tree(&self.core.table, &self.core.cfg, None, w) {
            Ok(Ok(tree)) => LrOutcome::Accept(tree),
            Ok(Err(reject)) => LrOutcome::Reject(reject),
            Err(_) => unreachable!("the uncertified driver never faults"),
        }
    }

    /// Opens a push-mode stream over this parser, with incremental
    /// certification: each push is checked as it happens and
    /// [`LrStream::finish`] performs no whole-tree validation.
    pub fn stream(&self) -> LrStream {
        LrStream {
            core: self.core.clone(),
            machine: Machine::new(),
            input: GString::new(),
            dead: None,
            fault: None,
            full_validate: false,
        }
    }

    /// Opens a stream on the `full_validate` path: pushes run the driver
    /// blind and [`LrStream::finish`] re-validates the whole tree, as
    /// before incremental certification. Kept for the differential
    /// harness.
    pub fn stream_full(&self) -> LrStream {
        LrStream {
            full_validate: true,
            ..self.stream()
        }
    }

    /// Opens a fused-path sink over this parser: the incremental-
    /// certification machine and nothing else. Unlike [`LrStream`], a
    /// sink does not retain the pushed input (no per-push `GString`
    /// growth) and supports no snapshot/resume or acceptance probes —
    /// it exists so a lexer can feed shifts straight into the LR stack
    /// with zero bookkeeping beyond the parse itself. Rejections carry
    /// the *index* of the offending pushed symbol; the caller (which
    /// knows each symbol's provenance) maps that back to source spans.
    pub fn sink(&self) -> LrSink {
        self.sink_with_capacity(0)
    }

    /// [`CertifiedLrParser::sink`] with both machine stacks pre-sized
    /// for roughly `n` pushes (a hint, not a bound).
    pub fn sink_with_capacity(&self, n: usize) -> LrSink {
        LrSink {
            core: self.core.clone(),
            machine: Machine::with_capacity(n),
            pushed: 0,
            dead: None,
            fault: None,
        }
    }
}

/// The fused lex→LR feed (see [`CertifiedLrParser::sink`]): every push
/// is a certified shift (plus its pending certified reductions) into
/// the machine, with no input retention and no other state. Once a
/// rejection or fault is recorded, later pushes only advance the index.
#[derive(Debug)]
pub struct LrSink {
    core: Arc<LrCore>,
    machine: Machine,
    /// How many symbols have been pushed (the index space rejections
    /// are reported in).
    pushed: usize,
    /// Set at the first rejected symbol; later pushes are ignored.
    dead: Option<crate::driver::LrReject>,
    /// Set at the first certification fault; later pushes are ignored.
    fault: Option<CertifyError>,
}

impl LrSink {
    /// Consumes one symbol. Returns `false` once the pushed sequence has
    /// stopped being a viable prefix (the sink stays usable; it just
    /// remembers the first rejection for [`LrSink::finish`]).
    #[inline]
    pub fn push(&mut self, sym: Symbol) -> bool {
        if self.dead.is_some() || self.fault.is_some() {
            self.pushed += 1;
            return false;
        }
        match self
            .machine
            .feed(&self.core.table, Some(&self.core.cert), Some(sym))
        {
            Step::Shifted => {
                self.pushed += 1;
                true
            }
            Step::Rejected { state } => {
                self.dead = Some(crate::driver::LrReject {
                    at: self.pushed,
                    state,
                    expected: self.core.table.expected_in(&self.core.cfg, state),
                });
                self.pushed += 1;
                false
            }
            Step::Faulted(cause) => {
                self.fault = Some(CertifyError { cause });
                self.pushed += 1;
                false
            }
            Step::Accepted(_) => unreachable!("accept lives in the EOF column only"),
        }
    }

    /// Number of symbols pushed so far (rejected ones included).
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// `true` while the pushed sequence is still a viable prefix (and no
    /// certification fault has been recorded).
    pub fn is_viable(&self) -> bool {
        self.dead.is_none() && self.fault.is_none()
    }

    /// Ends the input: runs the remaining certified reductions.
    /// Rejections report `at` as a pushed-symbol index (`pushed()` for
    /// "the input ended while more was expected").
    ///
    /// # Errors
    ///
    /// [`CertifyError`] under the same (driver-bug) conditions as
    /// [`CertifiedLrParser::parse`].
    pub fn finish(mut self) -> Result<LrOutcome, CertifyError> {
        if let Some(fault) = self.fault {
            return Err(fault);
        }
        if let Some(reject) = self.dead {
            return Ok(LrOutcome::Reject(reject));
        }
        match self
            .machine
            .feed(&self.core.table, Some(&self.core.cert), None)
        {
            Step::Accepted(tree) => Ok(LrOutcome::Accept(tree)),
            Step::Rejected { state } => Ok(LrOutcome::Reject(crate::driver::LrReject {
                at: self.pushed,
                state,
                expected: self.core.table.expected_in(&self.core.cfg, state),
            })),
            Step::Faulted(cause) => Err(CertifyError { cause }),
            Step::Shifted => unreachable!("the EOF column never shifts"),
        }
    }
}

/// A push-mode incremental LR parse: one shift (plus any pending
/// reductions) per [`LrStream::push`], O(1) amortized over the input via
/// the dense tables.
///
/// The partial parse trees of the viable prefix live on the stream's
/// stack, each already certified against its claimed grammar, so
/// [`LrStream::finish`] completes in time proportional to the
/// *remaining* reductions, not the whole input. Acceptance probes
/// ([`LrStream::would_accept`]) simulate the end-of-input reductions
/// over a scratch copy of the state stack without disturbing the parse.
#[derive(Debug, Clone)]
pub struct LrStream {
    core: Arc<LrCore>,
    machine: Machine,
    input: GString,
    /// Set at the first rejected symbol; later pushes are ignored.
    dead: Option<crate::driver::LrReject>,
    /// Set at the first certification fault; later pushes are ignored.
    fault: Option<CertifyError>,
    /// `true` runs the pre-incremental path: no per-step checks, one
    /// whole-tree `validate` at `finish`.
    full_validate: bool,
}

impl LrStream {
    /// Consumes one symbol. Returns `false` once the accumulated input
    /// has stopped being a viable prefix (the stream stays usable; it
    /// just remembers the rejection for [`LrStream::finish`]).
    pub fn push(&mut self, sym: Symbol) -> bool {
        if self.dead.is_some() || self.fault.is_some() {
            self.input.push(sym);
            return false;
        }
        let cert = (!self.full_validate).then_some(&self.core.cert);
        let step = self.machine.feed(&self.core.table, cert, Some(sym));
        match step {
            Step::Shifted => {
                self.input.push(sym);
                true
            }
            Step::Rejected { state } => {
                self.dead = Some(crate::driver::LrReject {
                    at: self.input.len(),
                    state,
                    expected: self.core.table.expected_in(&self.core.cfg, state),
                });
                self.input.push(sym);
                false
            }
            Step::Faulted(cause) => {
                self.fault = Some(CertifyError { cause });
                self.input.push(sym);
                false
            }
            Step::Accepted(_) => unreachable!("accept lives in the EOF column only"),
        }
    }

    /// Consumes a whole string.
    pub fn push_all(&mut self, w: &GString) {
        for sym in w.iter() {
            self.push(sym);
        }
    }

    /// Number of symbols consumed so far.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// The input consumed so far.
    pub fn input(&self) -> &GString {
        &self.input
    }

    /// Number of partial parse trees currently on the stack (a measure
    /// of how much structure is still open).
    pub fn pending(&self) -> usize {
        self.machine.depth()
    }

    /// `true` while the consumed input is still a viable prefix of some
    /// sentence (and no certification fault has been recorded).
    pub fn is_viable(&self) -> bool {
        self.dead.is_none() && self.fault.is_none()
    }

    /// The first certification fault, if the incremental checker caught
    /// one mid-stream. `None` for honest drivers.
    pub fn fault(&self) -> Option<&CertifyError> {
        self.fault.as_ref()
    }

    /// Whether the input so far would be accepted if the stream ended
    /// here — an end-of-input simulation over a scratch state stack,
    /// without building trees or disturbing the parse.
    pub fn would_accept(&self) -> bool {
        self.is_viable() && would_accept_states(&self.core.table, self.machine.states())
    }

    /// Like [`LrStream::would_accept`], but as if the terminals in
    /// `extra` were pushed first. The probe simulates over a scratch
    /// overlay of the state stack — O(stack depth + pending reductions)
    /// per call, never a clone of the stream or its input.
    pub fn would_accept_after<I>(&self, extra: I) -> bool
    where
        I: IntoIterator<Item = Symbol>,
    {
        self.would_accept_after_counted(extra).0
    }

    /// [`LrStream::would_accept_after`] plus the number of table actions
    /// the probe simulated — exposed so regression tests can pin the
    /// probe's cost to O(stack depth), not O(input).
    #[doc(hidden)]
    pub fn would_accept_after_counted<I>(&self, extra: I) -> (bool, usize)
    where
        I: IntoIterator<Item = Symbol>,
    {
        if !self.is_viable() {
            return (false, 0);
        }
        let extra: Vec<Symbol> = extra.into_iter().collect();
        would_accept_after_states(&self.core.table, self.machine.states(), &extra)
    }

    /// Installs a fault injection on the underlying machine (test-only;
    /// see [`SabotageLr`]). The adversarial suites use this to prove the
    /// incremental checker catches a corrupted step *at that step*.
    #[doc(hidden)]
    pub fn sabotage(&mut self, s: SabotageLr) {
        self.machine.set_sabotage(s);
    }

    /// `(shifts, reduces)` the machine has performed so far — the step
    /// counters [`SabotageLr`] indices refer to (test-only).
    #[doc(hidden)]
    pub fn step_counts(&self) -> (usize, usize) {
        self.machine.step_counts()
    }

    /// Ends the stream: runs the remaining reductions. On the
    /// incremental path the resulting tree is already certified — the
    /// per-step checks compose to the whole-tree contract; on the
    /// `full_validate` path the tree is re-validated here.
    ///
    /// # Errors
    ///
    /// [`CertifyError`] under the same (driver-bug) conditions as
    /// [`CertifiedLrParser::parse`].
    pub fn finish(mut self) -> Result<LrOutcome, CertifyError> {
        if let Some(fault) = self.fault {
            return Err(fault);
        }
        if let Some(reject) = self.dead {
            return Ok(LrOutcome::Reject(reject));
        }
        let cert = (!self.full_validate).then_some(&self.core.cert);
        match self.machine.feed(&self.core.table, cert, None) {
            Step::Accepted(tree) => {
                if self.full_validate {
                    validate(&tree, &self.core.grammar, &self.input)
                        .map_err(|cause| CertifyError { cause })?;
                }
                Ok(LrOutcome::Accept(tree))
            }
            Step::Rejected { state } => Ok(LrOutcome::Reject(crate::driver::LrReject {
                at: self.input.len(),
                state,
                expected: self.core.table.expected_in(&self.core.cfg, state),
            })),
            Step::Faulted(cause) => Err(CertifyError { cause }),
            Step::Shifted => unreachable!("the EOF column never shifts"),
        }
    }
}

/// The extracted, process-independent state of an [`LrStream`] — the
/// state-extraction half of session park/resume (the serving engine's
/// snapshot format serializes exactly this).
///
/// Interned [`lambek_core::intern::GrammarId`]s are process-local, so
/// the claim stack is exported as [`ClaimRef`]s (terminal/nonterminal
/// *numbers*) and mapped back through the resuming parser's id tables.
/// Everything here is data; all trust is re-established by
/// [`CertifiedLrParser::resume_stream`], which re-validates the parts
/// against the table and the grammar before any of them touch a live
/// machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrStreamState {
    /// The LR state stack, bottom marker (state 0) first.
    pub states: Vec<u32>,
    /// The partial-derivation stack, one tree per non-bottom state.
    pub trees: Vec<ParseTree>,
    /// The certification claims, parallel to `trees`.
    pub claims: Vec<ClaimRef>,
    /// Shifts performed so far (equals the consumed-symbol count).
    pub shifts: usize,
    /// Reductions performed so far.
    pub reduces: usize,
    /// Every symbol pushed so far, rejected suffix included.
    pub input: GString,
    /// `Some((at, state))` if the stream is dead: the input position of
    /// the first rejected symbol and the state that had no action for
    /// it. The human-readable expected set is recomputed on resume.
    pub dead: Option<(usize, usize)>,
}

/// A session blob failed re-validation against the parser it was
/// resumed into (see [`CertifiedLrParser::resume_stream`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrResumeError {
    /// What was inconsistent.
    pub reason: String,
}

impl fmt::Display for LrResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LR stream state failed re-validation: {}", self.reason)
    }
}

impl std::error::Error for LrResumeError {}

impl LrStream {
    /// Extracts the stream's state for serialization. Returns `None`
    /// for faulted streams (a certification fault is a driver bug; the
    /// faulted configuration is not a parse state worth parking) and
    /// for `full_validate` streams (they carry no claim stack to
    /// re-establish on resume).
    pub fn export_state(&self) -> Option<LrStreamState> {
        if self.fault.is_some() || self.full_validate {
            return None;
        }
        let claims: Option<Vec<ClaimRef>> = self
            .machine
            .claims()
            .iter()
            .map(|&id| self.core.cert.claim_ref(id))
            .collect();
        Some(LrStreamState {
            states: self.machine.states().to_vec(),
            trees: self.machine.trees().to_vec(),
            claims: claims?,
            shifts: self.machine.step_counts().0,
            reduces: self.machine.step_counts().1,
            input: self.input.clone(),
            dead: self.dead.as_ref().map(|r| (r.at, r.state)),
        })
    }
}

impl CertifiedLrParser {
    /// Re-injects extracted stream state — the other half of session
    /// park/resume. The blob is *untrusted*: before anything touches a
    /// live machine, every part is re-validated against this parser:
    ///
    /// * the state stack must start at the bottom marker and every
    ///   transition must be one this parser's table actually performs
    ///   for the claimed symbol (shift target for a terminal claim,
    ///   goto target for a nonterminal claim) — so the restored
    ///   configuration is reachable, and future behaviour is exactly
    ///   that of an uninterrupted run;
    /// * every partial tree is re-checked against its claimed grammar
    ///   (`check_shape` against the μ-system for nonterminals, a leaf
    ///   comparison for terminals), and the tree yields must tile the
    ///   consumed input prefix exactly — re-establishing the
    ///   incremental certifier's stack invariant, so everything the
    ///   resumed stream ever emits is as certified as if the session
    ///   had never been interrupted.
    ///
    /// # Errors
    ///
    /// [`LrResumeError`] describing the first inconsistency; the error
    /// path constructs no stream (a bogus blob can be *rejected*, never
    /// mis-certified).
    pub fn resume_stream(&self, st: LrStreamState) -> Result<LrStream, LrResumeError> {
        let err = |reason: String| LrResumeError { reason };
        let table = &self.core.table;
        let n_states = table.num_states();
        if st.states.first() != Some(&0) {
            return Err(err("state stack must start at the bottom marker".into()));
        }
        if let Some(&s) = st.states.iter().find(|&&s| s as usize >= n_states) {
            return Err(err(format!("state {s} out of range (< {n_states})")));
        }
        if st.trees.len() != st.claims.len() || st.states.len() != st.trees.len() + 1 {
            return Err(err(format!(
                "stack arity mismatch: {} states, {} trees, {} claims",
                st.states.len(),
                st.trees.len(),
                st.claims.len()
            )));
        }
        // Transition consistency: each stack slot must be the table's
        // own answer for its claim.
        for (i, &claim) in st.claims.iter().enumerate() {
            let from = st.states[i] as usize;
            let to = st.states[i + 1] as usize;
            let ok = match claim {
                ClaimRef::Term(t) => {
                    t < table.eof_column()
                        && matches!(table.action(from, t), crate::table::Action::Shift(s) if s == to)
                }
                ClaimRef::Var(n) => n < table.num_nonterminals() && table.goto(from, n) == Some(to),
            };
            if !ok {
                return Err(err(format!(
                    "stack slot {i}: no {claim:?} transition {from} -> {to} in this table"
                )));
            }
        }
        // Claim-by-claim re-certification: shapes against the μ-system,
        // yields tiling the consumed prefix.
        let system = self.core.cfg.to_lambek_system();
        let mut cursor = 0usize;
        let mut claim_ids = Vec::with_capacity(st.claims.len());
        for (i, (tree, &claim)) in st.trees.iter().zip(&st.claims).enumerate() {
            let id = self
                .core
                .cert
                .claim_id(claim)
                .ok_or_else(|| err(format!("stack slot {i}: claim {claim:?} out of range")))?;
            let flat = tree.flatten();
            let window = st.input.as_slice().get(cursor..cursor + flat.len());
            if window != Some(flat.as_slice()) {
                return Err(err(format!(
                    "stack slot {i}: tree yield does not tile the input at symbol {cursor}"
                )));
            }
            match claim {
                ClaimRef::Term(t) => {
                    if !matches!(tree, ParseTree::Char(c) if c.index() == t) {
                        return Err(err(format!(
                            "stack slot {i}: terminal claim {t} over a non-leaf tree"
                        )));
                    }
                }
                ClaimRef::Var(n) => {
                    if n >= system.len() {
                        return Err(err(format!("stack slot {i}: nonterminal {n} out of range")));
                    }
                    let ParseTree::Roll(inner) = tree else {
                        return Err(err(format!(
                            "stack slot {i}: nonterminal claim over a non-Roll tree"
                        )));
                    };
                    lambek_core::grammar::parse_tree::check_shape(
                        inner,
                        system.def(n),
                        Some(&system),
                    )
                    .map_err(|e| err(format!("stack slot {i}: claim re-validation failed: {e}")))?;
                }
            }
            cursor += flat.len();
            claim_ids.push(id);
        }
        // The consumed prefix must be exactly the tiled symbols; the
        // suffix beyond it exists only for dead streams.
        let consumed = cursor;
        let dead = match st.dead {
            None => {
                if consumed != st.input.len() {
                    return Err(err(format!(
                        "live stream consumed {consumed} of {} symbols",
                        st.input.len()
                    )));
                }
                None
            }
            Some((at, state)) => {
                if at != consumed || at > st.input.len() {
                    return Err(err(format!(
                        "dead stream rejected at {at} but tiled {consumed} symbols"
                    )));
                }
                if state >= n_states {
                    return Err(err(format!("rejecting state {state} out of range")));
                }
                Some(crate::driver::LrReject {
                    at,
                    state,
                    expected: table.expected_in(&self.core.cfg, state),
                })
            }
        };
        if st.shifts != consumed {
            return Err(err(format!(
                "shift counter {} disagrees with {consumed} consumed symbols",
                st.shifts
            )));
        }
        Ok(LrStream {
            core: self.core.clone(),
            machine: Machine::from_parts(st.states, st.trees, claim_ids, st.shifts, st.reduces),
            input: st.input,
            dead,
            fault: None,
            full_validate: false,
        })
    }
}
