//! The certified wrapper: every tree that leaves the LR subsystem is
//! re-validated by the core derivation checker.
//!
//! The LR driver is fast *extrinsically* verified code: nothing about
//! the dense tables guarantees by construction that the trees it builds
//! are parses of the input. [`CertifiedLrParser`] restores the paper's
//! intrinsic-verification contract at the subsystem boundary: each
//! accepted tree is checked against the grammar's μ-regular encoding
//! *and* the actual input string by
//! [`validate`](lambek_core::grammar::parse_tree::validate) before it is
//! returned — exactly the check a `VerifiedParser` performs on its
//! transformer output. A driver bug therefore cannot leak an invalid
//! tree; it surfaces as a [`CertifyError`].

use std::fmt;
use std::sync::Arc;

use lambek_cfg::grammar::Cfg;
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::expr::Grammar;
use lambek_core::grammar::parse_tree::{validate, ParseTree, ValidateError};

use crate::driver::{parse_tree, recognize_states, would_accept_states, Machine, Step};
use crate::table::{LrConflictReport, LrTable};

/// The outcome of a certified LR parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LrOutcome {
    /// The input is in the grammar; the tree has been re-validated
    /// against the μ-regular grammar and the input string.
    Accept(ParseTree),
    /// The input is not in the grammar; the report says where the driver
    /// stopped and what it expected.
    Reject(crate::driver::LrReject),
}

impl LrOutcome {
    /// The accepted tree, if any.
    pub fn accepted(&self) -> Option<&ParseTree> {
        match self {
            LrOutcome::Accept(t) => Some(t),
            LrOutcome::Reject(_) => None,
        }
    }

    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, LrOutcome::Accept(_))
    }
}

/// A violation of the certification contract: the driver produced a tree
/// the core validator refused. This never happens for a correctly built
/// table; it is surfaced (rather than panicking) so callers can treat it
/// as an internal error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CertifyError {
    /// The validator's verdict on the offending tree.
    pub cause: ValidateError,
}

impl fmt::Display for CertifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LR driver emitted an invalid tree: {}", self.cause)
    }
}

impl std::error::Error for CertifyError {}

/// The shared immutable heart of a compiled LR parser: the grammar (in
/// both representations) and its dense tables. One allocation, shared by
/// the parser and every stream opened from it.
#[derive(Debug)]
struct LrCore {
    cfg: Cfg,
    grammar: Grammar,
    table: LrTable,
}

/// A linear-time LR(1)/LALR parser whose every output tree is re-checked
/// by the core derivation validator.
///
/// Construction rejects grammars with unresolvable conflicts
/// ([`LrConflictReport`] points at the offending item sets); parsing is
/// a table-driven shift-reduce run plus one validation pass over the
/// produced tree. Cloning is cheap (`Arc`-shared core), and the parser
/// is `Send + Sync`, so one compiled instance can serve many threads.
///
/// # Examples
///
/// ```
/// use lambek_cfg::dyck::{dyck_cfg, Parens};
/// use lambek_lr::CertifiedLrParser;
///
/// let p = Parens::new();
/// let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
/// let w = p.alphabet.parse_str("(())()").unwrap();
/// let tree = parser.parse(&w).unwrap().accepted().cloned().unwrap();
/// assert_eq!(tree.flatten(), w); // intrinsic: the yield IS the input
/// assert!(!parser.recognizes(&p.alphabet.parse_str("())").unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct CertifiedLrParser {
    core: Arc<LrCore>,
}

impl CertifiedLrParser {
    /// Builds the LALR(1) tables for `cfg` and wraps them with the
    /// certification layer.
    ///
    /// # Errors
    ///
    /// Returns the structured conflict report when the grammar is not
    /// LALR(1) — callers typically fall back to Earley.
    pub fn compile(cfg: &Cfg) -> Result<CertifiedLrParser, LrConflictReport> {
        let table = LrTable::build(cfg)?;
        Ok(CertifiedLrParser {
            core: Arc::new(LrCore {
                grammar: cfg.to_lambek(),
                cfg: cfg.clone(),
                table,
            }),
        })
    }

    /// The grammar the tables were built from.
    pub fn cfg(&self) -> &Cfg {
        &self.core.cfg
    }

    /// The μ-regular encoding trees are validated against.
    pub fn grammar(&self) -> &Grammar {
        &self.core.grammar
    }

    /// The dense ACTION/GOTO tables (introspection and benchmarks).
    pub fn table(&self) -> &LrTable {
        &self.core.table
    }

    /// Whether `w` is in the grammar — a pure table run, no trees, no
    /// allocation beyond the state stack.
    pub fn recognizes(&self, w: &GString) -> bool {
        recognize_states(&self.core.table, w)
    }

    /// Parses `w`: a linear shift-reduce run, then the certification
    /// check on the produced tree.
    ///
    /// # Errors
    ///
    /// [`CertifyError`] if the driver produced a tree the core validator
    /// rejects — impossible for a correctly constructed table, surfaced
    /// instead of trusted.
    pub fn parse(&self, w: &GString) -> Result<LrOutcome, CertifyError> {
        match parse_tree(&self.core.table, &self.core.cfg, w) {
            Ok(tree) => {
                validate(&tree, &self.core.grammar, w).map_err(|cause| CertifyError { cause })?;
                Ok(LrOutcome::Accept(tree))
            }
            Err(reject) => Ok(LrOutcome::Reject(reject)),
        }
    }

    /// Opens a push-mode stream over this parser.
    pub fn stream(&self) -> LrStream {
        LrStream {
            core: self.core.clone(),
            machine: Machine::new(),
            input: GString::new(),
            dead: None,
        }
    }
}

/// A push-mode incremental LR parse: one shift (plus any pending
/// reductions) per [`LrStream::push`], O(1) amortized over the input via
/// the dense tables.
///
/// The partial parse trees of the viable prefix live on the stream's
/// stack, so [`LrStream::finish`] completes in time proportional to the
/// *remaining* reductions, not the whole input. Acceptance probes
/// ([`LrStream::would_accept`]) simulate the end-of-input reductions
/// over a scratch copy of the state stack without disturbing the parse.
#[derive(Debug, Clone)]
pub struct LrStream {
    core: Arc<LrCore>,
    machine: Machine,
    input: GString,
    /// Set at the first rejected symbol; later pushes are ignored.
    dead: Option<crate::driver::LrReject>,
}

impl LrStream {
    /// Consumes one symbol. Returns `false` once the accumulated input
    /// has stopped being a viable prefix (the stream stays usable; it
    /// just remembers the rejection for [`LrStream::finish`]).
    pub fn push(&mut self, sym: Symbol) -> bool {
        if self.dead.is_some() {
            self.input.push(sym);
            return false;
        }
        let step = self
            .machine
            .feed(&self.core.table, &self.core.cfg, Some(sym));
        match step {
            Step::Shifted => {
                self.input.push(sym);
                true
            }
            Step::Rejected { state } => {
                self.dead = Some(crate::driver::LrReject {
                    at: self.input.len(),
                    state,
                    expected: self.core.table.expected_in(&self.core.cfg, state),
                });
                self.input.push(sym);
                false
            }
            Step::Accepted(_) => unreachable!("accept lives in the EOF column only"),
        }
    }

    /// Consumes a whole string.
    pub fn push_all(&mut self, w: &GString) {
        for sym in w.iter() {
            self.push(sym);
        }
    }

    /// Number of symbols consumed so far.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// The input consumed so far.
    pub fn input(&self) -> &GString {
        &self.input
    }

    /// Number of partial parse trees currently on the stack (a measure
    /// of how much structure is still open).
    pub fn pending(&self) -> usize {
        self.machine.depth()
    }

    /// `true` while the consumed input is still a viable prefix of some
    /// sentence.
    pub fn is_viable(&self) -> bool {
        self.dead.is_none()
    }

    /// Whether the input so far would be accepted if the stream ended
    /// here — an end-of-input simulation over a scratch state stack,
    /// without building trees or disturbing the parse.
    pub fn would_accept(&self) -> bool {
        self.dead.is_none() && would_accept_states(&self.core.table, self.machine.states())
    }

    /// Ends the stream: runs the remaining reductions, then certifies
    /// the tree against the grammar and the accumulated input.
    ///
    /// # Errors
    ///
    /// [`CertifyError`] under the same (driver-bug) conditions as
    /// [`CertifiedLrParser::parse`].
    pub fn finish(mut self) -> Result<LrOutcome, CertifyError> {
        if let Some(reject) = self.dead {
            return Ok(LrOutcome::Reject(reject));
        }
        match self.machine.feed(&self.core.table, &self.core.cfg, None) {
            Step::Accepted(tree) => {
                validate(&tree, &self.core.grammar, &self.input)
                    .map_err(|cause| CertifyError { cause })?;
                Ok(LrOutcome::Accept(tree))
            }
            Step::Rejected { state } => Ok(LrOutcome::Reject(crate::driver::LrReject {
                at: self.input.len(),
                state,
                expected: self.core.table.expected_in(&self.core.cfg, state),
            })),
            Step::Shifted => unreachable!("the EOF column never shifts"),
        }
    }
}
