//! The table-driven shift-reduce driver and its push-mode stream form.
//!
//! Both drivers run the same loop: look up
//! `ACTION[state, lookahead]` in the dense table, shift or reduce, and
//! stop on accept or error. [`recognize_states`] keeps only the state
//! stack (the allocation-light path behind `accepts` and
//! [`LrStream::would_accept`]); the parsing drivers additionally keep a
//! tree stack, building each reduction's derivation node via
//! [`Cfg::derivation`] so the final tree is exactly the μ-regular parse
//! tree the rest of the workspace consumes.
//!
//! Every loop carries a *fuel* bound on reductions between shifts. A
//! conflict-free LALR(1) table never needs it — it exists so that a
//! hypothetical table-construction bug degrades into a structured
//! rejection instead of divergence (the property suites run the driver
//! over randomly generated grammars).

use std::fmt;

use lambek_cfg::grammar::Cfg;
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::parse_tree::ParseTree;

use crate::table::{Action, LrTable};

/// Why the driver rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrReject {
    /// Input position of the offending symbol (`input.len()` means the
    /// input ended while more was expected).
    pub at: usize,
    /// The automaton state that had no action.
    pub state: usize,
    /// The terminals the state *would* have accepted (`$` = end of
    /// input).
    pub expected: Vec<String>,
}

impl fmt::Display for LrReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejected at position {} (state {}): expected one of [{}]",
            self.at,
            self.state,
            self.expected.join(", ")
        )
    }
}

/// Like `CertifyError` and `LrConflictReport`, rejections box uniformly
/// into `dyn Error` for engine callers.
impl std::error::Error for LrReject {}

/// Fuel for reductions between two shifts: generous enough for any legal
/// unwinding (which is bounded by the stack depth times the state count)
/// while still finite.
fn reduce_fuel(table: &LrTable, stack_depth: usize) -> usize {
    (stack_depth + 2) * (table.num_states() + 1) * (table.num_productions() + 1)
}

fn reject(table: &LrTable, cfg: &Cfg, at: usize, state: usize) -> LrReject {
    LrReject {
        at,
        state,
        expected: table.expected_in(cfg, state),
    }
}

/// The ACTION column of an input symbol, or `None` when the symbol is
/// not from this grammar's alphabet. Foreign symbols must be rejected up
/// front: an unchecked index would alias the `$` column (or a
/// neighboring state's row) and silently mis-accept — the same contract
/// `Dfa::delta` documents, enforced here with a real check because the
/// LR drivers are exposed through the engine's streaming API.
#[inline]
fn term_column(table: &LrTable, sym: Symbol) -> Option<usize> {
    let idx = sym.index();
    (idx < table.eof_column()).then_some(idx)
}

/// Runs the recognition-only driver: state stack, no trees, and no
/// rejection report either — callers that need positions and expected
/// sets use [`parse_tree`]; this path answers yes/no with the state
/// stack as its only allocation.
pub(crate) fn recognize_states(table: &LrTable, w: &GString) -> bool {
    // One stack allocation for the whole run; the stack never exceeds
    // the input length + 2 (each shift or ε-reduce pushes one state).
    // The current state lives in a register (`top`); `states` holds the
    // states *below* it, so the hot loop never re-reads the stack top.
    let mut states: Vec<u32> = Vec::with_capacity(w.len() + 2);
    let mut top: u32 = 0;
    // One fuel budget for the whole run (see `reduce_fuel`): the total
    // number of reductions of an accepting run is bounded by the tree
    // size, itself bounded by stack depth × productions per position.
    let mut fuel = reduce_fuel(table, w.len() + 2);
    for pos in 0..=w.len() {
        let term = if pos < w.len() {
            match term_column(table, w[pos]) {
                Some(t) => t,
                None => return false,
            }
        } else {
            table.eof_column()
        };
        loop {
            match table.decode_action(table.raw_action(top as usize, term)) {
                Action::Shift(t) => {
                    states.push(top);
                    top = t as u32;
                    break;
                }
                Action::Reduce(p) => {
                    let prod = table.production(p);
                    if prod.rhs_len > 0 {
                        // `states` holds the stack below `top`, so depth
                        // is `states.len() + 1`; an inconsistent table
                        // popping the bottom marker degrades to a
                        // rejection (same defense as the tree driver).
                        if prod.rhs_len > states.len() {
                            return false;
                        }
                        states.truncate(states.len() + 1 - prod.rhs_len);
                        top = states.pop().expect("reduction never empties the stack");
                    }
                    let Some(g) = table.goto(top as usize, prod.nt) else {
                        return false;
                    };
                    states.push(top);
                    top = g as u32;
                    if fuel == 0 {
                        return false;
                    }
                    fuel -= 1;
                }
                Action::Accept => return true,
                Action::Error => return false,
            }
        }
    }
    unreachable!("the EOF column only ever accepts or errors")
}

/// One shift-reduce engine over a dense table, carrying both the state
/// stack and the tree stack. The one-shot parser and the push-mode
/// stream share it.
#[derive(Debug, Clone)]
pub(crate) struct Machine {
    states: Vec<u32>,
    trees: Vec<ParseTree>,
}

/// What one [`Machine::feed`] call ended with.
pub(crate) enum Step {
    /// The terminal was shifted (never happens for the EOF column).
    Shifted,
    /// The accept action fired (EOF column only); here is the tree.
    Accepted(ParseTree),
    /// No action: the state had nothing for this terminal.
    Rejected { state: usize },
}

impl Machine {
    pub(crate) fn new() -> Machine {
        Machine::with_capacity(0)
    }

    /// A machine with both stacks pre-sized for an input of `n` symbols.
    pub(crate) fn with_capacity(n: usize) -> Machine {
        let mut states = Vec::with_capacity(n + 2);
        states.push(0);
        Machine {
            states,
            trees: Vec::with_capacity(n + 1),
        }
    }

    /// Current parse-stack depth (states minus the bottom marker) — the
    /// number of partial trees held.
    pub(crate) fn depth(&self) -> usize {
        self.trees.len()
    }

    /// The state stack, for acceptance probes.
    pub(crate) fn states(&self) -> &[u32] {
        &self.states
    }

    /// The current (top-of-stack) state.
    pub(crate) fn current_state(&self) -> usize {
        *self.states.last().expect("state stack is never empty") as usize
    }

    /// Feeds one input symbol (`None` = end of input): reduces until the
    /// table shifts, accepts or errors. Symbols outside the grammar's
    /// alphabet are rejected up front (see [`term_column`]).
    pub(crate) fn feed(&mut self, table: &LrTable, cfg: &Cfg, sym: Option<Symbol>) -> Step {
        let term = match sym {
            Some(s) => match term_column(table, s) {
                Some(t) => t,
                None => {
                    return Step::Rejected {
                        state: self.current_state(),
                    }
                }
            },
            None => table.eof_column(),
        };
        let mut fuel = reduce_fuel(table, self.states.len());
        loop {
            let s = *self.states.last().expect("state stack is never empty") as usize;
            match table.action(s, term) {
                Action::Shift(t) => {
                    self.trees
                        .push(ParseTree::Char(sym.expect("EOF is never shifted")));
                    self.states.push(t as u32);
                    return Step::Shifted;
                }
                Action::Reduce(p) => {
                    let prod = table.production(p);
                    if prod.rhs_len > self.trees.len() {
                        // An inconsistent table popping past the bottom
                        // marker: degrade to a rejection, not a panic
                        // (same defense as `would_accept_states`).
                        return Step::Rejected { state: s };
                    }
                    let children = self.trees.split_off(self.trees.len() - prod.rhs_len);
                    self.states.truncate(self.states.len() - prod.rhs_len);
                    let top = *self
                        .states
                        .last()
                        .expect("reduction popped the start state")
                        as usize;
                    let Some(g) = table.goto(top, prod.nt) else {
                        return Step::Rejected { state: top };
                    };
                    self.trees.push(cfg.derivation(prod.nt, prod.alt, children));
                    self.states.push(g as u32);
                    if fuel == 0 {
                        return Step::Rejected { state: g };
                    }
                    fuel -= 1;
                }
                Action::Accept => {
                    return Step::Accepted(
                        self.trees
                            .pop()
                            .expect("accept with the start tree on the stack"),
                    )
                }
                Action::Error => return Step::Rejected { state: s },
            }
        }
    }
}

/// Parses `w` end to end, returning the derivation tree (in
/// [`Cfg::to_lambek`] shape) or a structured rejection.
pub(crate) fn parse_tree(table: &LrTable, cfg: &Cfg, w: &GString) -> Result<ParseTree, LrReject> {
    let mut m = Machine::with_capacity(w.len());
    for pos in 0..=w.len() {
        let sym = (pos < w.len()).then(|| w[pos]);
        match m.feed(table, cfg, sym) {
            Step::Shifted => {}
            Step::Accepted(tree) => return Ok(tree),
            Step::Rejected { state } => return Err(reject(table, cfg, pos, state)),
        }
    }
    unreachable!("the EOF column only ever accepts or errors")
}

/// Probes whether ending the input at the current configuration would
/// accept: simulates the EOF reductions over a scratch copy of the state
/// stack (no trees are built, nothing is mutated).
pub(crate) fn would_accept_states(table: &LrTable, states: &[u32]) -> bool {
    // Virtual stack over the borrowed slice: `base_len` live entries of
    // `states`, then the `overlay` of states pushed by the simulated
    // reductions. The probe-per-symbol streaming pattern would otherwise
    // clone the whole stack on every probe — O(n²) over a stream.
    let mut base_len = states.len();
    let mut overlay: Vec<u32> = Vec::new();
    let top = |base_len: usize, overlay: &[u32]| -> usize {
        *overlay.last().unwrap_or(&states[base_len - 1]) as usize
    };
    let term = table.eof_column();
    let mut fuel = reduce_fuel(table, states.len());
    loop {
        match table.action(top(base_len, &overlay), term) {
            Action::Accept => return true,
            Action::Reduce(p) => {
                let prod = table.production(p);
                let from_overlay = prod.rhs_len.min(overlay.len());
                overlay.truncate(overlay.len() - from_overlay);
                match base_len.checked_sub(prod.rhs_len - from_overlay) {
                    // Popping the bottom marker (or past it) is
                    // impossible for a consistent table; answered
                    // defensively.
                    None | Some(0) => return false,
                    Some(nb) => base_len = nb,
                }
                let Some(g) = table.goto(top(base_len, &overlay), prod.nt) else {
                    return false;
                };
                overlay.push(g as u32);
                if fuel == 0 {
                    return false;
                }
                fuel -= 1;
            }
            Action::Shift(_) | Action::Error => return false,
        }
    }
}
