//! The table-driven shift-reduce driver and its push-mode stream form.
//!
//! Both drivers run the same loop: look up
//! `ACTION[state, lookahead]` in the dense table, shift or reduce, and
//! stop on accept or error. [`recognize_states`] keeps only the state
//! stack (the allocation-light path behind `accepts` and
//! [`LrStream::would_accept`]); the parsing drivers additionally keep a
//! tree stack, building each reduction's derivation node via
//! [`Cfg::derivation`] so the final tree is exactly the μ-regular parse
//! tree the rest of the workspace consumes.
//!
//! Every loop carries a *fuel* bound on reductions between shifts. A
//! conflict-free LALR(1) table never needs it — it exists so that a
//! hypothetical table-construction bug degrades into a structured
//! rejection instead of divergence (the property suites run the driver
//! over randomly generated grammars).

use std::fmt;

use lambek_cfg::grammar::{Cfg, GSym};
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::expr::{chr, var};
use lambek_core::grammar::parse_tree::{ParseTree, ValidateError};
use lambek_core::intern::{self, GrammarId};

use crate::table::{Action, LrTable};

/// Precomputed interned-id tables for incremental certification: one
/// grammar id per terminal (`'c'`), one per nonterminal (`var n`), and
/// the expected child-id sequence of every table production. All built
/// once at compile time through the interner, so the per-step checks are
/// integer comparisons — no interner lock, no grammar traversal.
#[derive(Debug)]
pub(crate) struct CertTables {
    /// `grammar_id(chr(c))` per alphabet symbol.
    chr_ids: Vec<GrammarId>,
    /// `grammar_id(var(n))` per nonterminal.
    var_ids: Vec<GrammarId>,
    /// Per table production `p`, the ids its RHS symbols must claim
    /// (index 0, the synthetic `S' → S`, is unused).
    rhs_ids: Vec<Vec<GrammarId>>,
    /// The claim of a completed start symbol.
    start_id: GrammarId,
}

impl CertTables {
    pub(crate) fn build(table: &LrTable, cfg: &Cfg) -> CertTables {
        let chr_ids: Vec<GrammarId> = cfg
            .alphabet()
            .symbols()
            .map(|s| intern::grammar_id(&chr(s)))
            .collect();
        let var_ids: Vec<GrammarId> = (0..cfg.num_nonterminals())
            .map(|n| intern::grammar_id(&var(n)))
            .collect();
        let mut rhs_ids = vec![Vec::new()];
        for p in 1..table.num_productions() {
            let pr = table.production(p);
            let rhs = &cfg.alternatives(pr.nt)[pr.alt].rhs;
            rhs_ids.push(
                rhs.iter()
                    .map(|g| match g {
                        GSym::T(c) => chr_ids[c.index()],
                        GSym::N(n) => var_ids[*n],
                    })
                    .collect(),
            );
        }
        let start_id = var_ids[cfg.start()];
        CertTables {
            chr_ids,
            var_ids,
            rhs_ids,
            start_id,
        }
    }

    /// The interned id a [`ClaimRef`] denotes, `None` if the index is
    /// out of range for this grammar.
    pub(crate) fn claim_id(&self, claim: ClaimRef) -> Option<GrammarId> {
        match claim {
            ClaimRef::Term(i) => self.chr_ids.get(i).copied(),
            ClaimRef::Var(n) => self.var_ids.get(n).copied(),
        }
    }

    /// The stable [`ClaimRef`] of an interned claim id (a linear scan:
    /// this runs once per stack entry at snapshot time, over alphabets
    /// and nonterminal sets that are small by construction).
    pub(crate) fn claim_ref(&self, id: GrammarId) -> Option<ClaimRef> {
        if let Some(i) = self.chr_ids.iter().position(|&c| c == id) {
            return Some(ClaimRef::Term(i));
        }
        self.var_ids
            .iter()
            .position(|&v| v == id)
            .map(ClaimRef::Var)
    }
}

/// A process-independent reference to a claim on the LR machine's
/// certification stack: interned [`GrammarId`]s are stable only within
/// one process, so session snapshots record each claim as *terminal
/// number `i`* or *nonterminal number `n`* and map it back through the
/// resuming parser's certification tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClaimRef {
    /// The claim `chr(c)` for the alphabet's `i`th symbol.
    Term(usize),
    /// The claim `var(n)` for the grammar's `n`th nonterminal.
    Var(usize),
}

/// Renders a claim sequence for fault reports.
fn render_claims(ids: &[GrammarId]) -> String {
    let parts: Vec<String> = ids
        .iter()
        .map(|id| intern::grammar(*id).to_string())
        .collect();
    if parts.is_empty() {
        "ε".to_owned()
    } else {
        parts.join(" ⊗ ")
    }
}

/// Test-only fault injection for the LR machine: corrupts exactly one
/// step of the run so the adversarial suites can prove the incremental
/// certifier notices *at that step*. Hidden from docs; never constructed
/// by production code.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SabotageLr {
    /// At the `shift`th shift (0-based), push a leaf carrying `sym`
    /// instead of the input symbol.
    ShiftLeaf {
        /// Which shift to corrupt.
        shift: usize,
        /// The bogus leaf symbol.
        sym: Symbol,
    },
    /// At the `reduce`th reduction, behave as if the table had said
    /// `production` (pop its RHS length, build its derivation).
    ReduceAs {
        /// Which reduction to corrupt.
        reduce: usize,
        /// The table production to substitute.
        production: usize,
    },
    /// At the `reduce`th reduction, corrupt the emitted tree's injection
    /// tag to `tag` after building it.
    ReduceTag {
        /// Which reduction to corrupt.
        reduce: usize,
        /// The bogus alternative index.
        tag: usize,
    },
}

/// Why the driver rejected an input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrReject {
    /// Input position of the offending symbol (`input.len()` means the
    /// input ended while more was expected).
    pub at: usize,
    /// The automaton state that had no action.
    pub state: usize,
    /// The terminals the state *would* have accepted (`$` = end of
    /// input).
    pub expected: Vec<String>,
}

impl fmt::Display for LrReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rejected at position {} (state {}): expected one of [{}]",
            self.at,
            self.state,
            self.expected.join(", ")
        )
    }
}

/// Like `CertifyError` and `LrConflictReport`, rejections box uniformly
/// into `dyn Error` for engine callers.
impl std::error::Error for LrReject {}

/// Fuel for reductions between two shifts: generous enough for any legal
/// unwinding (which is bounded by the stack depth times the state count)
/// while still finite.
fn reduce_fuel(table: &LrTable, stack_depth: usize) -> usize {
    (stack_depth + 2) * (table.num_states() + 1) * (table.num_productions() + 1)
}

fn reject(table: &LrTable, cfg: &Cfg, at: usize, state: usize) -> LrReject {
    LrReject {
        at,
        state,
        expected: table.expected_in(cfg, state),
    }
}

/// The ACTION column of an input symbol, or `None` when the symbol is
/// not from this grammar's alphabet. Foreign symbols must be rejected up
/// front: an unchecked index would alias the `$` column (or a
/// neighboring state's row) and silently mis-accept — the same contract
/// `Dfa::delta` documents, enforced here with a real check because the
/// LR drivers are exposed through the engine's streaming API.
#[inline]
fn term_column(table: &LrTable, sym: Symbol) -> Option<usize> {
    let idx = sym.index();
    (idx < table.eof_column()).then_some(idx)
}

/// Runs the recognition-only driver: state stack, no trees, and no
/// rejection report either — callers that need positions and expected
/// sets use [`parse_tree`]; this path answers yes/no with the state
/// stack as its only allocation.
pub(crate) fn recognize_states(table: &LrTable, w: &GString) -> bool {
    // One stack allocation for the whole run; the stack never exceeds
    // the input length + 2 (each shift or ε-reduce pushes one state).
    // The current state lives in a register (`top`); `states` holds the
    // states *below* it, so the hot loop never re-reads the stack top.
    let mut states: Vec<u32> = Vec::with_capacity(w.len() + 2);
    let mut top: u32 = 0;
    // One fuel budget for the whole run (see `reduce_fuel`): the total
    // number of reductions of an accepting run is bounded by the tree
    // size, itself bounded by stack depth × productions per position.
    let mut fuel = reduce_fuel(table, w.len() + 2);
    for pos in 0..=w.len() {
        let term = if pos < w.len() {
            match term_column(table, w[pos]) {
                Some(t) => t,
                None => return false,
            }
        } else {
            table.eof_column()
        };
        loop {
            match table.decode_action(table.raw_action(top as usize, term)) {
                Action::Shift(t) => {
                    states.push(top);
                    top = t as u32;
                    break;
                }
                Action::Reduce(p) => {
                    let prod = table.production(p);
                    if prod.rhs_len > 0 {
                        // `states` holds the stack below `top`, so depth
                        // is `states.len() + 1`; an inconsistent table
                        // popping the bottom marker degrades to a
                        // rejection (same defense as the tree driver).
                        if prod.rhs_len > states.len() {
                            return false;
                        }
                        states.truncate(states.len() + 1 - prod.rhs_len);
                        top = states.pop().expect("reduction never empties the stack");
                    }
                    let Some(g) = table.goto(top as usize, prod.nt) else {
                        return false;
                    };
                    states.push(top);
                    top = g as u32;
                    if fuel == 0 {
                        return false;
                    }
                    fuel -= 1;
                }
                Action::Accept => return true,
                Action::Error => return false,
            }
        }
    }
    unreachable!("the EOF column only ever accepts or errors")
}

/// One shift-reduce engine over a dense table, carrying both the state
/// stack and the tree stack. The one-shot parser and the push-mode
/// stream share it.
#[derive(Debug, Clone)]
pub(crate) struct Machine {
    states: Vec<u32>,
    trees: Vec<ParseTree>,
    /// One interned grammar id per tree on the stack: the grammar that
    /// tree is claimed (and, inductively, checked) to parse. Maintained
    /// only when `feed` runs with certification tables.
    claims: Vec<GrammarId>,
    sabotage: Option<SabotageLr>,
    shifts_done: usize,
    reduces_done: usize,
    /// Certification checks discharged so far (see
    /// [`crate::probes::LrProbes::claims_checked`]).
    claims_checked: u64,
    /// `(shifts, reduces, claims)` already published to the process
    /// probes — the flush marker, advanced on every terminal step.
    flushed: (usize, usize, u64),
}

/// What one [`Machine::feed`] call ended with.
pub(crate) enum Step {
    /// The terminal was shifted (never happens for the EOF column).
    Shifted,
    /// The accept action fired (EOF column only); here is the tree.
    Accepted(ParseTree),
    /// No action: the state had nothing for this terminal.
    Rejected { state: usize },
    /// The incremental certifier caught the driver emitting a tree step
    /// that does not match the grammar — the certification analogue of
    /// a failed whole-tree `validate`.
    Faulted(ValidateError),
}

impl Machine {
    pub(crate) fn new() -> Machine {
        Machine::with_capacity(0)
    }

    /// A machine with both stacks pre-sized for an input of `n` symbols.
    pub(crate) fn with_capacity(n: usize) -> Machine {
        let mut states = Vec::with_capacity(n + 2);
        states.push(0);
        Machine {
            states,
            trees: Vec::with_capacity(n + 1),
            claims: Vec::new(),
            sabotage: None,
            shifts_done: 0,
            reduces_done: 0,
            claims_checked: 0,
            flushed: (0, 0, 0),
        }
    }

    /// Installs a fault injection (test-only; see [`SabotageLr`]).
    pub(crate) fn set_sabotage(&mut self, s: SabotageLr) {
        self.sabotage = Some(s);
    }

    /// `(shifts, reduces)` performed so far — the step counters the
    /// sabotage indices refer to.
    pub(crate) fn step_counts(&self) -> (usize, usize) {
        (self.shifts_done, self.reduces_done)
    }

    /// Current parse-stack depth (states minus the bottom marker) — the
    /// number of partial trees held.
    pub(crate) fn depth(&self) -> usize {
        self.trees.len()
    }

    /// The state stack, for acceptance probes.
    pub(crate) fn states(&self) -> &[u32] {
        &self.states
    }

    /// The current (top-of-stack) state.
    pub(crate) fn current_state(&self) -> usize {
        *self.states.last().expect("state stack is never empty") as usize
    }

    /// The partial-derivation stack (one tree per shifted-or-reduced
    /// stack slot), for state extraction.
    pub(crate) fn trees(&self) -> &[ParseTree] {
        &self.trees
    }

    /// The claim stack parallel to [`Machine::trees`] (empty when the
    /// machine runs without certification tables).
    pub(crate) fn claims(&self) -> &[GrammarId] {
        &self.claims
    }

    /// Reassembles a machine from extracted state — the re-injection
    /// half of session resume. The caller (see
    /// [`crate::CertifiedLrParser::resume_stream`]) is responsible for
    /// having *validated* the parts against the table and grammar; this
    /// constructor only glues them back together.
    pub(crate) fn from_parts(
        states: Vec<u32>,
        trees: Vec<ParseTree>,
        claims: Vec<GrammarId>,
        shifts_done: usize,
        reduces_done: usize,
    ) -> Machine {
        Machine {
            states,
            trees,
            claims,
            sabotage: None,
            shifts_done,
            reduces_done,
            // Resumed steps were (or will be) published by the process
            // that ran them; this machine publishes only its own.
            claims_checked: 0,
            flushed: (shifts_done, reduces_done, 0),
        }
    }

    /// Publishes the step-count deltas since the last flush to the
    /// process-wide probes — called on terminal steps only, so the
    /// shift/reduce loop stays free of shared-memory traffic.
    fn flush_probes(&mut self) {
        use std::sync::atomic::Ordering;
        let (fs, fr, fc) = self.flushed;
        if self.shifts_done > fs {
            crate::probes::SHIFTS.fetch_add((self.shifts_done - fs) as u64, Ordering::Relaxed);
        }
        if self.reduces_done > fr {
            crate::probes::REDUCES.fetch_add((self.reduces_done - fr) as u64, Ordering::Relaxed);
        }
        if self.claims_checked > fc {
            crate::probes::CLAIMS_CHECKED.fetch_add(self.claims_checked - fc, Ordering::Relaxed);
        }
        self.flushed = (self.shifts_done, self.reduces_done, self.claims_checked);
    }

    /// Feeds one input symbol (`None` = end of input): reduces until the
    /// table shifts, accepts or errors. Symbols outside the grammar's
    /// alphabet are rejected up front (see [`term_column`]).
    ///
    /// With `cert` tables, every step is certified as it happens: a
    /// shifted leaf must be the input symbol, a reduction's popped
    /// children must claim exactly the production's RHS ids, the emitted
    /// node must carry the production's injection tag, and the accepted
    /// stack must be a lone start-symbol claim. Each check is O(1) in
    /// interned-id comparisons, and together they maintain the invariant
    /// that every stack tree `check_shape`s against its claim and yields
    /// the input slice it covers — so an `Accepted` tree needs no
    /// whole-tree `validate`.
    pub(crate) fn feed(
        &mut self,
        table: &LrTable,
        cert: Option<&CertTables>,
        sym: Option<Symbol>,
    ) -> Step {
        let step = self.feed_inner(table, cert, sym);
        if !matches!(step, Step::Shifted) {
            self.flush_probes();
        }
        step
    }

    fn feed_inner(
        &mut self,
        table: &LrTable,
        cert: Option<&CertTables>,
        sym: Option<Symbol>,
    ) -> Step {
        let term = match sym {
            Some(s) => match term_column(table, s) {
                Some(t) => t,
                None => {
                    return Step::Rejected {
                        state: self.current_state(),
                    }
                }
            },
            None => table.eof_column(),
        };
        let mut fuel = reduce_fuel(table, self.states.len());
        loop {
            let s = *self.states.last().expect("state stack is never empty") as usize;
            match table.action(s, term) {
                Action::Shift(t) => {
                    let sym = sym.expect("EOF is never shifted");
                    let mut leaf = ParseTree::Char(sym);
                    if let Some(SabotageLr::ShiftLeaf { shift, sym: bogus }) = self.sabotage {
                        if shift == self.shifts_done {
                            leaf = ParseTree::Char(bogus);
                        }
                    }
                    self.shifts_done += 1;
                    if let Some(ct) = cert {
                        self.claims_checked += 1;
                        if !matches!(leaf, ParseTree::Char(c) if c == sym) {
                            return Step::Faulted(ValidateError::ShapeMismatch {
                                expected: intern::grammar(ct.chr_ids[sym.index()]).to_string(),
                                found: leaf.to_string(),
                            });
                        }
                        self.claims.push(ct.chr_ids[sym.index()]);
                    }
                    self.trees.push(leaf);
                    self.states.push(t as u32);
                    return Step::Shifted;
                }
                Action::Reduce(p) => {
                    let (p, prod) = match self.sabotage {
                        Some(SabotageLr::ReduceAs { reduce, production })
                            if reduce == self.reduces_done =>
                        {
                            (production, table.production(production))
                        }
                        _ => (p, table.production(p)),
                    };
                    if prod.rhs_len > self.trees.len() {
                        // An inconsistent table popping past the bottom
                        // marker: degrade to a rejection, not a panic
                        // (same defense as `would_accept_states`).
                        return Step::Rejected { state: s };
                    }
                    // Build the derivation node in place (right-nested
                    // tensor, `Unit` for an empty RHS — exactly
                    // `Cfg::derivation`, minus its temporary children
                    // vector: reductions are the hot loop).
                    let body = if prod.rhs_len == 0 {
                        ParseTree::Unit
                    } else {
                        let mut acc = self.trees.pop().expect("rhs_len checked");
                        for _ in 1..prod.rhs_len {
                            let t = self.trees.pop().expect("rhs_len checked");
                            acc = ParseTree::pair(t, acc);
                        }
                        acc
                    };
                    self.states.truncate(self.states.len() - prod.rhs_len);
                    let top = *self
                        .states
                        .last()
                        .expect("reduction popped the start state")
                        as usize;
                    let Some(g) = table.goto(top, prod.nt) else {
                        return Step::Rejected { state: top };
                    };
                    let mut node = ParseTree::roll(ParseTree::inj(prod.alt, body));
                    if let Some(SabotageLr::ReduceTag { reduce, tag }) = self.sabotage {
                        if reduce == self.reduces_done {
                            if let ParseTree::Roll(inner) = &mut node {
                                if let ParseTree::Inj { index, .. } = &mut **inner {
                                    *index = tag;
                                }
                            }
                        }
                    }
                    self.reduces_done += 1;
                    if let Some(ct) = cert {
                        let expected = &ct.rhs_ids[p];
                        // RHS claim sequence + injection tag.
                        self.claims_checked += expected.len() as u64 + 1;
                        let popped_from = self.claims.len().checked_sub(expected.len());
                        let matches_rhs =
                            popped_from.is_some_and(|k| self.claims[k..] == expected[..]);
                        if !matches_rhs {
                            return Step::Faulted(ValidateError::ShapeMismatch {
                                expected: render_claims(expected),
                                found: render_claims(&self.claims[popped_from.unwrap_or(0)..]),
                            });
                        }
                        let tag_ok = matches!(
                            &node,
                            ParseTree::Roll(inner)
                                if matches!(&**inner,
                                    ParseTree::Inj { index, .. } if *index == prod.alt)
                        );
                        if !tag_ok {
                            return Step::Faulted(ValidateError::ShapeMismatch {
                                expected: intern::grammar(ct.var_ids[prod.nt]).to_string(),
                                found: node.to_string(),
                            });
                        }
                        self.claims.truncate(popped_from.expect("checked above"));
                        self.claims.push(ct.var_ids[prod.nt]);
                    }
                    self.trees.push(node);
                    self.states.push(g as u32);
                    if fuel == 0 {
                        return Step::Rejected { state: g };
                    }
                    fuel -= 1;
                }
                Action::Accept => {
                    let tree = self
                        .trees
                        .pop()
                        .expect("accept with the start tree on the stack");
                    if let Some(ct) = cert {
                        self.claims_checked += 1;
                        let lone_start = self.trees.is_empty()
                            && self.claims.len() == 1
                            && self.claims[0] == ct.start_id;
                        if !lone_start {
                            return Step::Faulted(ValidateError::ShapeMismatch {
                                expected: intern::grammar(ct.start_id).to_string(),
                                found: render_claims(&self.claims),
                            });
                        }
                    }
                    return Step::Accepted(tree);
                }
                Action::Error => return Step::Rejected { state: s },
            }
        }
    }
}

/// Parses `w` end to end, returning the derivation tree (in
/// [`Cfg::to_lambek`] shape) or a structured rejection. With `cert`
/// tables the run is incrementally certified; the outer `Err` is a
/// certification fault (never a plain rejection).
pub(crate) fn parse_tree(
    table: &LrTable,
    cfg: &Cfg,
    cert: Option<&CertTables>,
    w: &GString,
) -> Result<Result<ParseTree, LrReject>, ValidateError> {
    let mut m = Machine::with_capacity(w.len());
    for pos in 0..=w.len() {
        let sym = (pos < w.len()).then(|| w[pos]);
        match m.feed(table, cert, sym) {
            Step::Shifted => {}
            Step::Accepted(tree) => return Ok(Ok(tree)),
            Step::Rejected { state } => return Ok(Err(reject(table, cfg, pos, state))),
            Step::Faulted(cause) => return Err(cause),
        }
    }
    unreachable!("the EOF column only ever accepts or errors")
}

/// Probes whether ending the input at the current configuration would
/// accept: simulates the EOF reductions over a scratch copy of the state
/// stack (no trees are built, nothing is mutated).
pub(crate) fn would_accept_states(table: &LrTable, states: &[u32]) -> bool {
    would_accept_after_states(table, states, &[]).0
}

/// Probes whether consuming `extra` pending terminals and then ending
/// the input would accept, without touching the real stacks. Returns the
/// verdict plus the number of table actions simulated — the probe's
/// work, which is O(stack depth + pending) per call, not O(input).
pub(crate) fn would_accept_after_states(
    table: &LrTable,
    states: &[u32],
    extra: &[Symbol],
) -> (bool, usize) {
    // Virtual stack over the borrowed slice: `base_len` live entries of
    // `states`, then the `overlay` of states pushed by the simulated
    // reductions and shifts. The probe-per-symbol streaming pattern
    // would otherwise clone the whole stack on every probe — O(n²) over
    // a stream.
    let mut base_len = states.len();
    let mut overlay: Vec<u32> = Vec::new();
    let top = |base_len: usize, overlay: &[u32]| -> usize {
        *overlay.last().unwrap_or(&states[base_len - 1]) as usize
    };
    let mut steps = 0usize;
    let mut fuel = reduce_fuel(table, states.len() + extra.len());
    for k in 0..=extra.len() {
        let term = if k < extra.len() {
            match term_column(table, extra[k]) {
                Some(t) => t,
                None => return (false, steps),
            }
        } else {
            table.eof_column()
        };
        loop {
            steps += 1;
            match table.action(top(base_len, &overlay), term) {
                // Accept lives only in the `$` column, which is only
                // probed after the pending symbols are consumed.
                Action::Accept => return (true, steps),
                Action::Shift(t) => {
                    if k == extra.len() {
                        return (false, steps);
                    }
                    overlay.push(t as u32);
                    break;
                }
                Action::Reduce(p) => {
                    let prod = table.production(p);
                    let from_overlay = prod.rhs_len.min(overlay.len());
                    overlay.truncate(overlay.len() - from_overlay);
                    match base_len.checked_sub(prod.rhs_len - from_overlay) {
                        // Popping the bottom marker (or past it) is
                        // impossible for a consistent table; answered
                        // defensively.
                        None | Some(0) => return (false, steps),
                        Some(nb) => base_len = nb,
                    }
                    let Some(g) = table.goto(top(base_len, &overlay), prod.nt) else {
                        return (false, steps);
                    };
                    overlay.push(g as u32);
                    if fuel == 0 {
                        return (false, steps);
                    }
                    fuel -= 1;
                }
                Action::Error => return (false, steps),
            }
        }
    }
    unreachable!("the EOF column only ever accepts or errors")
}
