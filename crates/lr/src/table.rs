//! Dense ACTION/GOTO tables and structured conflict reports.
//!
//! The tables follow the flat row-major `Vec` idiom of the DFA layer
//! (`lambek_automata::dfa::Dfa`): one `i32` ACTION cell per
//! `(state, terminal)` — the terminal axis has one extra column for the
//! end-of-input marker `$` — and one `u32` GOTO cell per
//! `(state, nonterminal)`. A driver step is a multiply-add and a load;
//! there is no hashing and no per-row pointer chase on the hot path.
//!
//! Grammars whose LALR(1) tables have conflicting cells are rejected at
//! construction time with an [`LrConflictReport`] pointing at the
//! offending item sets — the table type itself only ever represents
//! deterministic grammars.

use std::fmt;

use lambek_cfg::grammar::{Cfg, GSym};

use crate::items::{build_lalr, GrammarIndex, Item, AUG_PROD};

/// A decoded ACTION cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// No action: the input is rejected here.
    Error,
    /// Shift the lookahead and enter the state.
    Shift(usize),
    /// Reduce by the production (an index into [`LrTable::production`]).
    Reduce(usize),
    /// Accept: the stack holds exactly one start-symbol tree.
    Accept,
}

/// Packed ACTION encoding: `0` = error, `i32::MAX` = accept, positive
/// `v` = shift to `v - 1`, negative `v` = reduce by `-v - 1`.
const ACCEPT: i32 = i32::MAX;

#[inline]
fn encode(a: Action) -> i32 {
    match a {
        Action::Error => 0,
        Action::Shift(t) => (t + 1) as i32,
        Action::Reduce(p) => -((p + 1) as i32),
        Action::Accept => ACCEPT,
    }
}

#[inline(always)]
fn decode(v: i32) -> Action {
    match v {
        0 => Action::Error,
        ACCEPT => Action::Accept,
        v if v > 0 => Action::Shift((v - 1) as usize),
        v => Action::Reduce((-v - 1) as usize),
    }
}

/// "No goto" sentinel in the flat GOTO table.
const GOTO_NONE: u32 = u32::MAX;

/// Why two table actions collided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConflictKind {
    /// A state both shifts the lookahead and reduces under it.
    ShiftReduce,
    /// A state reduces by two different productions under one lookahead.
    ReduceReduce,
}

impl fmt::Display for ConflictKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConflictKind::ShiftReduce => write!(f, "shift/reduce"),
            ConflictKind::ReduceReduce => write!(f, "reduce/reduce"),
        }
    }
}

/// One unresolvable LALR(1) conflict, pointing at the offending item set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrConflict {
    /// The conflict class.
    pub kind: ConflictKind,
    /// The automaton state whose ACTION row collided.
    pub state: usize,
    /// Display name of the lookahead terminal (`$` for end of input).
    pub lookahead: String,
    /// Human-readable forms of the two competing actions.
    pub actions: (String, String),
    /// The state's closed item set, rendered (`A → α · β , la`).
    pub items: Vec<String>,
}

impl fmt::Display for LrConflict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} conflict in state {} on lookahead {}: {} vs {}",
            self.kind, self.state, self.lookahead, self.actions.0, self.actions.1
        )?;
        for item in &self.items {
            writeln!(f, "    {item}")?;
        }
        Ok(())
    }
}

/// Every conflict found while filling the tables — the structured report
/// a grammar outside the deterministic fragment compiles to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LrConflictReport {
    /// The individual collisions, in state order.
    pub conflicts: Vec<LrConflict>,
}

impl fmt::Display for LrConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "grammar is not LALR(1): {} conflict(s)",
            self.conflicts.len()
        )?;
        for c in &self.conflicts {
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LrConflictReport {}

/// A production as the driver consumes it: the nonterminal, its
/// alternative index (for [`Cfg::derivation`]) and the RHS length (how
/// many stack entries a reduction pops).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProductionRef {
    /// The nonterminal being reduced to.
    pub nt: usize,
    /// Which alternative of `nt`.
    pub alt: usize,
    /// Length of the right-hand side.
    pub rhs_len: usize,
}

/// Dense LALR(1) ACTION/GOTO tables for a conflict-free grammar.
#[derive(Debug, Clone)]
pub struct LrTable {
    n_states: usize,
    /// Terminal columns: `alphabet.len() + 1`, `$` last.
    n_terms: usize,
    n_nts: usize,
    /// Row-major `[state × terminal]` packed actions.
    action: Vec<i32>,
    /// Row-major `[state × nonterminal]` successors (`GOTO_NONE` = none).
    goto_: Vec<u32>,
    /// `prods[p]` describes reduction `p`; `p = 0` is the synthetic
    /// `S' → S` and is never the target of a [`Action::Reduce`].
    prods: Vec<ProductionRef>,
}

impl LrTable {
    /// Builds the LALR(1) tables for `cfg`.
    ///
    /// # Errors
    ///
    /// Returns the full [`LrConflictReport`] when any ACTION cell would
    /// hold two different actions — the grammar is outside the
    /// deterministic LALR(1) fragment.
    pub fn build(cfg: &Cfg) -> Result<LrTable, LrConflictReport> {
        let gi = GrammarIndex::new(cfg);
        let automaton = build_lalr(cfg, &gi);
        let n_states = automaton.closures.len();
        let n_terms = cfg.alphabet().len() + 1;
        let n_nts = cfg.num_nonterminals();

        let mut prods = vec![ProductionRef {
            nt: usize::MAX,
            alt: usize::MAX,
            rhs_len: 1,
        }];
        for p in 1..gi.num_prods() {
            let (nt, alt) = gi.nt_alt(p as u32);
            prods.push(ProductionRef {
                nt,
                alt,
                rhs_len: cfg.alternatives(nt)[alt].rhs.len(),
            });
        }

        let mut action = vec![0i32; n_states * n_terms];
        let mut goto_ = vec![GOTO_NONE; n_states * n_nts];
        let mut conflicts = Vec::new();

        for (state, closed) in automaton.closures.iter().enumerate() {
            // GOTO and shift edges come from the automaton transitions.
            for (sym, &target) in &automaton.edges[state] {
                match sym {
                    GSym::N(m) => goto_[state * n_nts + m] = target as u32,
                    GSym::T(c) => {
                        // Shifts are written first and each ACTION row is
                        // filled only during its own state's iteration, so
                        // the cell is still empty here; shift/reduce
                        // collisions surface in the reductions pass below.
                        action[state * n_terms + c.index()] = encode(Action::Shift(target));
                    }
                }
            }
            // Reductions and accept come from completed items.
            for item in closed {
                if (item.dot as usize) < gi.rhs(cfg, item.prod).len() {
                    continue;
                }
                let proposed = if item.prod == AUG_PROD {
                    Action::Accept
                } else {
                    Action::Reduce(item.prod as usize)
                };
                let cell = &mut action[state * n_terms + item.la as usize];
                match decode(*cell) {
                    Action::Error => *cell = encode(proposed),
                    existing if existing == proposed => {}
                    existing => {
                        let kind = if matches!(existing, Action::Shift(_)) {
                            ConflictKind::ShiftReduce
                        } else {
                            ConflictKind::ReduceReduce
                        };
                        conflicts.push(conflict(
                            cfg,
                            &gi,
                            closed,
                            state,
                            item.la as usize,
                            kind,
                            describe(cfg, &gi, existing),
                            describe(cfg, &gi, proposed),
                        ));
                        // Keep the existing action: the table stays
                        // deterministic even while collecting every
                        // conflict for the report.
                    }
                }
            }
        }

        if conflicts.is_empty() {
            Ok(LrTable {
                n_states,
                n_terms,
                n_nts,
                action,
                goto_,
                prods,
            })
        } else {
            Err(LrConflictReport { conflicts })
        }
    }

    /// Number of automaton states.
    pub fn num_states(&self) -> usize {
        self.n_states
    }

    /// Number of terminal columns (`alphabet.len() + 1`; `$` is last).
    pub fn num_terminals(&self) -> usize {
        self.n_terms
    }

    /// The column index of the end-of-input marker `$`.
    pub fn eof_column(&self) -> usize {
        self.n_terms - 1
    }

    /// Number of GOTO columns (one per nonterminal).
    pub fn num_nonterminals(&self) -> usize {
        self.n_nts
    }

    /// The ACTION cell for `state` under terminal column `term`
    /// (a symbol index, or [`LrTable::eof_column`]).
    #[inline]
    pub fn action(&self, state: usize, term: usize) -> Action {
        decode(self.action[state * self.n_terms + term])
    }

    /// The packed ACTION word for `state` under `term`, for hot loops
    /// that branch on the encoding directly; decode with
    /// [`LrTable::decode_action`].
    #[inline(always)]
    pub fn raw_action(&self, state: usize, term: usize) -> i32 {
        self.action[state * self.n_terms + term]
    }

    /// Decodes a word read via [`LrTable::raw_action`].
    #[inline(always)]
    pub fn decode_action(&self, v: i32) -> Action {
        decode(v)
    }

    /// The GOTO successor of `state` on nonterminal `nt`, if any.
    #[inline]
    pub fn goto(&self, state: usize, nt: usize) -> Option<usize> {
        let v = self.goto_[state * self.n_nts + nt];
        (v != GOTO_NONE).then_some(v as usize)
    }

    /// The production behind reduction index `p`.
    pub fn production(&self, p: usize) -> ProductionRef {
        self.prods[p]
    }

    /// Number of productions (the synthetic `S' → S` included).
    pub fn num_productions(&self) -> usize {
        self.prods.len()
    }

    /// The terminal columns with a non-error action in `state`, rendered
    /// with the alphabet's symbol names (`$` for end of input) — the
    /// "expected one of …" list of a rejection report.
    pub fn expected_in(&self, cfg: &Cfg, state: usize) -> Vec<String> {
        (0..self.n_terms)
            .filter(|&t| self.action(state, t) != Action::Error)
            .map(|t| term_name(cfg, t))
            .collect()
    }
}

/// Display name of terminal column `t` (`$` for the EOF column).
pub(crate) fn term_name(cfg: &Cfg, t: usize) -> String {
    if t == cfg.alphabet().len() {
        "$".to_owned()
    } else {
        cfg.alphabet()
            .name(lambek_core::alphabet::Symbol::from_index(t))
            .to_owned()
    }
}

/// Human-readable form of an action for conflict reports.
fn describe(cfg: &Cfg, gi: &GrammarIndex, a: Action) -> String {
    match a {
        Action::Error => "error".to_owned(),
        Action::Shift(t) => format!("shift to state {t}"),
        Action::Accept => "accept".to_owned(),
        Action::Reduce(p) => format!("reduce {}", render_prod(cfg, gi, p)),
    }
}

fn render_prod(cfg: &Cfg, gi: &GrammarIndex, p: usize) -> String {
    let (nt, _) = gi.nt_alt(p as u32);
    let rhs = gi.rhs(cfg, p as u32);
    let mut out = format!("{} →", cfg.name(nt));
    if rhs.is_empty() {
        out.push_str(" ε");
    }
    for sym in rhs {
        out.push(' ');
        out.push_str(&sym_name(cfg, sym));
    }
    out
}

fn sym_name(cfg: &Cfg, sym: &GSym) -> String {
    match sym {
        GSym::T(c) => cfg.alphabet().name(*c).to_owned(),
        GSym::N(m) => cfg.name(*m).to_owned(),
    }
}

/// Renders one closed item, `A → α · β , la`.
fn render_item(cfg: &Cfg, gi: &GrammarIndex, item: &Item) -> String {
    let (head, rhs) = if item.prod == AUG_PROD {
        ("S'".to_owned(), gi.rhs(cfg, AUG_PROD))
    } else {
        let (nt, _) = gi.nt_alt(item.prod);
        (cfg.name(nt).to_owned(), gi.rhs(cfg, item.prod))
    };
    let mut out = format!("{head} →");
    for (i, sym) in rhs.iter().enumerate() {
        if i == item.dot as usize {
            out.push_str(" ·");
        }
        out.push(' ');
        out.push_str(&sym_name(cfg, sym));
    }
    if item.dot as usize == rhs.len() {
        out.push_str(" ·");
    }
    out.push_str(&format!(" , {}", term_name(cfg, item.la as usize)));
    out
}

#[allow(clippy::too_many_arguments)]
fn conflict(
    cfg: &Cfg,
    gi: &GrammarIndex,
    closed: &[Item],
    state: usize,
    term: usize,
    kind: ConflictKind,
    a: String,
    b: String,
) -> LrConflict {
    LrConflict {
        kind,
        state,
        lookahead: term_name(cfg, term),
        actions: (a, b),
        items: closed.iter().map(|i| render_item(cfg, gi, i)).collect(),
    }
}
