//! # lambek-lr — certified LR(1) parsing for the deterministic fragment
//!
//! The paper's verified parsers (Theorems 4.13/4.14) go through
//! automata constructions; the general CFG baseline in `lambek-cfg` is
//! Earley, worst-case cubic. This crate opens the *deterministic*
//! context-free fragment as a fast serving path: Knuth's LR(1) item-set
//! construction with LALR-style state merging, dense row-major
//! ACTION/GOTO tables (the same flat-`Vec` idiom as the automata
//! layer's DFA tables), and a linear-time shift-reduce driver that
//! builds μ-regular parse trees bottom-up.
//!
//! The paper's contract is kept at the subsystem boundary:
//!
//! * grammars with unresolvable conflicts are rejected *at compile
//!   time* with a structured [`LrConflictReport`] pointing at the
//!   offending item sets (the same notion of "deterministic" the Earley
//!   baseline's ambiguity reporting uses);
//! * every tree a [`CertifiedLrParser`] emits — one-shot or via the
//!   push-mode [`LrStream`] — is certified against the grammar's
//!   μ-regular encoding *incrementally*: each shift and each reduction
//!   is checked as it happens via interned grammar-id comparisons, and
//!   the per-step checks compose to the whole-tree `validate` contract
//!   (kept verbatim behind [`CertifiedLrParser::parse_full`] /
//!   [`CertifiedLrParser::stream_full`] for the differential suites),
//!   so intrinsic verification is preserved end to end at O(1) cost per
//!   step.
//!
//! ```
//! use lambek_automata::lookahead::ArithTokens;
//! use lambek_cfg::expr::{exp_cfg, exp_grammar};
//! use lambek_core::grammar::parse_tree::validate;
//! use lambek_lr::CertifiedLrParser;
//!
//! let t = ArithTokens::new();
//! let parser = CertifiedLrParser::compile(&exp_cfg(&t)).unwrap();
//! // NUM + ( NUM + NUM )
//! let w = [t.num, t.add, t.lp, t.num, t.add, t.num, t.rp]
//!     .into_iter()
//!     .collect();
//! let tree = parser.parse(&w).unwrap().accepted().cloned().unwrap();
//! validate(&tree, &exp_grammar(&t), &w).unwrap(); // already certified
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod certified;
mod driver;
mod items;
pub mod probes;
mod table;

pub use certified::{
    CertifiedLrParser, CertifyError, LrOutcome, LrResumeError, LrSink, LrStream, LrStreamState,
};
pub use driver::{ClaimRef, LrReject, SabotageLr};
pub use probes::LrProbes;
pub use table::{Action, ConflictKind, LrConflict, LrConflictReport, LrTable, ProductionRef};

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_automata::lookahead::ArithTokens;
    use lambek_cfg::dyck::{dyck_cfg, dyck_grammar, parse_dyck_string, Parens};
    use lambek_cfg::expr::{exp_cfg, parse_exp_string};
    use lambek_cfg::grammar::{anbn, Cfg, GSym, Production};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn dyck_compiles_and_agrees_with_recursive_descent() {
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        for w in all_strings(&p.alphabet, 8) {
            let rd = parse_dyck_string(&p, &w);
            let out = parser.parse(&w).unwrap();
            assert_eq!(out.is_accept(), rd.is_some(), "{w}");
            if let Some(tree) = out.accepted() {
                // LR builds the exact same unique derivation the
                // recursive-descent parser does.
                assert_eq!(tree, &rd.unwrap(), "{w}");
                validate(tree, &dyck_grammar(&p), &w).unwrap();
            }
            assert_eq!(parser.recognizes(&w), out.is_accept(), "{w}");
        }
    }

    #[test]
    fn expression_grammar_compiles_and_matches_ll1() {
        let t = ArithTokens::new();
        let parser = CertifiedLrParser::compile(&exp_cfg(&t)).unwrap();
        for w in all_strings(&t.alphabet, 5) {
            let ll1 = parse_exp_string(&t, &w);
            let out = parser.parse(&w).unwrap();
            assert_eq!(out.is_accept(), ll1.is_some(), "{w}");
            if let Some(tree) = out.accepted() {
                assert_eq!(tree, &ll1.unwrap(), "{w}");
            }
        }
    }

    #[test]
    fn anbn_is_lr1() {
        let s = Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let parser = CertifiedLrParser::compile(&anbn(&s, a, b)).unwrap();
        for n in 0..6 {
            let w = s
                .parse_str(&format!("{}{}", "a".repeat(n), "b".repeat(n)))
                .unwrap();
            assert!(parser.recognizes(&w), "a^{n} b^{n}");
        }
        for no in ["a", "b", "ba", "aab", "abb"] {
            assert!(!parser.recognizes(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn left_recursion_is_fine() {
        // E ::= E a | a — fatal for LL and recursive descent, trivial
        // for LR.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["E".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::T(a)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        let parser = CertifiedLrParser::compile(&cfg).unwrap();
        for n in 1..8 {
            let w = s.parse_str(&"a".repeat(n)).unwrap();
            let tree = parser.parse(&w).unwrap().accepted().cloned().unwrap();
            validate(&tree, &cfg.to_lambek(), &w).unwrap();
        }
        assert!(!parser.recognizes(&s.parse_str("").unwrap()));
    }

    #[test]
    fn ambiguous_grammar_is_rejected_with_item_sets() {
        // S ::= S S | a — ambiguous, so necessarily conflicted.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::N(0)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        let report = CertifiedLrParser::compile(&cfg).unwrap_err();
        assert!(!report.conflicts.is_empty());
        let c = &report.conflicts[0];
        assert_eq!(c.kind, ConflictKind::ShiftReduce);
        assert!(
            c.items.iter().any(|i| i.contains('·')),
            "items must show dotted productions: {:?}",
            c.items
        );
        let text = format!("{report}");
        assert!(text.contains("not LALR(1)"), "{text}");
        assert!(text.contains("shift/reduce"), "{text}");
    }

    #[test]
    fn reduce_reduce_conflict_is_reported() {
        // S ::= A | B ; A ::= a ; B ::= a — two reductions under $.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned(), "A".to_owned(), "B".to_owned()],
            vec![
                vec![
                    Production {
                        rhs: vec![GSym::N(1)],
                    },
                    Production {
                        rhs: vec![GSym::N(2)],
                    },
                ],
                vec![Production {
                    rhs: vec![GSym::T(a)],
                }],
                vec![Production {
                    rhs: vec![GSym::T(a)],
                }],
            ],
            0,
        );
        let report = CertifiedLrParser::compile(&cfg).unwrap_err();
        assert!(report
            .conflicts
            .iter()
            .any(|c| c.kind == ConflictKind::ReduceReduce));
        assert_eq!(report.conflicts[0].lookahead, "$");
    }

    #[test]
    fn rejection_reports_position_and_expectations() {
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let w = p.alphabet.parse_str("())").unwrap();
        let LrOutcome::Reject(r) = parser.parse(&w).unwrap() else {
            panic!("()) is unbalanced");
        };
        assert_eq!(r.at, 2, "the second close paren is the offender");
        // LALR performs its pending reductions before detecting the
        // error, so the reported state is the fully unwound one — it
        // expects end of input (or nothing), never the bad symbol.
        assert!(r.expected.contains(&"$".to_owned()), "{:?}", r.expected);
        assert!(!r.expected.contains(&")".to_owned()), "{:?}", r.expected);
        let text = format!("{r}");
        assert!(text.contains("position 2"), "{text}");
    }

    #[test]
    fn stream_tracks_viability_and_acceptance() {
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let mut stream = parser.stream();
        assert!(stream.is_empty() && stream.would_accept(), "ε is balanced");
        let w = p.alphabet.parse_str("(())").unwrap();
        let expected_accepts = [false, false, false, true];
        for (i, sym) in w.iter().enumerate() {
            assert!(stream.push(sym), "every prefix of (()) is viable");
            assert_eq!(stream.would_accept(), expected_accepts[i], "prefix {i}");
        }
        assert_eq!(stream.len(), 4);
        assert!(stream.pending() > 0);
        let tree = stream.finish().unwrap().accepted().cloned().unwrap();
        assert_eq!(tree.flatten(), w);
    }

    #[test]
    fn stream_remembers_the_first_rejection() {
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let mut stream = parser.stream();
        let w = p.alphabet.parse_str(")(").unwrap();
        assert!(!stream.push(w[0]), "a lone close paren kills viability");
        assert!(!stream.is_viable());
        assert!(!stream.push(w[1]));
        assert!(!stream.would_accept());
        assert_eq!(stream.input(), &w);
        let LrOutcome::Reject(r) = stream.finish().unwrap() else {
            panic!(")(... is unbalanced");
        };
        assert_eq!(r.at, 0);
    }

    #[test]
    fn table_introspection() {
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let table = parser.table();
        assert!(table.num_states() > 1);
        assert_eq!(table.num_terminals(), 3, "( , ) and $");
        assert_eq!(table.eof_column(), 2);
        assert_eq!(table.num_productions(), 3, "S'→S, nil, bal");
        let bal = table.production(2);
        assert_eq!((bal.nt, bal.alt, bal.rhs_len), (0, 1, 4));
        // State 0 shifts '(' and reduces nil under ')'... under $ at least.
        assert!(matches!(table.action(0, 0), Action::Shift(_)));
        assert!(matches!(
            table.action(0, table.eof_column()),
            Action::Reduce(_)
        ));
    }

    #[test]
    fn foreign_symbols_are_rejected_not_aliased() {
        // Regression: a symbol index ≥ alphabet.len() must be rejected —
        // an unchecked table lookup would alias the $ column (index ==
        // len) or a neighboring state's row (index > len) and could
        // silently accept garbage.
        use lambek_core::alphabet::{GString, Symbol};
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let eof_alias = Symbol::from_index(p.alphabet.len());
        for w in [
            GString::from_symbols(vec![eof_alias]),
            GString::from_symbols(vec![p.open, p.close, eof_alias]),
            GString::from_symbols(vec![p.open, p.close, eof_alias, p.close]),
            GString::from_symbols(vec![Symbol::from_index(7)]),
        ] {
            assert!(!parser.recognizes(&w), "{w}");
            let outcome = parser.parse(&w).expect("reject, not a certify error");
            assert!(!outcome.is_accept(), "{w}");
            let mut stream = parser.stream();
            for sym in w.iter() {
                stream.push(sym); // must not panic
            }
            assert!(!stream.would_accept(), "{w}");
            assert!(!stream.finish().unwrap().is_accept(), "{w}");
        }
    }

    #[test]
    fn rejections_box_uniformly_as_errors() {
        // LrReject implements Error like CertifyError and
        // LrConflictReport do, so engine callers can box any of the
        // subsystem's failures behind one `dyn Error`.
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let w = p.alphabet.parse_str(")").unwrap();
        let LrOutcome::Reject(r) = parser.parse(&w).unwrap() else {
            panic!(") is unbalanced");
        };
        let boxed: Box<dyn std::error::Error> = Box::new(r);
        assert!(boxed.to_string().contains("rejected at position 0"));
    }

    #[test]
    fn parser_is_send_sync_and_cheap_to_clone() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CertifiedLrParser>();
        assert_send_sync::<LrStream>();
        let p = Parens::new();
        let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).unwrap();
        let clone = parser.clone();
        let w = p.alphabet.parse_str("()").unwrap();
        assert_eq!(parser.recognizes(&w), clone.recognizes(&w));
    }
}
