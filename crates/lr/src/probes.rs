//! Process-global hot-path probes for the LR driver.
//!
//! Like `lambek_lex::probes`, these are process-wide relaxed atomic
//! throughput counters, not per-request metrics: monotone, read via
//! [`snapshot`], meaningful as deltas. The driver's machine
//! accumulates its own plain-integer step counters and flushes the
//! deltas to these statics only when a feed ends in a terminal step
//! (accept, reject, fault), so the shift/reduce hot loop never touches
//! shared memory. The counts of a stream that is abandoned mid-input
//! (never finished, never rejected) are not flushed.

use std::sync::atomic::{AtomicU64, Ordering};

pub(crate) static SHIFTS: AtomicU64 = AtomicU64::new(0);
pub(crate) static REDUCES: AtomicU64 = AtomicU64::new(0);
pub(crate) static CLAIMS_CHECKED: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the process-wide LR probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LrProbes {
    /// Terminals shifted by completed (accepted, rejected, or faulted)
    /// driver runs.
    pub shifts: u64,
    /// Reductions performed by completed driver runs.
    pub reduces: u64,
    /// Certification claims discharged (leaf identity per certified
    /// shift, RHS-claim sequence plus injection tag per certified
    /// reduction, lone-start claim per accept). Zero for runs driven
    /// without certification tables.
    pub claims_checked: u64,
}

/// Reads all LR probes (relaxed; counters are individually exact,
/// mutually unsynchronized).
pub fn snapshot() -> LrProbes {
    LrProbes {
        shifts: SHIFTS.load(Ordering::Relaxed),
        reduces: REDUCES.load(Ordering::Relaxed),
        claims_checked: CLAIMS_CHECKED.load(Ordering::Relaxed),
    }
}
