//! Engine contract tests: compile-once cache semantics and
//! batch-vs-sequential equivalence.

use std::sync::Arc;

use proptest::prelude::*;

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_engine::{parse_batch, Engine, PipelineSpec};

#[test]
fn second_get_or_compile_performs_no_recompilation() {
    let engine = Engine::new();
    let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");

    let first = engine.get_or_compile(&spec).unwrap();
    let stats = engine.stats();
    assert_eq!((stats.hits, stats.misses, stats.compiles), (0, 1, 1));

    let second = engine.get_or_compile(&spec).unwrap();
    let stats = engine.stats();
    assert_eq!((stats.hits, stats.misses, stats.compiles), (1, 1, 1));
    // Not just "a compiled pipeline": the *same* shared artifact.
    assert!(Arc::ptr_eq(&first, &second));

    // A structurally equal spec built independently is the same key.
    let alias = PipelineSpec::regex(Alphabet::from_chars("abc"), "(a*b)|c");
    let third = engine.get_or_compile(&alias).unwrap();
    assert!(Arc::ptr_eq(&first, &third));
    assert_eq!(engine.stats().compiles, 1);
}

#[test]
fn distinct_specs_get_distinct_entries() {
    let engine = Engine::new();
    engine.get_or_compile(&PipelineSpec::dyck(8)).unwrap();
    engine.get_or_compile(&PipelineSpec::dyck(9)).unwrap();
    engine.get_or_compile(&PipelineSpec::expr(6)).unwrap();
    engine
        .get_or_compile(&PipelineSpec::regex(Alphabet::abc(), "a*"))
        .unwrap();
    let stats = engine.stats();
    assert_eq!(stats.entries, 4);
    assert_eq!(stats.compiles, 4);
}

#[test]
fn concurrent_lookups_compile_exactly_once() {
    let engine = Engine::new();
    let spec = PipelineSpec::dyck(16);
    std::thread::scope(|scope| {
        for _ in 0..8 {
            scope.spawn(|| engine.get_or_compile(&spec).unwrap());
        }
    });
    assert_eq!(engine.stats().compiles, 1);
    assert_eq!(engine.stats().entries, 1);
}

#[test]
fn parse_many_reuses_the_cache_across_calls() {
    let engine = Engine::new();
    let spec = PipelineSpec::dyck(12);
    let sigma = Alphabet::parens();
    let inputs: Vec<GString> = ["()", "(())", ")("]
        .iter()
        .map(|s| sigma.parse_str(s).unwrap())
        .collect();
    engine.parse_many(&spec, &inputs, 2).unwrap();
    engine.parse_many(&spec, &inputs, 2).unwrap();
    assert_eq!(engine.stats().compiles, 1);
    assert_eq!(engine.stats().hits, 1);
}

#[test]
fn cfg_specs_share_cache_entries_by_structure() {
    let engine = Engine::new();
    let p = lambek_cfg::dyck::Parens::new();
    let first = engine
        .get_or_compile(&PipelineSpec::cfg("left", lambek_cfg::dyck::dyck_cfg(&p)))
        .unwrap();
    // Same structure, different label, independently built: one compile.
    let second = engine
        .get_or_compile(&PipelineSpec::cfg("right", lambek_cfg::dyck::dyck_cfg(&p)))
        .unwrap();
    assert!(Arc::ptr_eq(&first, &second));
    assert_eq!(engine.stats().compiles, 1);
    // The truncated Dyck pipeline is a *different* spec family.
    engine.get_or_compile(&PipelineSpec::dyck(8)).unwrap();
    assert_eq!(engine.stats().compiles, 2);
}

#[test]
fn lr_batch_fans_out_and_certifies() {
    let engine = Engine::new();
    let spec = PipelineSpec::dyck_cfg();
    let sigma = Alphabet::parens();
    let inputs: Vec<GString> = ["", "()", ")(", "(())()", "(()", "()()()", "((()))"]
        .iter()
        .map(|s| sigma.parse_str(s).unwrap())
        .collect();
    let reports = engine.parse_many(&spec, &inputs, 4).unwrap();
    assert_eq!(reports.len(), inputs.len());
    let pipeline = engine.get_or_compile(&spec).unwrap();
    assert!(
        pipeline.cfg_backend().unwrap().lr().is_some(),
        "Dyck serves through LR"
    );
    for (w, r) in inputs.iter().zip(&reports) {
        // yield_ok is the engine's re-asserted intrinsic check: the
        // (certified) accepted trees and the ⊤ rejection witnesses both
        // flatten back to the input.
        assert!(r.yield_ok, "{w}");
        assert_eq!(r.outcome.is_accept(), pipeline.accepts(w), "{w}");
    }
    // Workers shared one Arc'd pipeline: exactly one compilation.
    assert_eq!(engine.stats().compiles, 1);
}

#[test]
fn lr_and_earley_backed_cfg_batches_agree() {
    // The same (deterministic) grammar parsed through the LR tables and
    // through the truncated verified Dyck pipeline must accept the same
    // inputs within the truncation bound.
    let engine = Engine::new();
    let sigma = Alphabet::parens();
    let inputs: Vec<GString> = ["", "()", "((", "()()", "(())", "())("]
        .iter()
        .map(|s| sigma.parse_str(s).unwrap())
        .collect();
    let lr = engine
        .parse_many(&PipelineSpec::dyck_cfg(), &inputs, 2)
        .unwrap();
    let verified = engine
        .parse_many(&PipelineSpec::dyck(16), &inputs, 2)
        .unwrap();
    for (l, v) in lr.iter().zip(&verified) {
        assert_eq!(l.outcome.is_accept(), v.outcome.is_accept(), "{}", l.index);
    }
}

fn arb_paren_string(max_len: usize) -> impl Strategy<Value = GString> {
    proptest::collection::vec(0usize..2, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol::from_index).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Batch parsing is a pure fan-out: for any workload and any worker
    /// count, the reports equal the sequential ones (modulo timings).
    #[test]
    fn batch_equals_sequential(
        inputs in proptest::collection::vec(arb_paren_string(10), 0..24),
        workers in 1usize..6,
    ) {
        let pipeline = PipelineSpec::dyck(10).compile().unwrap();
        let sequential = parse_batch(&pipeline, &inputs, 1);
        let parallel = parse_batch(&pipeline, &inputs, workers);
        prop_assert_eq!(sequential.len(), parallel.len());
        for (s, p) in sequential.iter().zip(&parallel) {
            prop_assert_eq!(s.index, p.index);
            prop_assert_eq!(s.input_len, p.input_len);
            prop_assert_eq!(&s.outcome, &p.outcome);
            prop_assert_eq!(s.yield_ok, p.yield_ok);
        }
    }

    /// Batch acceptance agrees with the dense-backend fast path.
    #[test]
    fn batch_outcomes_match_fast_accepts(
        inputs in proptest::collection::vec(arb_paren_string(12), 1..16),
    ) {
        let pipeline = PipelineSpec::dyck(12).compile().unwrap();
        let reports = parse_batch(&pipeline, &inputs, 4);
        for (w, r) in inputs.iter().zip(&reports) {
            prop_assert_eq!(r.outcome.is_accept(), pipeline.accepts(w));
            prop_assert!(r.yield_ok);
        }
    }
}
