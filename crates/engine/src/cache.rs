//! The cost-weighted evicting pipeline cache behind [`crate::Engine`].
//!
//! Compilation cost in this workspace is wildly asymmetric: a small
//! regex pipeline compiles in ~5 µs, a lexed-CFG pipeline (tagged lexer
//! DFA + LALR tables + certification id-tables) in hundreds of
//! microseconds — while a cache hit is an id-keyed probe of ~50 ns.
//! A plain LRU treats those the same and will happily evict the one
//! pipeline that is expensive to rebuild to keep fifty that are nearly
//! free. The cache here is therefore *cost-weighted*: each entry's
//! weight is its **measured** compile time
//! ([`crate::CompiledPipeline::compile_time`]), and eviction runs the
//! classic GreedyDual policy — an entry's credit is
//! `clock + compile_cost`, refreshed on every hit; eviction removes the
//! minimum-credit entry and advances the clock to that credit. Recency
//! and rebuild cost trade off against each other: a 537 µs lexed-CFG
//! pipeline survives ~100 touches of a 5 µs regex pipeline before its
//! credit is overtaken, instead of being evicted by the first fifty.
//!
//! The cache is deliberately a plain map + linear eviction scan rather
//! than an intrusive LRU list: the population is *pipelines* (tens, not
//! millions), hits never scan, and the scan runs only when a bound in
//! [`CacheConfig`] is actually exceeded.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use crate::pipeline::{CompiledPipeline, PipelineSpec};

/// Capacity bounds for the engine's pipeline cache.
///
/// Both bounds are enforced together: an insert evicts minimum-credit
/// entries until the entry count is ≤ `max_entries` **and** the total
/// resident weight (sum of measured compile times) is ≤ `max_weight`.
/// The defaults (1024 entries, 60 s of aggregate compile time) are
/// generous enough that a process serving a handful of grammars never
/// evicts; serving fleets that churn through ad-hoc specs set tighter
/// bounds via [`crate::Engine::with_config`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Maximum number of resident pipelines (0 degenerates to
    /// compile-every-time: entries are evicted as soon as they land,
    /// but `get_or_compile` still returns the freshly built `Arc`).
    pub max_entries: usize,
    /// Maximum total resident weight, measured in compile time.
    pub max_weight: Duration,
}

impl CacheConfig {
    /// A cache with no practical bounds (the pre-eviction behaviour).
    pub fn unbounded() -> CacheConfig {
        CacheConfig {
            max_entries: usize::MAX,
            max_weight: Duration::MAX,
        }
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            max_entries: 1024,
            max_weight: Duration::from_secs(60),
        }
    }
}

/// One resident pipeline plus its eviction bookkeeping.
#[derive(Debug)]
struct Entry {
    pipeline: Arc<CompiledPipeline>,
    /// GreedyDual credit: `clock at last touch + cost_us`. The entry
    /// with the minimum credit is the eviction victim.
    credit: u128,
    /// Measured compile time in µs, floored at 1 so that even a
    /// sub-microsecond compile still ages.
    cost_us: u64,
    /// Monotone touch counter, tie-breaking equal credits: among
    /// entries whose credits tie (common when many sub-µs compiles all
    /// floor to the same cost), the least recently touched one is the
    /// victim — never the entry whose own insert triggered the scan.
    touched: u64,
}

/// The engine's pipeline cache. Not internally synchronized — the
/// [`crate::Engine`] wraps it in a `Mutex` (hits mutate credits, so a
/// read-write split buys nothing).
#[derive(Debug)]
pub(crate) struct PipelineCache {
    config: CacheConfig,
    map: HashMap<PipelineSpec, Entry>,
    /// GreedyDual clock: the credit of the last evicted entry. Starts
    /// at 0 and only ever advances, so credits are monotone per touch.
    clock: u128,
    /// Source of [`Entry::touched`] stamps.
    touches: u64,
    /// Sum of resident `cost_us` (the weight bound, in µs).
    weight_us: u128,
    evictions: u64,
    compile_total: Duration,
    compile_max: Duration,
}

impl PipelineCache {
    pub(crate) fn new(config: CacheConfig) -> PipelineCache {
        PipelineCache {
            config,
            map: HashMap::new(),
            clock: 0,
            touches: 0,
            weight_us: 0,
            evictions: 0,
            compile_total: Duration::ZERO,
            compile_max: Duration::ZERO,
        }
    }

    /// Cache probe; a hit refreshes the entry's credit.
    pub(crate) fn get(&mut self, spec: &PipelineSpec) -> Option<Arc<CompiledPipeline>> {
        let clock = self.clock;
        self.touches += 1;
        let touched = self.touches;
        let entry = self.map.get_mut(spec)?;
        entry.credit = clock + u128::from(entry.cost_us);
        entry.touched = touched;
        Some(entry.pipeline.clone())
    }

    /// Inserts a freshly compiled pipeline, records its compile latency,
    /// and evicts minimum-credit entries until both bounds hold.
    pub(crate) fn insert(&mut self, spec: PipelineSpec, pipeline: Arc<CompiledPipeline>) {
        let cost = pipeline.compile_time();
        self.compile_total += cost;
        self.compile_max = self.compile_max.max(cost);
        let cost_us = (cost.as_micros() as u64).max(1);
        self.weight_us += u128::from(cost_us);
        self.touches += 1;
        self.map.insert(
            spec.clone(),
            Entry {
                pipeline,
                credit: self.clock + u128::from(cost_us),
                cost_us,
                touched: self.touches,
            },
        );
        self.evict_to_bounds(Some(&spec));
    }

    fn over_bounds(&self) -> bool {
        self.map.len() > self.config.max_entries
            || self.weight_us > self.config.max_weight.as_micros()
    }

    /// Evicts minimum-credit entries until both bounds hold. `protect`
    /// is the key whose insert triggered the scan: it is never chosen
    /// as a victim while other entries remain (being the cheapest must
    /// not mean being evicted by your own insert before first use),
    /// but it does go once it is the sole survivor and the bounds are
    /// still exceeded (e.g. `max_entries == 0`).
    fn evict_to_bounds(&mut self, protect: Option<&PipelineSpec>) {
        while self.over_bounds() {
            // Linear scan for the minimum credit: eviction is off the
            // hot path and the population is small by construction.
            let last_one = self.map.len() == 1;
            let victim = self
                .map
                .iter()
                .filter(|(k, _)| last_one || protect != Some(*k))
                .min_by_key(|(_, e)| (e.credit, e.touched))
                .map(|(k, e)| (k.clone(), e.credit, e.cost_us));
            let Some((key, credit, cost_us)) = victim else {
                return; // bounds can only be exceeded by a resident entry
            };
            self.map.remove(&key);
            self.weight_us -= u128::from(cost_us);
            self.clock = self.clock.max(credit);
            self.evictions += 1;
        }
    }

    pub(crate) fn len(&self) -> usize {
        self.map.len()
    }

    /// Drops every entry without touching the eviction counter or the
    /// clock ([`crate::Engine::clear`] is an operator action, not a
    /// capacity event).
    pub(crate) fn clear(&mut self) {
        self.map.clear();
        self.weight_us = 0;
    }

    pub(crate) fn evictions(&self) -> u64 {
        self.evictions
    }

    pub(crate) fn resident_weight(&self) -> Duration {
        Duration::from_micros(self.weight_us.min(u128::from(u64::MAX)) as u64)
    }

    pub(crate) fn compile_total(&self) -> Duration {
        self.compile_total
    }

    pub(crate) fn compile_max(&self) -> Duration {
        self.compile_max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compiled(spec: &PipelineSpec) -> Arc<CompiledPipeline> {
        Arc::new(spec.compile().expect("test specs compile"))
    }

    #[test]
    fn entry_bound_evicts_minimum_credit() {
        let mut cache = PipelineCache::new(CacheConfig {
            max_entries: 2,
            max_weight: Duration::MAX,
        });
        let a = PipelineSpec::dyck(4);
        let b = PipelineSpec::dyck(5);
        let c = PipelineSpec::dyck(6);
        cache.insert(a.clone(), compiled(&a));
        cache.insert(b.clone(), compiled(&b));
        assert_eq!(cache.len(), 2);
        cache.insert(c.clone(), compiled(&c));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.evictions(), 1);
        // The newest entry is never the victim of its own insert.
        assert!(cache.get(&c).is_some());
    }

    #[test]
    fn expensive_entries_outlive_cheap_ones() {
        // Two synthetic entries with a 100:1 cost ratio: after evicting
        // down to one, the survivor must be the expensive pipeline even
        // though the cheap one was touched more recently.
        let mut cache = PipelineCache::new(CacheConfig::unbounded());
        let costly = PipelineSpec::arith_lexed();
        let cheap = PipelineSpec::dyck(3);
        cache.insert(costly.clone(), compiled(&costly));
        cache.insert(cheap.clone(), compiled(&cheap));
        let ratio = {
            let c = cache.map.get(&costly).unwrap().cost_us;
            let d = cache.map.get(&cheap).unwrap().cost_us;
            c as f64 / d as f64
        };
        assert!(
            ratio > 1.0,
            "lexed-CFG compile must outweigh a tiny Dyck compile (ratio {ratio})"
        );
        // Touch the cheap one last, then force one eviction.
        cache.get(&cheap);
        cache.config.max_entries = 1;
        cache.evict_to_bounds(None);
        assert!(cache.get(&costly).is_some(), "the heavy pipeline survives");
        assert!(cache.get(&cheap).is_none());
    }

    #[test]
    fn weight_bound_is_enforced() {
        let mut cache = PipelineCache::new(CacheConfig {
            max_entries: usize::MAX,
            max_weight: Duration::from_micros(1),
        });
        let a = PipelineSpec::dyck(4);
        let b = PipelineSpec::dyck(5);
        cache.insert(a.clone(), compiled(&a));
        cache.insert(b.clone(), compiled(&b));
        // Each insert blew the 1 µs budget and evicted down to it.
        assert!(cache.evictions() >= 1);
        assert!(cache.resident_weight() <= Duration::from_micros(1));
    }
}
