//! The persistent work-stealing worker pool behind
//! [`crate::Engine::parse_many`].
//!
//! The original batch path spun up a fresh [`std::thread::scope`] per
//! call — correct, but a serving engine pays thread spawn/join (tens of
//! microseconds each) on *every* batch. The pool here is created once
//! per [`crate::Engine`] (lazily, on the first submitted batch) and
//! keeps its workers alive across batches:
//!
//! * one double-ended job queue **per worker** (the crossbeam deque
//!   shape, built from `std` primitives — this workspace vendors no
//!   lock-free deque): submissions land round-robin on the per-worker
//!   queues, an idle worker pops its own queue from the back and, when
//!   that runs dry, *steals* from the front of a sibling's queue, so an
//!   unlucky shard distribution still keeps every core busy;
//! * a single parking lot (`Mutex` + `Condvar` around a queued-job
//!   counter) for sleep/wake — workers spin only across the
//!   nanosecond-scale window between a queue push and its counter
//!   update, and park otherwise;
//! * batches are submitted as contiguous *shards* of the input range and
//!   reassembled in input order on the calling thread, so pool results
//!   are indistinguishable (modulo timings) from the scoped-thread
//!   baseline — the property suites assert exactly that.
//!
//! The pool is not reentrant: a job must never submit a batch to the
//! pool that runs it (the calling thread blocks until its batch
//! drains). The engine only submits from caller threads.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Observability counters for the engine's persistent worker pool (see
/// [`crate::Engine::engine_stats`]). All zero until the first batch
/// forces the pool into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Worker threads kept alive by the pool.
    pub workers: usize,
    /// Request shards submitted across all batches.
    pub submitted: u64,
    /// Shards executed to completion by pool workers.
    pub executed: u64,
    /// Shards a worker stole from a sibling's queue.
    pub steals: u64,
    /// Batches run through the pool.
    pub batches: u64,
}

/// The sleep/wake state shared by all workers.
#[derive(Debug)]
struct Park {
    /// Jobs pushed but not yet grabbed. Transiently negative when a
    /// grab races ahead of its submission's counter update — the wait
    /// condition is `queued <= 0`, so the race costs a yield, never a
    /// lost wakeup.
    queued: i64,
    shutdown: bool,
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    park: Mutex<Park>,
    signal: Condvar,
    submitted: AtomicU64,
    executed: AtomicU64,
    steals: AtomicU64,
    batches: AtomicU64,
    /// Round-robin cursor for shard placement.
    next_queue: AtomicUsize,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Jobs are opaque closures; show the observable counters.
        f.debug_struct("Shared")
            .field("queues", &self.queues.len())
            .field("submitted", &self.submitted)
            .field("executed", &self.executed)
            .field("steals", &self.steals)
            .field("batches", &self.batches)
            .finish_non_exhaustive()
    }
}

impl Shared {
    /// Pops from `me`'s own queue (back), then steals from siblings
    /// (front), oldest-first from the queue after `me`.
    fn grab(&self, me: usize) -> Option<Job> {
        if let Some(job) = self.queues[me]
            .lock()
            .expect("pool queue poisoned")
            .pop_back()
        {
            return Some(job);
        }
        let n = self.queues.len();
        for d in 1..n {
            let victim = (me + d) % n;
            if let Some(job) = self.queues[victim]
                .lock()
                .expect("pool queue poisoned")
                .pop_front()
            {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    fn worker_loop(&self, me: usize) {
        loop {
            match self.grab(me) {
                Some(job) => {
                    self.park.lock().expect("pool park poisoned").queued -= 1;
                    job();
                }
                None => {
                    let park = self.park.lock().expect("pool park poisoned");
                    if park.shutdown {
                        return;
                    }
                    if park.queued <= 0 {
                        let _unused = self.signal.wait(park).expect("pool park poisoned");
                    } else {
                        // Counter says work exists but the push has not
                        // landed in a queue yet: yield and rescan.
                        drop(park);
                        std::thread::yield_now();
                    }
                }
            }
        }
    }
}

/// A fixed-size pool of long-lived worker threads with per-worker
/// stealable job queues.
#[derive(Debug)]
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (0 = one per available core).
    pub(crate) fn new(workers: usize) -> WorkerPool {
        let n = if workers == 0 {
            std::thread::available_parallelism().map_or(1, |p| p.get())
        } else {
            workers
        };
        let shared = Arc::new(Shared {
            queues: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            park: Mutex::new(Park {
                queued: 0,
                shutdown: false,
            }),
            signal: Condvar::new(),
            submitted: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            next_queue: AtomicUsize::new(0),
        });
        let handles = (0..n)
            .map(|me| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("lambek-pool-{me}"))
                    .spawn(move || shared.worker_loop(me))
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { shared, handles }
    }

    pub(crate) fn workers(&self) -> usize {
        self.handles.len()
    }

    pub(crate) fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.handles.len(),
            submitted: self.shared.submitted.load(Ordering::Relaxed),
            executed: self.shared.executed.load(Ordering::Relaxed),
            steals: self.shared.steals.load(Ordering::Relaxed),
            batches: self.shared.batches.load(Ordering::Relaxed),
        }
    }

    /// Instantaneous per-shard queue depths (jobs pushed but not yet
    /// grabbed), one entry per worker. Each queue is locked briefly in
    /// turn, so the vector is per-queue exact but not a cross-queue
    /// atomic snapshot — the gauge semantics exporters expect.
    pub(crate) fn queue_depths(&self) -> Vec<usize> {
        self.shared
            .queues
            .iter()
            .map(|q| q.lock().expect("pool queue poisoned").len())
            .collect()
    }

    /// Runs `f` over every item, sharded across the pool, and returns
    /// the results in item order. `shards_hint` bounds the shard count
    /// (0 = one per worker); an empty item list submits nothing.
    ///
    /// `f` receives the item's global index in the batch, so reports
    /// can carry it without threading state through the shards.
    pub(crate) fn run_batch<T, R, F>(&self, items: Vec<T>, shards_hint: usize, f: F) -> Vec<R>
    where
        T: Send + 'static,
        R: Send + 'static,
        F: Fn(usize, &T) -> R + Send + Sync + 'static,
    {
        if items.is_empty() {
            return Vec::new();
        }
        let shards = if shards_hint == 0 {
            self.workers()
        } else {
            shards_hint
        }
        .clamp(1, items.len());
        let per = items.len().div_ceil(shards);
        let f = Arc::new(f);
        let (tx, rx) = mpsc::channel::<(usize, Vec<R>)>();
        // Peel each shard off as an owned contiguous chunk (no clones);
        // the chunk remembers its base index for report numbering.
        let mut chunks: Vec<(usize, Vec<T>)> = Vec::with_capacity(shards);
        let mut start = 0;
        let mut rest = items;
        for _ in 0..shards {
            let take = per.min(rest.len());
            let tail = rest.split_off(take);
            chunks.push((start, rest));
            start += take;
            rest = tail;
            if rest.is_empty() {
                break;
            }
        }
        let submitted = chunks.len();
        for (shard_idx, (base, chunk)) in chunks.into_iter().enumerate() {
            let f = f.clone();
            let tx = tx.clone();
            let shared = self.shared.clone();
            let job: Job = Box::new(move || {
                let out: Vec<R> = chunk
                    .iter()
                    .enumerate()
                    .map(|(i, item)| f(base + i, item))
                    .collect();
                // Count completion *before* the send: the caller reads
                // `executed` as soon as every shard has been received,
                // so an increment after the send could still be in
                // flight and make `submitted == executed` flicker.
                shared.executed.fetch_add(1, Ordering::Relaxed);
                // The receiver only disappears if the caller panicked;
                // a dead letter is then irrelevant.
                let _unused = tx.send((shard_idx, out));
            });
            let q = self.shared.next_queue.fetch_add(1, Ordering::Relaxed) % self.workers();
            self.shared.queues[q]
                .lock()
                .expect("pool queue poisoned")
                .push_back(job);
        }
        drop(tx);
        self.shared
            .submitted
            .fetch_add(submitted as u64, Ordering::Relaxed);
        self.shared.batches.fetch_add(1, Ordering::Relaxed);
        {
            let mut park = self.shared.park.lock().expect("pool park poisoned");
            park.queued += submitted as i64;
        }
        self.shared.signal.notify_all();
        let mut slots: Vec<Option<Vec<R>>> = (0..submitted).map(|_| None).collect();
        for _ in 0..submitted {
            let (shard_idx, out) = rx.recv().expect("a pool worker panicked mid-shard");
            slots[shard_idx] = Some(out);
        }
        slots
            .into_iter()
            .flat_map(|s| s.expect("every shard reported"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut park = self.shared.park.lock().expect("pool park poisoned");
            park.shutdown = true;
        }
        self.shared.signal.notify_all();
        for h in self.handles.drain(..) {
            let _unused = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_item_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<u64> = (0..257).collect();
        let out = pool.run_batch(items, 0, |i, x| (i as u64, x * 2));
        assert_eq!(out.len(), 257);
        for (i, (idx, doubled)) in out.iter().enumerate() {
            assert_eq!(*idx, i as u64);
            assert_eq!(*doubled, i as u64 * 2);
        }
        let stats = pool.stats();
        assert_eq!(stats.batches, 1);
        assert!(stats.submitted >= 1 && stats.submitted <= 4);
        assert_eq!(stats.submitted, stats.executed);
    }

    #[test]
    fn empty_batch_submits_nothing() {
        let pool = WorkerPool::new(2);
        let out: Vec<u64> = pool.run_batch(Vec::<u64>::new(), 3, |_, x| *x);
        assert!(out.is_empty());
        assert_eq!(pool.stats().submitted, 0);
        assert_eq!(pool.stats().batches, 0);
    }

    #[test]
    fn pool_survives_many_batches_from_many_threads() {
        let pool = Arc::new(WorkerPool::new(3));
        std::thread::scope(|scope| {
            for t in 0..6 {
                let pool = pool.clone();
                scope.spawn(move || {
                    for round in 0..20 {
                        let items: Vec<u64> = (0..17).map(|i| i + t * 1000 + round).collect();
                        let expect: Vec<u64> = items.iter().map(|x| x + 1).collect();
                        assert_eq!(pool.run_batch(items, 0, |_, x| x + 1), expect);
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.batches, 120);
        assert_eq!(stats.submitted, stats.executed);
    }

    #[test]
    fn single_worker_pool_still_drains() {
        let pool = WorkerPool::new(1);
        let out = pool.run_batch((0..50u64).collect(), 8, |_, x| x * x);
        assert_eq!(out[49], 49 * 49);
        assert_eq!(pool.stats().steals, 0);
    }

    #[test]
    fn queue_depths_are_per_worker_and_drain_to_zero() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.queue_depths(), vec![0, 0, 0]);
        let out = pool.run_batch((0..40u64).collect(), 0, |_, x| x + 1);
        assert_eq!(out.len(), 40);
        // run_batch returns only after every shard was received, and
        // executed shards were grabbed off their queues first.
        assert_eq!(pool.queue_depths(), vec![0, 0, 0]);
    }
}
