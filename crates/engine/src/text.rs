//! Text submissions: [`Engine::compile_text`] serves the self-hosted
//! grammar frontend (`lambek-frontend`) through the engine's pipeline
//! cache.
//!
//! The bootstrap meta pipeline — the grammar language's own lexer and
//! LALR parser — is itself an ordinary cached [`PipelineSpec`], so the
//! first text submission compiles it once and every later submission
//! reuses the shared `Arc` like any other pipeline. A submitted text is
//! then parsed *by that pipeline* (certified lexing + certified LR
//! drive), elaborated into a validated lexer + grammar pair, gated by
//! the caller's [`Budgets`], and finally compiled-or-fetched through
//! the same cache. Because the cache key is interned from the
//! elaborated spec's *content*, two textually different but
//! structurally equal submissions share one compiled pipeline.

use std::sync::Arc;
use std::time::Instant;

use lambek_frontend::bootstrap::ast_from_tree;
use lambek_frontend::{
    annotate_conflicts, elaborate, meta_cfg, meta_spec, probes, BudgetExceeded, BudgetKind,
    Budgets, FrontendError, FrontendErrorKind, FrontendReport,
};
use lambek_lex::Span;
use lambek_obs::{Recorder, Stage, Trace};

use crate::{CompiledPipeline, Engine, PipelineSpec, StrOutcome};

/// Options for [`Engine::compile_text_with`].
#[derive(Debug, Clone, Default)]
pub struct CompileTextOptions {
    /// Compile-time budgets (production count, LALR states, deadline).
    pub budgets: Budgets,
    /// Serve grammars with LALR conflicts through the Earley fallback
    /// instead of rejecting them (default `false`: conflicts come back
    /// as a structured [`FrontendReport::Conflicts`] with source
    /// spans).
    pub allow_conflicts: bool,
}

/// A successfully compiled text submission: the cached pipeline plus
/// the submission's identity.
#[derive(Debug, Clone)]
pub struct PipelineHandle {
    /// The spec the pipeline is cached under (its [`PipelineSpec::key`]
    /// is the interned structural identity of the elaborated spec).
    pub spec: PipelineSpec,
    /// The compiled pipeline, shared with every structurally equal
    /// submission.
    pub pipeline: Arc<CompiledPipeline>,
    /// The user grammar's start nonterminal.
    pub start: String,
    /// `true` when a structurally equal spec was already resident — no
    /// compilation happened for this call.
    pub cache_hit: bool,
}

impl Engine {
    /// The spec of the bootstrap meta pipeline (the grammar language's
    /// own lexer + LALR parser), served through the cache like any
    /// other pipeline.
    pub fn frontend_meta_spec() -> PipelineSpec {
        PipelineSpec::lexed_cfg("grammar-frontend", meta_spec(), meta_cfg())
    }

    /// Compiles a grammar-language text into a cached pipeline with
    /// default [`CompileTextOptions`]. See
    /// [`Engine::compile_text_with`].
    ///
    /// # Errors
    ///
    /// A structured [`FrontendReport`]: span-carrying diagnostics, an
    /// annotated conflict report, or a shed budget.
    pub fn compile_text(&self, text: &str) -> Result<PipelineHandle, FrontendReport> {
        self.compile_text_with(text, &CompileTextOptions::default())
    }

    /// Compiles a grammar-language text end to end: self-hosted
    /// bootstrap parse (through the cached meta pipeline), elaboration,
    /// budget gates, then compile-or-fetch of the user pipeline from
    /// the engine cache.
    ///
    /// On a tracing engine ([`crate::ObsConfig::tracing`]) every
    /// successful compile records a trace with `frontend`, `elaborate`,
    /// `cache` and (on a miss) `compile` stage spans.
    ///
    /// A conflicted grammar is rejected by default but stays resident
    /// in its Earley-fallback form, so re-submitting the same text (or
    /// retrying with `allow_conflicts`) does not recompile it.
    ///
    /// # Errors
    ///
    /// A structured [`FrontendReport`]: span-carrying diagnostics, an
    /// annotated conflict report, or a shed budget.
    pub fn compile_text_with(
        &self,
        text: &str,
        options: &CompileTextOptions,
    ) -> Result<PipelineHandle, FrontendReport> {
        let started = Instant::now();
        probes::note_text();
        let budgets = &options.budgets;

        // ---- frontend: self-hosted parse of the submission ---------
        let t_front = Instant::now();
        let meta = self
            .get_or_compile(&Engine::frontend_meta_spec())
            .map_err(|e| FrontendReport::Internal(format!("meta pipeline: {e}")))?;
        let backend = meta
            .lexed_backend()
            .expect("the meta pipeline is a lexed-cfg pipeline");
        let outcome = backend
            .parse_str_tokens(text)
            .map_err(|e| FrontendReport::Internal(format!("bootstrap parse: {e}")))?;
        let ast = match outcome {
            StrOutcome::Accept { tree, tokens } => {
                let tokens = tokens.expect("parse_str_tokens materializes the stream");
                ast_from_tree(text, &tree, &tokens).map_err(|e| {
                    probes::note_elab_failure();
                    FrontendReport::Errors(vec![e])
                })?
            }
            StrOutcome::RejectLex(e) => {
                probes::note_elab_failure();
                return Err(FrontendReport::Errors(vec![FrontendError::new(
                    FrontendErrorKind::Syntax {
                        message: e.to_string(),
                    },
                    Span {
                        start: e.at,
                        end: e.at,
                    },
                    text,
                )]));
            }
            StrOutcome::RejectParse { span, message, .. } => {
                probes::note_elab_failure();
                return Err(FrontendReport::Errors(vec![FrontendError::new(
                    FrontendErrorKind::Syntax { message },
                    span,
                    text,
                )]));
            }
        };
        let frontend_time = t_front.elapsed();

        // ---- elaborate + budget gates ------------------------------
        let t_elab = Instant::now();
        let elab = elaborate(text, &ast).map_err(|errors| {
            probes::note_elab_failure();
            FrontendReport::Errors(errors)
        })?;
        let elaborate_time = t_elab.elapsed();
        if elab.num_productions > budgets.max_productions {
            probes::note_budget_shed();
            return Err(FrontendReport::Budget(BudgetExceeded {
                kind: BudgetKind::Productions,
                limit: budgets.max_productions as u64,
                actual: elab.num_productions as u64,
            }));
        }
        if let Some(deadline) = budgets.deadline {
            let elapsed = started.elapsed();
            if elapsed > deadline {
                probes::note_budget_shed();
                return Err(FrontendReport::Budget(BudgetExceeded {
                    kind: BudgetKind::Deadline,
                    limit: deadline.as_micros() as u64,
                    actual: elapsed.as_micros() as u64,
                }));
            }
        }

        // ---- compile-or-fetch the user pipeline --------------------
        let spec = PipelineSpec::lexed_cfg(
            format!("text:{}", elab.start_name),
            elab.spec.clone(),
            elab.cfg.clone(),
        );
        let (pipeline, lookup, compile) = self
            .get_or_compile_timed(&spec)
            .map_err(|e| FrontendReport::Internal(format!("user pipeline: {e}")))?;
        let cfg_backend = pipeline
            .lexed_backend()
            .expect("a text pipeline is a lexed-cfg pipeline")
            .cfg_backend();
        if let Some(report) = cfg_backend.conflicts() {
            if !options.allow_conflicts {
                probes::note_conflict_reject();
                return Err(FrontendReport::Conflicts(annotate_conflicts(
                    report.clone(),
                    &elab,
                    text,
                )));
            }
        }
        if let Some(lr) = cfg_backend.lr() {
            let states = lr.table().num_states();
            if states > budgets.max_states {
                probes::note_budget_shed();
                return Err(FrontendReport::Budget(BudgetExceeded {
                    kind: BudgetKind::States,
                    limit: budgets.max_states as u64,
                    actual: states as u64,
                }));
            }
        }

        if self.metrics.tracing {
            let mut trace = Trace::new(&spec.label(), 0, text.len());
            let mut at = std::time::Duration::ZERO;
            for (stage, duration) in [
                (Stage::Frontend, Some(frontend_time)),
                (Stage::Elaborate, Some(elaborate_time)),
                (Stage::Cache, Some(lookup)),
                (Stage::Compile, compile),
            ] {
                if let Some(duration) = duration {
                    trace.record(stage, at, duration);
                    at += duration;
                }
            }
            trace.total = started.elapsed();
            self.metrics.traces.push(trace);
        }

        Ok(PipelineHandle {
            spec,
            pipeline,
            start: elab.start_name,
            cache_hit: compile.is_none(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CacheConfig, ObsConfig};

    const ARITH: &str = "token NUM = [0-9]+ ;\nskip WS = [ \\t\\n]+ ;\nstart Exp ;\nExp ::= Atom | Atom '+' Exp ;\nAtom ::= NUM | '(' Exp ')' ;\n";

    #[test]
    fn text_compiles_and_parses_through_the_cache() {
        let engine = Engine::new();
        let handle = engine.compile_text(ARITH).expect("arith compiles");
        assert_eq!(handle.start, "Exp");
        assert!(!handle.cache_hit);
        let backend = handle.pipeline.lexed_backend().expect("lexed");
        assert!(matches!(
            backend.parse_str("(1 + 2) + 34").expect("parses"),
            StrOutcome::Accept { .. }
        ));
        assert!(!matches!(
            backend.parse_str("(1 +").expect("parses"),
            StrOutcome::Accept { .. }
        ));
        // A textually different but structurally equal submission hits
        // the cache and shares the compiled pipeline.
        let reworded = ARITH.replace("Exp ::=", "Exp  ::="); // extra space
        let again = engine.compile_text(&reworded).expect("compiles");
        assert!(again.cache_hit);
        assert!(Arc::ptr_eq(&handle.pipeline, &again.pipeline));
    }

    #[test]
    fn text_traces_record_frontend_stages() {
        let engine = Engine::with_obs(
            CacheConfig::default(),
            ObsConfig {
                tracing: true,
                trace_ring: 8,
            },
        );
        engine.compile_text(ARITH).expect("compiles");
        let traces = engine.recent_traces();
        assert_eq!(traces.len(), 1);
        let trace = &traces[0];
        assert!(trace.span_duration(Stage::Frontend).is_some());
        assert!(trace.span_duration(Stage::Elaborate).is_some());
        assert!(trace.span_duration(Stage::Compile).is_some());
    }

    #[test]
    fn bad_text_is_a_structured_report_not_a_panic() {
        let engine = Engine::new();
        match engine.compile_text("token = ;") {
            Err(FrontendReport::Errors(errors)) => {
                assert!(!errors.is_empty());
                assert!(errors[0].line >= 1);
            }
            other => panic!("expected diagnostics, got {other:?}"),
        }
        // Conflicted grammars come back as annotated conflict reports…
        let ambiguous = "token A = 'a' ;\nE ::= E E | A ;\n";
        match engine.compile_text(ambiguous) {
            Err(FrontendReport::Conflicts(report)) => {
                assert!(!report.sites.is_empty());
            }
            other => panic!("expected conflicts, got {other:?}"),
        }
        // …unless the caller opts into the Earley fallback.
        let opts = CompileTextOptions {
            allow_conflicts: true,
            ..CompileTextOptions::default()
        };
        let handle = engine
            .compile_text_with(ambiguous, &opts)
            .expect("Earley fallback serves conflicted grammars");
        assert!(handle
            .pipeline
            .lexed_backend()
            .expect("lexed")
            .cfg_backend()
            .conflicts()
            .is_some());
    }
}
