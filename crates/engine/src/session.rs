//! Serializable stream sessions: the versioned byte format behind
//! [`StreamParser::snapshot`](crate::StreamParser::snapshot) and
//! [`Engine::resume`](crate::Engine::resume).
//!
//! A [`SessionState`] is a self-describing blob:
//!
//! ```text
//! "LBKS" | version u16 | spec fingerprint u64 | mode u8 | payload | checksum u64
//! ```
//!
//! all integers little-endian. The trailing checksum is FNV-1a-64 over
//! every preceding byte, so random corruption is detected *before* any
//! payload field is interpreted; the spec fingerprint
//! ([`PipelineSpec::session_fingerprint`](crate::PipelineSpec::session_fingerprint))
//! is process-independent, so a blob parked by one process resumes in
//! another — but only into a structurally identical pipeline.
//!
//! The blob is **untrusted input**. Nothing in it is taken at face
//! value: decoding is bounds-checked (a truncated or over-long blob is
//! [`SessionError::Corrupt`]), and the decoded state is then re-validated
//! against the actual compiled pipeline — LR stack transitions against
//! the ACTION/GOTO tables, parked parse trees against the grammar and
//! their yield windows, lexer state by replaying the unresolved suffix,
//! tokens by a fresh incremental certifier. A bogus blob can be
//! *rejected* ([`SessionError::Invalid`]); it can never produce a
//! mis-certified stream.

use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::parse_tree::ParseTree;

use crate::EngineError;

/// Version stamp of the session wire format. Bumped on any layout
/// change; old blobs then fail with [`SessionError::Version`] instead
/// of being misread.
pub const SESSION_VERSION: u16 = 1;

/// Leading magic of every session blob.
const MAGIC: [u8; 4] = *b"LBKS";

/// Header length: magic + version + fingerprint + mode tag.
const HEADER_LEN: usize = 4 + 2 + 8 + 1;

/// A parked stream session: the serialized state of a
/// [`StreamParser`](crate::StreamParser), produced by
/// [`StreamParser::snapshot`](crate::StreamParser::snapshot) and
/// consumed by [`Engine::resume`](crate::Engine::resume).
///
/// The wrapper is deliberately transparent — the bytes can be written
/// to disk or shipped across processes ([`SessionState::as_bytes`] /
/// [`SessionState::from_bytes`]); all integrity and compatibility
/// checking happens at resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionState {
    bytes: Vec<u8>,
}

impl SessionState {
    /// The serialized form, checksum included.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the wrapper, yielding the serialized form.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Wraps bytes read back from storage. No validation happens here —
    /// damaged bytes surface as structured errors at
    /// [`Engine::resume`](crate::Engine::resume), never as panics.
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> SessionState {
        SessionState {
            bytes: bytes.into(),
        }
    }

    /// Size of the blob in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` for a zero-length blob (always invalid to resume).
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

/// Why a [`SessionState`] could not be resumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The blob is damaged: framing, checksum, or payload decoding
    /// failed. Detected before any state is interpreted.
    Corrupt(String),
    /// The blob was written by an incompatible wire-format version.
    Version {
        /// The version stamped in the blob.
        found: u16,
        /// The version this build reads ([`SESSION_VERSION`]).
        expected: u16,
    },
    /// The blob was parked from a structurally different pipeline spec.
    SpecMismatch {
        /// The fingerprint stamped in the blob.
        found: u64,
        /// The resuming spec's fingerprint.
        expected: u64,
    },
    /// The blob decoded, but its state failed re-validation against the
    /// compiled pipeline (inconsistent stacks, trees, tokens, …).
    Invalid(String),
    /// The stream cannot be parked or resumed at all (e.g. a faulted
    /// stream, or a blob whose mode the pipeline has no backend for).
    Unsupported(String),
    /// The pipeline itself failed to compile during resume.
    Engine(EngineError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Corrupt(m) => write!(f, "corrupt session blob: {m}"),
            SessionError::Version { found, expected } => write!(
                f,
                "session blob has wire-format version {found}, this build reads {expected}"
            ),
            SessionError::SpecMismatch { found, expected } => write!(
                f,
                "session blob was parked from a different pipeline \
                 (fingerprint {found:#018x}, resuming spec is {expected:#018x})"
            ),
            SessionError::Invalid(m) => write!(f, "session state failed re-validation: {m}"),
            SessionError::Unsupported(m) => write!(f, "session not supported: {m}"),
            SessionError::Engine(e) => write!(f, "pipeline failed to compile during resume: {e}"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Streaming 64-bit FNV-1a, used for both the blob checksum and the
/// spec fingerprint. Not cryptographic — it guards against accidental
/// corruption; *semantic* safety comes from the re-validation pass,
/// which holds even for deliberately forged blobs.
#[derive(Debug, Clone)]
pub(crate) struct Fnv64(u64);

impl Fnv64 {
    /// The FNV-1a offset basis.
    pub(crate) fn new() -> Fnv64 {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub(crate) fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The digest so far.
    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a of a byte slice.
fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.update(bytes);
    h.finish()
}

/// Little-endian byte sink for payload encoding.
#[derive(Debug, Default)]
pub(crate) struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    pub(crate) fn new() -> Writer {
        Writer::default()
    }

    pub(crate) fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Length-prefixed UTF-8 string.
    pub(crate) fn str(&mut self, s: &str) {
        self.usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Bounds-checked little-endian reader over an untrusted payload.
/// Every method fails with [`SessionError::Corrupt`] instead of
/// panicking on truncation.
#[derive(Debug)]
pub(crate) struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SessionError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| SessionError::Corrupt("payload truncated".into()))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> Result<u8, SessionError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, SessionError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, SessionError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, SessionError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// A length field about to drive a loop or allocation. Rejecting
    /// lengths beyond the remaining byte count caps what a forged blob
    /// can make the decoder allocate.
    pub(crate) fn len(&mut self) -> Result<usize, SessionError> {
        let v = self.u64()?;
        if v > (self.buf.len() - self.pos) as u64 {
            return Err(SessionError::Corrupt(format!(
                "length {v} exceeds the {} bytes remaining",
                self.buf.len() - self.pos
            )));
        }
        Ok(v as usize)
    }

    /// Length-prefixed UTF-8 string.
    pub(crate) fn string(&mut self) -> Result<String, SessionError> {
        let n = self.len()?;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| SessionError::Corrupt("string field is not UTF-8".into()))
    }

    /// Demands the payload was consumed exactly.
    pub(crate) fn finish(&self) -> Result<(), SessionError> {
        if self.pos != self.buf.len() {
            return Err(SessionError::Corrupt(format!(
                "{} trailing bytes after the payload",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Frames a payload into a complete blob: header, payload, checksum.
pub(crate) fn seal(fingerprint: u64, mode: u8, payload: Writer) -> SessionState {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.buf.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&SESSION_VERSION.to_le_bytes());
    out.extend_from_slice(&fingerprint.to_le_bytes());
    out.push(mode);
    out.extend_from_slice(&payload.buf);
    let sum = fnv64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    SessionState { bytes: out }
}

/// Opens a blob: checksum first (so corruption is reported as such
/// regardless of which field the flipped bit landed in), then version,
/// then spec fingerprint. Returns the mode tag and a reader positioned
/// at the payload.
pub(crate) fn open(
    state: &SessionState,
    expected_fingerprint: u64,
) -> Result<(u8, Reader<'_>), SessionError> {
    let bytes = &state.bytes;
    if bytes.len() < HEADER_LEN + 8 {
        return Err(SessionError::Corrupt(format!(
            "blob is {} bytes, shorter than the {}-byte envelope",
            bytes.len(),
            HEADER_LEN + 8
        )));
    }
    let (body, sum_bytes) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(sum_bytes.try_into().unwrap());
    if fnv64(body) != stored {
        return Err(SessionError::Corrupt("checksum mismatch".into()));
    }
    if body[..4] != MAGIC {
        return Err(SessionError::Corrupt("bad magic".into()));
    }
    let version = u16::from_le_bytes(body[4..6].try_into().unwrap());
    if version != SESSION_VERSION {
        return Err(SessionError::Version {
            found: version,
            expected: SESSION_VERSION,
        });
    }
    let found = u64::from_le_bytes(body[6..14].try_into().unwrap());
    if found != expected_fingerprint {
        return Err(SessionError::SpecMismatch {
            found,
            expected: expected_fingerprint,
        });
    }
    let mode = body[14];
    Ok((
        mode,
        Reader {
            buf: &body[HEADER_LEN..],
            pos: 0,
        },
    ))
}

/// Encodes a token-level string: length + one `u16` symbol index each.
pub(crate) fn write_gstring(w: &mut Writer, g: &GString) {
    w.usize(g.len());
    for sym in g.iter() {
        w.u16(sym.index() as u16);
    }
}

/// Decodes a token-level string. Symbol indices are *not* checked
/// against an alphabet here — the caller validates them against the
/// pipeline it is resuming into.
pub(crate) fn read_gstring(r: &mut Reader<'_>) -> Result<GString, SessionError> {
    let n = r.len()?;
    let mut g = GString::with_capacity(n);
    for _ in 0..n {
        g.push(Symbol::from_index(r.u16()? as usize));
    }
    Ok(g)
}

/// Tree node tags of the wire format.
const TAG_CHAR: u8 = 0;
const TAG_UNIT: u8 = 1;
const TAG_PAIR: u8 = 2;
const TAG_INJ: u8 = 3;
const TAG_TUPLE: u8 = 4;
const TAG_TOP: u8 = 5;
const TAG_ROLL: u8 = 6;

/// Encodes a parse tree pre-order, iteratively — parked derivation
/// stacks can hold trees whose depth is the input length, so recursion
/// here would turn a long session into a stack overflow.
pub(crate) fn write_tree(w: &mut Writer, tree: &ParseTree) {
    let mut stack = vec![tree];
    while let Some(t) = stack.pop() {
        match t {
            ParseTree::Char(s) => {
                w.u8(TAG_CHAR);
                w.u16(s.index() as u16);
            }
            ParseTree::Unit => w.u8(TAG_UNIT),
            ParseTree::Pair(l, r) => {
                w.u8(TAG_PAIR);
                stack.push(r);
                stack.push(l);
            }
            ParseTree::Inj { index, tree } => {
                w.u8(TAG_INJ);
                w.usize(*index);
                stack.push(tree);
            }
            ParseTree::Tuple(parts) => {
                w.u8(TAG_TUPLE);
                w.usize(parts.len());
                for p in parts.iter().rev() {
                    stack.push(p);
                }
            }
            ParseTree::Top(g) => {
                w.u8(TAG_TOP);
                write_gstring(w, g);
            }
            ParseTree::Roll(inner) => {
                w.u8(TAG_ROLL);
                stack.push(inner);
            }
        }
    }
}

/// A pending parent during iterative tree decoding.
enum Frame {
    /// A pair waiting for its left child.
    PairLeft,
    /// A pair holding its left child, waiting for the right.
    PairRight(ParseTree),
    /// An injection waiting for its child.
    Inj(usize),
    /// A tuple collecting `len` children.
    Tuple { len: usize, parts: Vec<ParseTree> },
    /// A roll waiting for its child.
    Roll,
}

/// Decodes one parse tree, iteratively (see [`write_tree`]).
pub(crate) fn read_tree(r: &mut Reader<'_>) -> Result<ParseTree, SessionError> {
    let mut frames: Vec<Frame> = Vec::new();
    loop {
        let mut done = match r.u8()? {
            TAG_CHAR => Some(ParseTree::Char(Symbol::from_index(r.u16()? as usize))),
            TAG_UNIT => Some(ParseTree::Unit),
            TAG_PAIR => {
                frames.push(Frame::PairLeft);
                None
            }
            TAG_INJ => {
                frames.push(Frame::Inj(r.u64()? as usize));
                None
            }
            TAG_TUPLE => {
                let len = r.len()?;
                if len == 0 {
                    Some(ParseTree::Tuple(Vec::new()))
                } else {
                    frames.push(Frame::Tuple {
                        len,
                        parts: Vec::new(),
                    });
                    None
                }
            }
            TAG_TOP => Some(ParseTree::Top(read_gstring(r)?)),
            TAG_ROLL => {
                frames.push(Frame::Roll);
                None
            }
            t => return Err(SessionError::Corrupt(format!("unknown tree tag {t}"))),
        };
        // Bubble the completed subtree up through the waiting parents.
        while let Some(t) = done.take() {
            match frames.pop() {
                None => return Ok(t),
                Some(Frame::PairLeft) => {
                    frames.push(Frame::PairRight(t));
                    break;
                }
                Some(Frame::PairRight(l)) => done = Some(ParseTree::pair(l, t)),
                Some(Frame::Inj(index)) => done = Some(ParseTree::inj(index, t)),
                Some(Frame::Tuple { len, mut parts }) => {
                    parts.push(t);
                    if parts.len() == len {
                        done = Some(ParseTree::Tuple(parts));
                    } else {
                        frames.push(Frame::Tuple { len, parts });
                        break;
                    }
                }
                Some(Frame::Roll) => done = Some(ParseTree::Roll(Box::new(t))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: usize) -> Symbol {
        Symbol::from_index(i)
    }

    fn sample_tree() -> ParseTree {
        ParseTree::roll(ParseTree::inj(
            2,
            ParseTree::pair(
                ParseTree::Char(sym(1)),
                ParseTree::Tuple(vec![
                    ParseTree::Unit,
                    ParseTree::Top([sym(0), sym(3)].into_iter().collect()),
                    ParseTree::roll(ParseTree::Char(sym(7))),
                ]),
            ),
        ))
    }

    #[test]
    fn tree_codec_round_trips() {
        let tree = sample_tree();
        let mut w = Writer::new();
        write_tree(&mut w, &tree);
        let state = seal(42, 9, w);
        let (mode, mut r) = open(&state, 42).unwrap();
        assert_eq!(mode, 9);
        let back = read_tree(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(back, tree);
    }

    #[test]
    fn deep_trees_do_not_overflow_the_codec() {
        // Depth ~200k of Roll/Pair nesting: fine iteratively, fatal
        // recursively. (Drop is already iterative-safe for ParseTree
        // only if the tree type implements it so; keep the spine on
        // Pair's right so the default drop also stays shallow enough.)
        let mut tree = ParseTree::Unit;
        for _ in 0..200_000 {
            tree = ParseTree::Roll(Box::new(tree));
        }
        let mut w = Writer::new();
        write_tree(&mut w, &tree);
        let state = seal(0, 0, w);
        let (_, mut r) = open(&state, 0).unwrap();
        let back = read_tree(&mut r).unwrap();
        // Compare (and drop) the towers iteratively as well — derived
        // `PartialEq` and `Drop` recurse, and 200k frames would blow the
        // test thread's stack just as surely as a recursive codec.
        let (mut a, mut b, mut depth) = (tree, back, 0usize);
        loop {
            match (a, b) {
                (ParseTree::Roll(x), ParseTree::Roll(y)) => {
                    a = *x;
                    b = *y;
                    depth += 1;
                }
                (ParseTree::Unit, ParseTree::Unit) => break,
                (x, y) => panic!("towers diverge at depth {depth}: {x:?} vs {y:?}"),
            }
        }
        assert_eq!(depth, 200_000);
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut w = Writer::new();
        write_gstring(&mut w, &[sym(0), sym(1), sym(2)].into_iter().collect());
        let state = seal(7, 1, w);
        let bytes = state.as_bytes().to_vec();
        for bit in 0..bytes.len() * 8 {
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            let flipped = SessionState::from_bytes(bad);
            assert!(
                matches!(open(&flipped, 7), Err(SessionError::Corrupt(_))),
                "bit {bit} slipped through"
            );
        }
    }

    #[test]
    fn truncation_and_extension_are_corrupt() {
        let mut w = Writer::new();
        w.u64(99);
        let state = seal(1, 0, w);
        for cut in 0..state.len() {
            let t = SessionState::from_bytes(&state.as_bytes()[..cut]);
            assert!(
                matches!(open(&t, 1), Err(SessionError::Corrupt(_))),
                "{cut}"
            );
        }
        let mut longer = state.as_bytes().to_vec();
        longer.push(0);
        let longer = SessionState::from_bytes(longer);
        assert!(matches!(open(&longer, 1), Err(SessionError::Corrupt(_))));
    }

    #[test]
    fn version_and_fingerprint_mismatches_are_structured() {
        // Re-frame a valid payload under a bumped version: the checksum
        // is recomputed (this is not corruption, it is incompatibility).
        let state = seal(5, 0, Writer::new());
        let mut bytes = state.into_bytes();
        bytes.truncate(bytes.len() - 8);
        bytes[4..6].copy_from_slice(&(SESSION_VERSION + 1).to_le_bytes());
        let sum = fnv64(&bytes).to_le_bytes();
        bytes.extend_from_slice(&sum);
        match open(&SessionState::from_bytes(bytes), 5) {
            Err(SessionError::Version { found, expected }) => {
                assert_eq!(found, SESSION_VERSION + 1);
                assert_eq!(expected, SESSION_VERSION);
            }
            other => panic!("expected a version error, got {other:?}"),
        }
        match open(&seal(5, 0, Writer::new()), 6) {
            Err(SessionError::SpecMismatch { found, expected }) => {
                assert_eq!((found, expected), (5, 6));
            }
            other => panic!("expected a spec mismatch, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_fields_are_rejected_not_allocated() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // a "length" no payload could back
        let state = seal(0, 0, w);
        let (_, mut r) = open(&state, 0).unwrap();
        assert!(matches!(r.len(), Err(SessionError::Corrupt(_))));
        let (_, mut r2) = open(&state, 0).unwrap();
        assert!(matches!(
            read_gstring(&mut r2),
            Err(SessionError::Corrupt(_))
        ));
    }
}
