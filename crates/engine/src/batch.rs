//! Batch parsing: fan a slice of inputs out over scoped worker threads.
//!
//! The pipeline is compiled once and shared by reference — workers never
//! clone grammars or transformers, they only walk them. Inputs are split
//! into contiguous chunks (one per worker) so reports reassemble in input
//! order without any synchronization beyond the scope join.

use std::sync::Arc;
use std::time::{Duration, Instant};

use lambek_core::alphabet::GString;
use lambek_core::theory::parser::ParseOutcome;
use lambek_core::transform::TransformError;
use lambek_lex::Span;
use lambek_obs::{Recorder, Stage, Trace};

use crate::pipeline::{CompiledPipeline, StrOutcome};

/// Per-batch observability context the engine threads into each
/// request: the engine's metrics to count into, the batch epoch every
/// trace span is measured against, and the batch-level cache-lookup /
/// compile spans stamped into each request's trace. The engine-less
/// [`parse_batch`] / [`parse_batch_str`] baselines pass `None`.
#[derive(Debug, Clone)]
pub(crate) struct ObsCtx {
    pub(crate) metrics: Arc<crate::Metrics>,
    pub(crate) label: String,
    /// The instant the batch entrance was called — every span offset
    /// and trace total is measured from here.
    pub(crate) epoch: Instant,
    /// Duration of the (batch-shared) pipeline-cache probe.
    pub(crate) cache_lookup: Duration,
    /// Duration of the compilation, when the probe missed.
    pub(crate) compile: Option<Duration>,
    /// Offset from the epoch at which the requests were enqueued — the
    /// start of each request's queue-wait span.
    pub(crate) enqueue: Duration,
}

impl ObsCtx {
    /// Opens a request's trace with the spans known before parsing:
    /// the shared cache probe, the compile (if one ran), and this
    /// request's queue wait ending at `pickup`.
    fn begin_trace(&self, index: usize, input_bytes: usize, pickup: Duration) -> Trace {
        let mut t = Trace::new(&self.label, index, input_bytes);
        t.record(Stage::Cache, Duration::ZERO, self.cache_lookup);
        if let Some(c) = self.compile {
            t.record(Stage::Compile, self.cache_lookup, c);
        }
        t.record(
            Stage::Queue,
            self.enqueue,
            pickup.saturating_sub(self.enqueue),
        );
        t
    }

    /// Completes a trace (stamps the total, retains it in the engine's
    /// ring) and hands it back for the report.
    fn finish_trace(&self, mut t: Trace) -> Trace {
        t.total = self.epoch.elapsed();
        self.metrics.traces.push(t.clone());
        t
    }
}

/// What happened to one input of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportOutcome {
    /// The input is in the grammar; the verified parse tree had
    /// `tree_size` constructors.
    Accepted {
        /// Constructor count of the parse tree.
        tree_size: usize,
    },
    /// The input is not in the grammar; the rejection witness (a parse of
    /// the negative grammar) had `witness_size` constructors.
    Rejected {
        /// Constructor count of the rejection witness.
        witness_size: usize,
    },
    /// The pipeline failed on this input (e.g. it exceeds a truncation
    /// bound); the message is the transformer error.
    Failed(String),
    /// The input was over the batch's per-request token budget
    /// ([`RequestLimits::token_budget`]) and was never parsed.
    BudgetExceeded {
        /// The budget the request was admitted under.
        budget: usize,
        /// The input's actual size (symbols, or bytes for raw text).
        required: usize,
    },
    /// The request's wall-clock deadline ([`RequestLimits::deadline`])
    /// had already passed when a worker picked it up; it was never
    /// parsed. Deadlines are checked at request granularity — an
    /// in-flight parse is not interrupted.
    DeadlineExceeded,
}

impl ReportOutcome {
    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, ReportOutcome::Accepted { .. })
    }

    /// `true` when the request was shed by an admission limit
    /// (budget or deadline) rather than parsed.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            ReportOutcome::BudgetExceeded { .. } | ReportOutcome::DeadlineExceeded
        )
    }
}

/// Per-request admission limits for a batch (see
/// [`crate::Engine::parse_many_with`]). Both default to "unlimited";
/// violations surface as structured report outcomes
/// ([`ReportOutcome::BudgetExceeded`] /
/// [`ReportOutcome::DeadlineExceeded`]), never as panics or `Err`s.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RequestLimits {
    /// Maximum admissible input size per request: symbols for
    /// [`crate::Engine::parse_many`] batches, raw bytes for
    /// [`crate::Engine::parse_many_str`] batches (for lexed pipelines
    /// the byte length bounds the token count from above, so this is a
    /// sound pre-lex admission check).
    pub token_budget: Option<usize>,
    /// Latest instant at which a request may still *start* parsing.
    /// Checked when a worker picks the request up; a parse already in
    /// flight runs to completion (the drivers are not interruptible —
    /// that is what keeps their certification obligations simple).
    pub deadline: Option<Instant>,
}

impl RequestLimits {
    /// No limits (the default).
    pub fn none() -> RequestLimits {
        RequestLimits::default()
    }

    /// Checks admission for an input of `size` units; `None` means
    /// admitted, `Some` is the shed outcome to report.
    fn admit(&self, size: usize) -> Option<ReportOutcome> {
        if let Some(budget) = self.token_budget {
            if size > budget {
                return Some(ReportOutcome::BudgetExceeded {
                    budget,
                    required: size,
                });
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Some(ReportOutcome::DeadlineExceeded);
            }
        }
        None
    }
}

/// The structured result of parsing one input of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReport {
    /// Index of the input in the batch slice.
    pub index: usize,
    /// Length of the input string.
    pub input_len: usize,
    /// Outcome of the verified parse.
    pub outcome: ReportOutcome,
    /// Whether the returned tree's yield equals the input — the
    /// intrinsic-verification check, re-asserted per request. Always
    /// `true` for a correct pipeline; `false` for failed inputs.
    pub yield_ok: bool,
    /// Wall-clock time spent parsing this input.
    pub duration: Duration,
    /// Per-request stage trace, when the serving engine was built with
    /// [`crate::ObsConfig::tracing`]; `None` otherwise (including on
    /// the engine-less [`parse_batch`] baseline). For symbolic inputs
    /// the trace's `input_bytes` counts symbols.
    pub trace: Option<Trace>,
}

/// What happened to one raw-text input of a [`parse_batch_str`] batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrReportOutcome {
    /// Lexed (for lexed pipelines) and parsed; both layers certified.
    Accepted {
        /// Constructor count of the parse tree.
        tree_size: usize,
        /// Number of yield tokens (0 for non-lexed pipelines).
        tokens: usize,
    },
    /// Lexed but not parsed; the span points into the raw input.
    RejectedParse {
        /// Byte span of the offending token (see
        /// [`StrOutcome::RejectParse`]).
        span: Span,
        /// The driver's rejection report.
        message: String,
    },
    /// Did not lex.
    RejectedLex {
        /// Byte offset of the lexical error.
        at: usize,
        /// The lexer's error message.
        message: String,
    },
    /// The pipeline failed on this input (transformer contract error).
    Failed(String),
    /// Over the per-request token budget (bytes of raw text); never
    /// parsed. See [`ReportOutcome::BudgetExceeded`].
    BudgetExceeded {
        /// The budget the request was admitted under.
        budget: usize,
        /// The input's byte length.
        required: usize,
    },
    /// The deadline had passed at pickup; never parsed. See
    /// [`ReportOutcome::DeadlineExceeded`].
    DeadlineExceeded,
}

impl StrReportOutcome {
    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, StrReportOutcome::Accepted { .. })
    }

    /// `true` when the request was shed by an admission limit.
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            StrReportOutcome::BudgetExceeded { .. } | StrReportOutcome::DeadlineExceeded
        )
    }
}

/// The structured result of parsing one raw-text input of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StrParseReport {
    /// Index of the input in the batch slice.
    pub index: usize,
    /// Length of the input in bytes.
    pub input_bytes: usize,
    /// Outcome of the lex + parse run.
    pub outcome: StrReportOutcome,
    /// Wall-clock time spent on this input.
    pub duration: Duration,
    /// Per-request stage trace, when the serving engine was built with
    /// [`crate::ObsConfig::tracing`]; `None` otherwise (including on
    /// the engine-less [`parse_batch_str`] baseline).
    pub trace: Option<Trace>,
}

/// [`parse_one_str`] behind an admission check: shed requests carry a
/// structured outcome and a near-zero duration. `obs` is the engine's
/// per-batch context (`None` from the engine-less baselines).
pub(crate) fn parse_one_str_limited(
    pipeline: &CompiledPipeline,
    index: usize,
    input: &str,
    limits: &RequestLimits,
    obs: Option<&ObsCtx>,
) -> StrParseReport {
    let pickup = obs.map(|o| o.epoch.elapsed());
    if let Some(o) = obs {
        o.metrics.requests.inc();
    }
    if let Some(shed) = limits.admit(input.len()) {
        let outcome = match shed {
            ReportOutcome::BudgetExceeded { budget, required } => {
                StrReportOutcome::BudgetExceeded { budget, required }
            }
            _ => StrReportOutcome::DeadlineExceeded,
        };
        // A shed request's trace is just its queue wait: it was never
        // parsed, so there are no pipeline stages to time.
        let trace = match obs {
            Some(o) if o.metrics.tracing => {
                let t = o.begin_trace(index, input.len(), pickup.unwrap_or_default());
                Some(o.finish_trace(t))
            }
            _ => None,
        };
        return StrParseReport {
            index,
            input_bytes: input.len(),
            outcome,
            duration: Duration::ZERO,
            trace,
        };
    }
    let report = match obs {
        Some(o) if o.metrics.tracing => {
            parse_one_str_traced(pipeline, index, input, o, pickup.unwrap_or_default())
        }
        _ => parse_one_str(pipeline, index, input),
    };
    if let Some(o) = obs {
        if let StrReportOutcome::Accepted { tokens, .. } = report.outcome {
            o.metrics.tokens.add(tokens as u64);
        }
    }
    report
}

/// Maps a pipeline's raw-text result to the report outcome. Shared by
/// the fused and the traced (staged) request paths, which by
/// construction produce the same [`StrOutcome`] on every input.
fn str_outcome(
    pipeline: &CompiledPipeline,
    result: Result<StrOutcome, TransformError>,
) -> StrReportOutcome {
    match result {
        Ok(StrOutcome::Accept { tree, tokens }) => StrReportOutcome::Accepted {
            tree_size: tree.size(),
            // The fused lexed path never materializes the token
            // stream; its yield count is the tree's yield length
            // (identical by the intrinsic contract — the tree's yield
            // *is* the token string). Non-lexed pipelines stay at 0.
            tokens: match tokens {
                Some(t) => t.yield_string().len(),
                None if pipeline.lexed_backend().is_some() => tree.flatten().len(),
                None => 0,
            },
        },
        Ok(StrOutcome::RejectParse { span, message, .. }) => {
            StrReportOutcome::RejectedParse { span, message }
        }
        Ok(StrOutcome::RejectLex(e)) => StrReportOutcome::RejectedLex {
            at: e.at,
            message: e.to_string(),
        },
        Err(e) => StrReportOutcome::Failed(format!("{e}")),
    }
}

fn parse_one_str(pipeline: &CompiledPipeline, index: usize, input: &str) -> StrParseReport {
    let start = Instant::now();
    let outcome = str_outcome(pipeline, pipeline.parse_str(input));
    StrParseReport {
        index,
        input_bytes: input.len(),
        outcome,
        duration: start.elapsed(),
        trace: None,
    }
}

/// [`parse_one_str`] with stage tracing: runs the pipeline's staged
/// traced path (scan / certify / parse timed separately) and attaches
/// the completed trace to the report.
fn parse_one_str_traced(
    pipeline: &CompiledPipeline,
    index: usize,
    input: &str,
    obs: &ObsCtx,
    pickup: Duration,
) -> StrParseReport {
    let mut trace = obs.begin_trace(index, input.len(), pickup);
    let start = Instant::now();
    let result = pipeline.parse_str_traced(input, obs.epoch, &mut trace);
    let duration = start.elapsed();
    let f0 = obs.epoch.elapsed();
    let outcome = str_outcome(pipeline, result);
    trace.record(Stage::Finish, f0, obs.epoch.elapsed().saturating_sub(f0));
    let trace = obs.finish_trace(trace);
    StrParseReport {
        index,
        input_bytes: input.len(),
        outcome,
        duration,
        trace: Some(trace),
    }
}

/// The shared worker fan-out both batch entrances ride: `0` workers =
/// one per available core, `1` = sequential in the calling thread;
/// inputs split into contiguous chunks (remainder spread over the
/// first few workers) so results reassemble in input order with no
/// synchronization beyond the scope join.
fn fan_out<T: Sync, R: Send>(
    inputs: &[T],
    workers: usize,
    f: impl Fn(usize, &T) -> R + Sync,
) -> Vec<R> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let workers = workers.clamp(1, inputs.len().max(1));
    if workers == 1 {
        return inputs.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let base = inputs.len() / workers;
    let extra = inputs.len() % workers;
    let mut results = Vec::with_capacity(inputs.len());
    std::thread::scope(|scope| {
        let f = &f;
        let mut handles = Vec::with_capacity(workers);
        let mut offset = 0;
        for k in 0..workers {
            let len = base + usize::from(k < extra);
            let chunk = &inputs[offset..offset + len];
            let chunk_offset = offset;
            offset += len;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, x)| f(chunk_offset + i, x))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            results.extend(h.join().expect("batch worker panicked"));
        }
    });
    results
}

/// Parses every raw-text input against a shared compiled pipeline, with
/// the same worker-fan-out contract as [`parse_batch`] (`1` =
/// sequential, `0` = one worker per core; reports in input order).
pub fn parse_batch_str(
    pipeline: &CompiledPipeline,
    inputs: &[&str],
    workers: usize,
) -> Vec<StrParseReport> {
    fan_out(inputs, workers, |i, s| parse_one_str(pipeline, i, s))
}

/// [`parse_one`] behind an admission check. A shed request's
/// `yield_ok` is vacuously `true`: no tree was produced, so no yield
/// obligation was violated. `obs` is the engine's per-batch context
/// (`None` from the engine-less baselines).
pub(crate) fn parse_one_limited(
    pipeline: &CompiledPipeline,
    index: usize,
    w: &GString,
    limits: &RequestLimits,
    obs: Option<&ObsCtx>,
) -> ParseReport {
    let pickup = obs.map(|o| o.epoch.elapsed());
    if let Some(o) = obs {
        o.metrics.requests.inc();
    }
    if let Some(outcome) = limits.admit(w.len()) {
        let trace = match obs {
            Some(o) if o.metrics.tracing => {
                let t = o.begin_trace(index, w.len(), pickup.unwrap_or_default());
                Some(o.finish_trace(t))
            }
            _ => None,
        };
        return ParseReport {
            index,
            input_len: w.len(),
            outcome,
            yield_ok: true,
            duration: Duration::ZERO,
            trace,
        };
    }
    match obs {
        Some(o) if o.metrics.tracing => {
            parse_one_traced(pipeline, index, w, o, pickup.unwrap_or_default())
        }
        _ => parse_one(pipeline, index, w),
    }
}

/// Maps a pipeline's symbolic parse result to (outcome, yield check).
fn sym_outcome(w: &GString, result: Result<ParseOutcome, TransformError>) -> (ReportOutcome, bool) {
    match result {
        Ok(ParseOutcome::Accept(t)) => (
            ReportOutcome::Accepted {
                tree_size: t.size(),
            },
            &t.flatten() == w,
        ),
        Ok(ParseOutcome::Reject(t)) => (
            ReportOutcome::Rejected {
                witness_size: t.size(),
            },
            &t.flatten() == w,
        ),
        Err(e) => (ReportOutcome::Failed(format!("{e}")), false),
    }
}

fn parse_one(pipeline: &CompiledPipeline, index: usize, w: &GString) -> ParseReport {
    let start = Instant::now();
    let (outcome, yield_ok) = sym_outcome(w, pipeline.parse(w));
    ParseReport {
        index,
        input_len: w.len(),
        outcome,
        yield_ok,
        duration: start.elapsed(),
        trace: None,
    }
}

/// [`parse_one`] with stage tracing: symbolic inputs have no lex
/// stages, so the trace is queue/cache(/compile) plus one parse span
/// and the finish span.
fn parse_one_traced(
    pipeline: &CompiledPipeline,
    index: usize,
    w: &GString,
    obs: &ObsCtx,
    pickup: Duration,
) -> ParseReport {
    let mut trace = obs.begin_trace(index, w.len(), pickup);
    let start = Instant::now();
    let p0 = obs.epoch.elapsed();
    let result = pipeline.parse(w);
    trace.record(Stage::Parse, p0, obs.epoch.elapsed().saturating_sub(p0));
    let duration = start.elapsed();
    let f0 = obs.epoch.elapsed();
    let (outcome, yield_ok) = sym_outcome(w, result);
    trace.record(Stage::Finish, f0, obs.epoch.elapsed().saturating_sub(f0));
    let trace = obs.finish_trace(trace);
    ParseReport {
        index,
        input_len: w.len(),
        outcome,
        yield_ok,
        duration,
        trace: Some(trace),
    }
}

/// Parses every input against a shared compiled pipeline, using up to
/// `workers` scoped threads (`1` means sequential in the calling thread;
/// `0` means one worker per available core). Reports are returned in
/// input order.
///
/// Worker threads only help when cores are available — on a single-core
/// host the fan-out degrades gracefully to sequential-plus-overhead.
pub fn parse_batch(
    pipeline: &CompiledPipeline,
    inputs: &[GString],
    workers: usize,
) -> Vec<ParseReport> {
    fan_out(inputs, workers, |i, w| parse_one(pipeline, i, w))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineSpec;
    use lambek_core::alphabet::Alphabet;

    #[test]
    fn reports_come_back_in_input_order() {
        let p = PipelineSpec::dyck(12).compile().unwrap();
        let sigma = p.alphabet().clone();
        let inputs: Vec<GString> = ["", "()", ")(", "(())", "(()", "()()()"]
            .iter()
            .map(|s| sigma.parse_str(s).unwrap())
            .collect();
        let reports = parse_batch(&p, &inputs, 3);
        assert_eq!(reports.len(), inputs.len());
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.input_len, inputs[i].len());
        }
        let accepts: Vec<bool> = reports.iter().map(|r| r.outcome.is_accept()).collect();
        assert_eq!(accepts, vec![true, true, false, true, false, true]);
        assert!(reports.iter().all(|r| r.yield_ok));
    }

    #[test]
    fn truncation_overflow_is_a_failed_report_not_a_panic() {
        let p = PipelineSpec::expr(2).compile().unwrap();
        let sigma = Alphabet::arith();
        // n+n has length 3 > the bound 2.
        let w = {
            let n = sigma.symbol("NUM").unwrap();
            let plus = sigma.symbol("+").unwrap();
            GString::from_symbols(vec![n, plus, n])
        };
        let reports = parse_batch(&p, &[w], 1);
        assert!(matches!(reports[0].outcome, ReportOutcome::Failed(_)));
        assert!(!reports[0].yield_ok);
    }

    #[test]
    fn str_batches_report_all_three_rejection_shapes() {
        let p = PipelineSpec::json_lexed().compile().unwrap();
        let inputs = [
            "{\"a\": 1}",
            "[true, null, {\"x\": []}]",
            "{\"a\" 1}", // parse error at the NUM token
            "{?}",       // lex error at '?'
            "",          // lexes to zero tokens, rejected by the grammar
        ];
        let reports = parse_batch_str(&p, &inputs, 2);
        assert_eq!(reports.len(), inputs.len());
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.input_bytes, inputs[i].len());
        }
        assert!(matches!(
            reports[0].outcome,
            StrReportOutcome::Accepted { tokens: 5, .. }
        ));
        assert!(reports[1].outcome.is_accept());
        match &reports[2].outcome {
            StrReportOutcome::RejectedParse { span, .. } => {
                assert_eq!((span.start, span.end), (5, 6));
            }
            other => panic!("expected a parse rejection, got {other:?}"),
        }
        match &reports[3].outcome {
            StrReportOutcome::RejectedLex { at, message } => {
                assert_eq!(*at, 1);
                assert!(message.contains("byte 1"), "{message}");
            }
            other => panic!("expected a lex rejection, got {other:?}"),
        }
        assert!(!reports[4].outcome.is_accept());
    }

    #[test]
    fn str_batches_work_for_char_pipelines_too() {
        let p = PipelineSpec::dyck_cfg().compile().unwrap();
        let reports = parse_batch_str(&p, &["()", ")(", "(z)"], 1);
        assert!(reports[0].outcome.is_accept());
        assert!(matches!(
            reports[1].outcome,
            StrReportOutcome::RejectedParse { .. }
        ));
        assert!(matches!(
            reports[2].outcome,
            StrReportOutcome::RejectedLex { at: 1, .. }
        ));
    }

    #[test]
    fn limits_shed_structured_outcomes_not_panics() {
        let p = PipelineSpec::dyck(12).compile().unwrap();
        let sigma = p.alphabet().clone();
        let w = sigma.parse_str("(())()").unwrap();
        let over = RequestLimits {
            token_budget: Some(3),
            deadline: None,
        };
        let r = parse_one_limited(&p, 0, &w, &over, None);
        assert_eq!(
            r.outcome,
            ReportOutcome::BudgetExceeded {
                budget: 3,
                required: 6
            }
        );
        assert!(r.outcome.is_shed() && !r.outcome.is_accept());
        assert!(r.yield_ok, "shed requests carry no yield obligation");

        let expired = RequestLimits {
            token_budget: None,
            deadline: Some(Instant::now() - Duration::from_millis(1)),
        };
        let r = parse_one_limited(&p, 1, &w, &expired, None);
        assert_eq!(r.outcome, ReportOutcome::DeadlineExceeded);

        let roomy = RequestLimits {
            token_budget: Some(6),
            deadline: Some(Instant::now() + Duration::from_secs(3600)),
        };
        let r = parse_one_limited(&p, 2, &w, &roomy, None);
        assert!(r.outcome.is_accept(), "in-budget requests parse normally");
    }

    #[test]
    fn str_limits_shed_on_byte_length() {
        let p = PipelineSpec::json_lexed().compile().unwrap();
        let limits = RequestLimits {
            token_budget: Some(4),
            deadline: None,
        };
        let r = parse_one_str_limited(&p, 0, "[1, 2, 3]", &limits, None);
        assert_eq!(
            r.outcome,
            StrReportOutcome::BudgetExceeded {
                budget: 4,
                required: 9
            }
        );
        let r = parse_one_str_limited(&p, 1, "[1]", &limits, None);
        assert!(r.outcome.is_accept());
    }

    #[test]
    fn more_workers_than_inputs_is_fine() {
        let p = PipelineSpec::dyck(4).compile().unwrap();
        let sigma = p.alphabet().clone();
        let inputs = vec![sigma.parse_str("()").unwrap()];
        let reports = parse_batch(&p, &inputs, 64);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].outcome.is_accept());
        assert!(parse_batch(&p, &[], 8).is_empty());
    }
}
