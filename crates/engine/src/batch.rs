//! Batch parsing: fan a slice of inputs out over scoped worker threads.
//!
//! The pipeline is compiled once and shared by reference — workers never
//! clone grammars or transformers, they only walk them. Inputs are split
//! into contiguous chunks (one per worker) so reports reassemble in input
//! order without any synchronization beyond the scope join.

use std::time::{Duration, Instant};

use lambek_core::alphabet::GString;
use lambek_core::theory::parser::ParseOutcome;

use crate::pipeline::CompiledPipeline;

/// What happened to one input of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReportOutcome {
    /// The input is in the grammar; the verified parse tree had
    /// `tree_size` constructors.
    Accepted {
        /// Constructor count of the parse tree.
        tree_size: usize,
    },
    /// The input is not in the grammar; the rejection witness (a parse of
    /// the negative grammar) had `witness_size` constructors.
    Rejected {
        /// Constructor count of the rejection witness.
        witness_size: usize,
    },
    /// The pipeline failed on this input (e.g. it exceeds a truncation
    /// bound); the message is the transformer error.
    Failed(String),
}

impl ReportOutcome {
    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, ReportOutcome::Accepted { .. })
    }
}

/// The structured result of parsing one input of a batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseReport {
    /// Index of the input in the batch slice.
    pub index: usize,
    /// Length of the input string.
    pub input_len: usize,
    /// Outcome of the verified parse.
    pub outcome: ReportOutcome,
    /// Whether the returned tree's yield equals the input — the
    /// intrinsic-verification check, re-asserted per request. Always
    /// `true` for a correct pipeline; `false` for failed inputs.
    pub yield_ok: bool,
    /// Wall-clock time spent parsing this input.
    pub duration: Duration,
}

fn parse_one(pipeline: &CompiledPipeline, index: usize, w: &GString) -> ParseReport {
    let start = Instant::now();
    let (outcome, yield_ok) = match pipeline.parse(w) {
        Ok(ParseOutcome::Accept(t)) => (
            ReportOutcome::Accepted {
                tree_size: t.size(),
            },
            &t.flatten() == w,
        ),
        Ok(ParseOutcome::Reject(t)) => (
            ReportOutcome::Rejected {
                witness_size: t.size(),
            },
            &t.flatten() == w,
        ),
        Err(e) => (ReportOutcome::Failed(format!("{e}")), false),
    };
    ParseReport {
        index,
        input_len: w.len(),
        outcome,
        yield_ok,
        duration: start.elapsed(),
    }
}

/// Parses every input against a shared compiled pipeline, using up to
/// `workers` scoped threads (`1` means sequential in the calling thread;
/// `0` means one worker per available core). Reports are returned in
/// input order.
///
/// Worker threads only help when cores are available — on a single-core
/// host the fan-out degrades gracefully to sequential-plus-overhead.
pub fn parse_batch(
    pipeline: &CompiledPipeline,
    inputs: &[GString],
    workers: usize,
) -> Vec<ParseReport> {
    let workers = if workers == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        workers
    };
    let workers = workers.clamp(1, inputs.len().max(1));
    if workers == 1 {
        return inputs
            .iter()
            .enumerate()
            .map(|(i, w)| parse_one(pipeline, i, w))
            .collect();
    }
    // Contiguous chunks, remainder spread over the first few workers.
    let base = inputs.len() / workers;
    let extra = inputs.len() % workers;
    let mut reports = Vec::with_capacity(inputs.len());
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        let mut offset = 0;
        for k in 0..workers {
            let len = base + usize::from(k < extra);
            let chunk = &inputs[offset..offset + len];
            let chunk_offset = offset;
            offset += len;
            handles.push(scope.spawn(move || {
                chunk
                    .iter()
                    .enumerate()
                    .map(|(i, w)| parse_one(pipeline, chunk_offset + i, w))
                    .collect::<Vec<_>>()
            }));
        }
        for h in handles {
            reports.extend(h.join().expect("batch worker panicked"));
        }
    });
    reports
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PipelineSpec;
    use lambek_core::alphabet::Alphabet;

    #[test]
    fn reports_come_back_in_input_order() {
        let p = PipelineSpec::dyck(12).compile().unwrap();
        let sigma = p.alphabet().clone();
        let inputs: Vec<GString> = ["", "()", ")(", "(())", "(()", "()()()"]
            .iter()
            .map(|s| sigma.parse_str(s).unwrap())
            .collect();
        let reports = parse_batch(&p, &inputs, 3);
        assert_eq!(reports.len(), inputs.len());
        for (i, r) in reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.input_len, inputs[i].len());
        }
        let accepts: Vec<bool> = reports.iter().map(|r| r.outcome.is_accept()).collect();
        assert_eq!(accepts, vec![true, true, false, true, false, true]);
        assert!(reports.iter().all(|r| r.yield_ok));
    }

    #[test]
    fn truncation_overflow_is_a_failed_report_not_a_panic() {
        let p = PipelineSpec::expr(2).compile().unwrap();
        let sigma = Alphabet::arith();
        // n+n has length 3 > the bound 2.
        let w = {
            let n = sigma.symbol("NUM").unwrap();
            let plus = sigma.symbol("+").unwrap();
            GString::from_symbols(vec![n, plus, n])
        };
        let reports = parse_batch(&p, &[w], 1);
        assert!(matches!(reports[0].outcome, ReportOutcome::Failed(_)));
        assert!(!reports[0].yield_ok);
    }

    #[test]
    fn more_workers_than_inputs_is_fine() {
        let p = PipelineSpec::dyck(4).compile().unwrap();
        let sigma = p.alphabet().clone();
        let inputs = vec![sigma.parse_str("()").unwrap()];
        let reports = parse_batch(&p, &inputs, 64);
        assert_eq!(reports.len(), 1);
        assert!(reports[0].outcome.is_accept());
        assert!(parse_batch(&p, &[], 8).is_empty());
    }
}
