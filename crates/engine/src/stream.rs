//! Push-mode streaming input for DFA-backed pipelines.
//!
//! A [`StreamParser`] consumes one symbol per [`StreamParser::push`] —
//! each push is a single dense-table transition — while remembering the
//! visited state sequence. Incremental questions are answered from that
//! record: [`StreamParser::would_accept`] is one array probe, and
//! [`StreamParser::trace`] materializes the unique DFA trace *backwards
//! over the recorded states* (the `parseD` construction of Fig. 12)
//! without re-running the automaton. [`StreamParser::finish`] trades
//! that incrementality for the full guarantee: it runs the pipeline's
//! composed verified parser over the accumulated input end-to-end
//! (including re-running the automaton), because intrinsic verification
//! is a property of the whole composed transformer, not of the raw
//! trace.

use std::sync::Arc;

use lambek_automata::nfa::StateId;
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::parser::ParseOutcome;
use lambek_core::transform::TransformError;

use crate::pipeline::CompiledPipeline;
use crate::EngineError;

/// An incremental parser over a shared compiled pipeline.
#[derive(Debug, Clone)]
pub struct StreamParser {
    pipeline: Arc<CompiledPipeline>,
    /// Visited states: `states[i]` is the state before symbol `i`.
    states: Vec<StateId>,
    input: GString,
}

impl StreamParser {
    /// Opens a stream over `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoStreamingBackend`] if the pipeline has no
    /// dense DFA behind it.
    pub fn open(pipeline: Arc<CompiledPipeline>) -> Result<StreamParser, EngineError> {
        let Some(backend) = pipeline.backend() else {
            return Err(EngineError::NoStreamingBackend(pipeline.spec().label()));
        };
        let init = backend.dfa.init();
        Ok(StreamParser {
            pipeline,
            states: vec![init],
            input: GString::new(),
        })
    }

    /// Consumes one symbol: a single dense-table transition.
    pub fn push(&mut self, sym: Symbol) {
        let backend = self.pipeline.backend().expect("checked at open");
        let s = *self.states.last().expect("stream has an initial state");
        self.states.push(backend.dfa.delta(s, sym));
        self.input.push(sym);
    }

    /// Consumes a whole string.
    pub fn push_all(&mut self, w: &GString) {
        for sym in w.iter() {
            self.push(sym);
        }
    }

    /// Number of symbols consumed so far.
    pub fn len(&self) -> usize {
        self.input.len()
    }

    /// `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.input.is_empty()
    }

    /// The DFA state after the symbols consumed so far.
    pub fn state(&self) -> StateId {
        *self.states.last().expect("stream has an initial state")
    }

    /// Whether the input so far would be accepted if the stream ended
    /// here — one array probe, no parsing.
    pub fn would_accept(&self) -> bool {
        self.pipeline
            .backend()
            .expect("checked at open")
            .dfa
            .is_accepting(self.state())
    }

    /// The input consumed so far.
    pub fn input(&self) -> &GString {
        &self.input
    }

    /// The accept bit and the raw DFA trace of the input so far, built
    /// backwards from the recorded state sequence (Fig. 12's `parseD`,
    /// without re-running the automaton).
    pub fn trace(&self) -> (bool, ParseTree) {
        let backend = self.pipeline.backend().expect("checked at open");
        let b = backend.dfa.is_accepting(self.state());
        let mut tree = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
        for (i, sym) in self.input.iter().enumerate().rev() {
            let s = self.states[i];
            let idx = backend.tg.cons_index(&backend.dfa, s, b, sym);
            tree = ParseTree::roll(ParseTree::inj(
                idx,
                ParseTree::pair(ParseTree::Char(sym), tree),
            ));
        }
        (b, tree)
    }

    /// Ends the stream: runs the pipeline's fully verified parser on the
    /// accumulated input, returning the intrinsically checked outcome.
    ///
    /// # Errors
    ///
    /// Propagates transformer errors exactly as
    /// [`CompiledPipeline::parse`] does.
    pub fn finish(self) -> Result<ParseOutcome, TransformError> {
        self.pipeline.parse(&self.input)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, PipelineSpec};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::parse_tree::validate;

    #[test]
    fn streaming_matches_one_shot_parsing() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
        let sigma = Alphabet::abc();
        for s in ["", "b", "aab", "c", "ca", "abab"] {
            let w = sigma.parse_str(s).unwrap();
            let mut stream = engine.stream(&spec).unwrap();
            stream.push_all(&w);
            assert_eq!(stream.len(), w.len());
            let pipeline = engine.get_or_compile(&spec).unwrap();
            assert_eq!(stream.would_accept(), pipeline.accepts(&w), "{s}");
            let outcome = stream.finish().unwrap();
            assert_eq!(outcome.is_accept(), pipeline.accepts(&w), "{s}");
        }
    }

    #[test]
    fn intermediate_accept_bits_track_prefixes() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(16);
        let sigma = Alphabet::parens();
        let w = sigma.parse_str("(())()").unwrap();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.is_empty());
        for (i, sym) in w.iter().enumerate() {
            stream.push(sym);
            let prefix = w.substring(0, i + 1);
            assert_eq!(stream.would_accept(), pipeline.accepts(&prefix), "{i}");
        }
    }

    #[test]
    fn trace_is_a_valid_trace_of_the_pushed_input() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(8);
        let sigma = Alphabet::parens();
        let w = sigma.parse_str("(()())").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        stream.push_all(&w);
        let (b, trace) = stream.trace();
        assert!(b);
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let backend = pipeline.backend().unwrap();
        let g = backend.tg.trace(backend.dfa.init(), b);
        validate(&trace, &g, &w).unwrap();
    }

    #[test]
    fn expr_pipeline_has_no_stream() {
        let engine = Engine::new();
        assert!(matches!(
            engine.stream(&PipelineSpec::expr(4)),
            Err(EngineError::NoStreamingBackend(_))
        ));
    }
}
