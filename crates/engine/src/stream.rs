//! Push-mode streaming input for DFA-backed and LR-backed pipelines.
//!
//! A [`StreamParser`] consumes one symbol per [`StreamParser::push`].
//! Two backends support streaming:
//!
//! * **DFA mode** (regex and Dyck pipelines): each push is a single
//!   dense-table transition; the visited state sequence is remembered,
//!   so [`StreamParser::would_accept`] is one array probe and
//!   [`StreamParser::trace`] materializes the unique DFA trace
//!   *backwards over the recorded states* (the `parseD` construction of
//!   Fig. 12) without re-running the automaton.
//!   [`StreamParser::finish`] trades that incrementality for the full
//!   guarantee: it runs the pipeline's composed verified parser over
//!   the accumulated input end-to-end, because intrinsic verification
//!   is a property of the whole composed transformer.
//! * **LR mode** (CFG pipelines whose grammar compiled conflict-free):
//!   each push shifts one symbol after running the pending reductions —
//!   O(1) amortized over the input via the dense ACTION/GOTO tables —
//!   and the partial parse trees stay on the stream's stack.
//!   [`StreamParser::would_accept`] simulates the end-of-input
//!   reductions over a scratch copy of the state stack;
//!   [`StreamParser::finish`] completes the remaining reductions and
//!   re-validates the finished tree with the core derivation checker
//!   (the certification step), so the streaming path gives exactly the
//!   same intrinsic guarantee as the one-shot path.
//!
//! CFG pipelines that fell back to Earley have no incremental driver
//! and refuse to open a stream.

use std::sync::Arc;

use lambek_automata::nfa::StateId;
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::parser::ParseOutcome;
use lambek_core::transform::TransformError;
use lambek_lr::{LrOutcome, LrStream};

use crate::pipeline::CompiledPipeline;
use crate::EngineError;

/// The backend-specific state of a stream.
#[derive(Debug, Clone)]
enum Mode {
    /// Dense DFA stepping; `states[i]` is the state before symbol `i`.
    Dfa {
        states: Vec<StateId>,
        input: GString,
        /// Co-reachability of every state
        /// ([`lambek_automata::dfa::Dfa::live_states`]), computed once
        /// at open: the viability probe is one index.
        live: Vec<bool>,
    },
    /// Incremental certified LR parsing.
    Lr(LrStream),
}

/// An incremental parser over a shared compiled pipeline.
#[derive(Debug, Clone)]
pub struct StreamParser {
    pipeline: Arc<CompiledPipeline>,
    mode: Mode,
}

impl StreamParser {
    /// Opens a stream over `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoStreamingBackend`] if the pipeline has
    /// neither a dense DFA nor LR tables behind it (the
    /// lookahead-automaton expression pipeline; CFG pipelines on the
    /// Earley fallback).
    pub fn open(pipeline: Arc<CompiledPipeline>) -> Result<StreamParser, EngineError> {
        let mode = if let Some(backend) = pipeline.backend() {
            Mode::Dfa {
                states: vec![backend.dfa.init()],
                input: GString::new(),
                live: backend.dfa.live_states(),
            }
        } else if let Some(lr) = pipeline.cfg_backend().and_then(|b| b.lr()) {
            Mode::Lr(lr.stream())
        } else {
            return Err(EngineError::NoStreamingBackend(pipeline.spec().label()));
        };
        Ok(StreamParser { pipeline, mode })
    }

    /// Consumes one symbol: a single dense-table DFA transition, or one
    /// LR shift plus any reductions it unlocks.
    pub fn push(&mut self, sym: Symbol) {
        match &mut self.mode {
            Mode::Dfa { states, input, .. } => {
                let backend = self.pipeline.backend().expect("checked at open");
                let s = *states.last().expect("stream has an initial state");
                states.push(backend.dfa.delta(s, sym));
                input.push(sym);
            }
            Mode::Lr(stream) => {
                stream.push(sym);
            }
        }
    }

    /// Consumes a whole string.
    pub fn push_all(&mut self, w: &GString) {
        for sym in w.iter() {
            self.push(sym);
        }
    }

    /// Number of symbols consumed so far.
    pub fn len(&self) -> usize {
        self.input().len()
    }

    /// `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.input().is_empty()
    }

    /// The DFA state after the symbols consumed so far — `None` for LR
    /// streams, whose configuration is a state *stack*.
    pub fn state(&self) -> Option<StateId> {
        match &self.mode {
            Mode::Dfa { states, .. } => Some(*states.last().expect("stream has an initial state")),
            Mode::Lr(_) => None,
        }
    }

    /// Whether the input so far would be accepted if the stream ended
    /// here — one array probe in DFA mode; an end-of-input reduction
    /// simulation over a scratch state stack in LR mode. Neither builds
    /// trees or disturbs the stream.
    pub fn would_accept(&self) -> bool {
        match &self.mode {
            Mode::Dfa { states, .. } => {
                let s = *states.last().expect("stream has an initial state");
                self.pipeline
                    .backend()
                    .expect("checked at open")
                    .dfa
                    .is_accepting(s)
            }
            Mode::Lr(stream) => stream.would_accept(),
        }
    }

    /// `true` while the consumed input can still extend to an accepted
    /// sentence. DFA mode answers from the precomputed co-reachability
    /// of the current state (the automata are total, so a dead input
    /// sits in a non-live sink rather than erroring); LR mode flips to
    /// `false` at the first symbol the table has no action for.
    pub fn is_viable(&self) -> bool {
        match &self.mode {
            Mode::Dfa { states, live, .. } => {
                live[*states.last().expect("stream has an initial state")]
            }
            Mode::Lr(stream) => stream.is_viable(),
        }
    }

    /// The input consumed so far.
    pub fn input(&self) -> &GString {
        match &self.mode {
            Mode::Dfa { input, .. } => input,
            Mode::Lr(stream) => stream.input(),
        }
    }

    /// The accept bit and the raw DFA trace of the input so far, built
    /// backwards from the recorded state sequence (Fig. 12's `parseD`,
    /// without re-running the automaton). `None` for LR streams — their
    /// incremental artifact is the partial derivation stack, not a
    /// trace.
    pub fn trace(&self) -> Option<(bool, ParseTree)> {
        let Mode::Dfa { states, input, .. } = &self.mode else {
            return None;
        };
        let backend = self.pipeline.backend().expect("checked at open");
        let b = backend
            .dfa
            .is_accepting(*states.last().expect("stream has an initial state"));
        let mut tree = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
        for (i, sym) in input.iter().enumerate().rev() {
            let s = states[i];
            let idx = backend.tg.cons_index(&backend.dfa, s, b, sym);
            tree = ParseTree::roll(ParseTree::inj(
                idx,
                ParseTree::pair(ParseTree::Char(sym), tree),
            ));
        }
        Some((b, tree))
    }

    /// Ends the stream, returning the intrinsically checked outcome.
    ///
    /// DFA mode re-runs the pipeline's composed verified parser over the
    /// accumulated input; LR mode completes the pending reductions of
    /// the incremental parse and certifies the finished tree against the
    /// grammar and the input — same guarantee, incremental cost.
    ///
    /// # Errors
    ///
    /// Propagates transformer errors exactly as
    /// [`CompiledPipeline::parse`] does.
    pub fn finish(self) -> Result<ParseOutcome, TransformError> {
        match self.mode {
            Mode::Dfa { input, .. } => self.pipeline.parse(&input),
            Mode::Lr(stream) => {
                let input = stream.input().clone();
                match stream.finish().map_err(|e| TransformError::OutputShape {
                    transformer: "certified-lr-stream".to_owned(),
                    cause: e.cause,
                })? {
                    LrOutcome::Accept(tree) => Ok(ParseOutcome::Accept(tree)),
                    // Same rejection convention as the one-shot CFG path:
                    // the ⊤-parse of the input.
                    LrOutcome::Reject(_) => Ok(ParseOutcome::Reject(ParseTree::Top(input))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, PipelineSpec};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::parse_tree::validate;

    #[test]
    fn streaming_matches_one_shot_parsing() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
        let sigma = Alphabet::abc();
        for s in ["", "b", "aab", "c", "ca", "abab"] {
            let w = sigma.parse_str(s).unwrap();
            let mut stream = engine.stream(&spec).unwrap();
            stream.push_all(&w);
            assert_eq!(stream.len(), w.len());
            let pipeline = engine.get_or_compile(&spec).unwrap();
            assert_eq!(stream.would_accept(), pipeline.accepts(&w), "{s}");
            let outcome = stream.finish().unwrap();
            assert_eq!(outcome.is_accept(), pipeline.accepts(&w), "{s}");
        }
    }

    #[test]
    fn intermediate_accept_bits_track_prefixes() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(16);
        let sigma = Alphabet::parens();
        let w = sigma.parse_str("(())()").unwrap();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.is_empty());
        for (i, sym) in w.iter().enumerate() {
            stream.push(sym);
            let prefix = w.substring(0, i + 1);
            assert_eq!(stream.would_accept(), pipeline.accepts(&prefix), "{i}");
        }
    }

    #[test]
    fn trace_is_a_valid_trace_of_the_pushed_input() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(8);
        let sigma = Alphabet::parens();
        let w = sigma.parse_str("(()())").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        stream.push_all(&w);
        assert!(stream.state().is_some(), "DFA streams expose their state");
        let (b, trace) = stream.trace().expect("DFA streams have traces");
        assert!(b);
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let backend = pipeline.backend().unwrap();
        let g = backend.tg.trace(backend.dfa.init(), b);
        validate(&trace, &g, &w).unwrap();
    }

    #[test]
    fn expr_pipeline_has_no_stream() {
        let engine = Engine::new();
        assert!(matches!(
            engine.stream(&PipelineSpec::expr(4)),
            Err(EngineError::NoStreamingBackend(_))
        ));
    }

    #[test]
    fn dfa_stream_viability_tracks_co_reachability() {
        // ')' from the start of a Dyck automaton enters a dead sink: no
        // continuation can ever accept, and is_viable must say so.
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(6);
        let sigma = Alphabet::parens();
        let close = sigma.symbol(")").unwrap();
        let open = sigma.symbol("(").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.is_viable(), "ε extends to ()");
        stream.push(open);
        assert!(stream.is_viable(), "( extends to ()");
        stream.push(close);
        stream.push(close);
        assert!(!stream.is_viable(), "()) is dead in every continuation");
        stream.push(open);
        assert!(!stream.is_viable(), "sinks are absorbing");
        assert!(!stream.would_accept());
    }

    #[test]
    fn lr_stream_matches_one_shot_and_certifies() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck_cfg();
        let sigma = Alphabet::parens();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        for s in ["", "()", "(())()", ")(", "(()", "()()()"] {
            let w = sigma.parse_str(s).unwrap();
            let mut stream = engine.stream(&spec).unwrap();
            stream.push_all(&w);
            assert_eq!(stream.would_accept(), pipeline.accepts(&w), "{s}");
            assert!(stream.trace().is_none(), "LR streams have no DFA trace");
            assert!(stream.state().is_none());
            let outcome = stream.finish().unwrap();
            assert_eq!(outcome.is_accept(), pipeline.accepts(&w), "{s}");
            if let Some(tree) = outcome.accepted() {
                validate(tree, pipeline.grammar(), &w).unwrap();
            }
        }
    }

    #[test]
    fn lr_stream_prefix_probes_track_acceptance() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck_cfg();
        let sigma = Alphabet::parens();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let w = sigma.parse_str("(())()").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.would_accept(), "ε is balanced");
        for (i, sym) in w.iter().enumerate() {
            stream.push(sym);
            let prefix = w.substring(0, i + 1);
            assert_eq!(stream.would_accept(), pipeline.accepts(&prefix), "{i}");
            assert!(stream.is_viable(), "every prefix of (())() is viable");
        }
    }

    #[test]
    fn expr_cfg_pipeline_streams_via_lr() {
        // The lookahead-automaton expr pipeline cannot stream; the
        // LR-backed CFG form of the same grammar can.
        let engine = Engine::new();
        let spec = PipelineSpec::expr_cfg();
        let t = lambek_automata::lookahead::ArithTokens::new();
        let mut stream = engine.stream(&spec).unwrap();
        for sym in [t.num, t.add, t.lp, t.num, t.rp] {
            stream.push(sym);
        }
        assert!(stream.would_accept(), "NUM + ( NUM ) is an expression");
        let outcome = stream.finish().unwrap();
        assert!(outcome.is_accept());
    }

    #[test]
    fn earley_fallback_has_no_stream() {
        use lambek_cfg::grammar::{Cfg, GSym, Production};
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let ambiguous = Cfg::new(
            s,
            vec!["S".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::N(0)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        let engine = Engine::new();
        assert!(matches!(
            engine.stream(&PipelineSpec::cfg("amb", ambiguous)),
            Err(EngineError::NoStreamingBackend(_))
        ));
    }
}
