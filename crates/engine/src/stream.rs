//! Push-mode streaming input for DFA-backed and LR-backed pipelines.
//!
//! A [`StreamParser`] consumes one symbol per [`StreamParser::push`].
//! Two backends support streaming:
//!
//! * **DFA mode** (regex and Dyck pipelines): each push is a single
//!   dense-table transition; the visited state sequence is remembered,
//!   so [`StreamParser::would_accept`] is one array probe and
//!   [`StreamParser::trace`] materializes the unique DFA trace
//!   *backwards over the recorded states* (the `parseD` construction of
//!   Fig. 12) without re-running the automaton.
//!   [`StreamParser::finish`] trades that incrementality for the full
//!   guarantee: it runs the pipeline's composed verified parser over
//!   the accumulated input end-to-end, because intrinsic verification
//!   is a property of the whole composed transformer.
//! * **LR mode** (CFG pipelines whose grammar compiled conflict-free):
//!   each push shifts one symbol after running the pending reductions —
//!   O(1) amortized over the input via the dense ACTION/GOTO tables —
//!   and the partial parse trees stay on the stream's stack, each
//!   reduction certified *as it is performed* (interned-id claim checks
//!   against the production's right-hand side).
//!   [`StreamParser::would_accept`] simulates the end-of-input
//!   reductions over a scratch overlay of the state stack;
//!   [`StreamParser::finish`] completes the remaining reductions and
//!   closes the lone-start obligation — no whole-tree re-validation, yet
//!   the same intrinsic guarantee as the one-shot path.
//!
//! * **Lexed-LR mode** (raw-text pipelines whose token grammar
//!   compiled conflict-free): characters go in through
//!   [`StreamParser::push_char`]; a push-mode [`LexStream`] buffers at
//!   most the one pending longest-match token boundary and feeds each
//!   resolved token straight into the token-level [`LrStream`]. Both
//!   layers certify incrementally: every resolved token is checked at
//!   its munch boundary (running span-tiling cursor + memoized
//!   derivative re-match, via a [`LexCertifier`]) and every LR
//!   reduction as it fires. [`StreamParser::finish`] flushes the lexer,
//!   completes the LR reductions, and closes the two end-of-input
//!   obligations (full tiling coverage; a lone start claim) — the
//!   finish cost is the pending suffix, not the stream.
//!
//! CFG pipelines that fell back to Earley have no incremental driver
//! and refuse to open a stream (lexed or not).

use std::sync::Arc;

use lambek_automata::nfa::StateId;
use lambek_core::alphabet::{GString, Symbol};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::parser::ParseOutcome;
use lambek_core::transform::TransformError;
use lambek_lex::{LexCertifier, LexCertifyError, LexStream, LexStreamState, Span, Token};
use lambek_lr::{CertifyError, ClaimRef, LrOutcome, LrStream, LrStreamState};

use crate::pipeline::CompiledPipeline;
use crate::session::{self, Reader, SessionError, SessionState, Writer};
use crate::EngineError;

/// The backend-specific state of a stream.
///
/// The `LexedLr` variant is much bigger than `Dfa`, but there is one
/// `Mode` per open stream and it is matched on every push — boxing the
/// large variant would buy nothing and cost an indirection in the hot
/// loop.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
enum Mode {
    /// Dense DFA stepping; `states[i]` is the state before symbol `i`.
    Dfa {
        states: Vec<StateId>,
        input: GString,
        /// Co-reachability of every state
        /// ([`lambek_automata::dfa::Dfa::live_states`]), computed once
        /// at open: the viability probe is one index.
        live: Vec<bool>,
    },
    /// Incremental certified LR parsing.
    Lr(LrStream),
    /// Incremental lexing feeding incremental LR parsing.
    LexedLr {
        /// The character side: maximal-munch with one buffered token
        /// boundary.
        lex: LexStream,
        /// The token side: shift + pending reductions per token.
        lr: LrStream,
        /// Every token emitted so far, skips included (kept for
        /// [`StreamParser::tokens`]; certification happens per token,
        /// not from this list).
        tokens: Vec<Token>,
        /// The incremental lexer certifier: each resolved token is
        /// checked at its munch boundary against the raw text.
        cert: LexCertifier,
        /// The first lexer-certification violation, recorded at the
        /// token where it happened and reported at `finish`.
        lex_fault: Option<LexCertifyError>,
    },
}

/// A mode-independent progress snapshot of a [`StreamParser`],
/// returned by [`StreamParser::progress`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StreamProgress {
    /// Units of input consumed so far: symbols for DFA and LR streams,
    /// raw bytes for lexed streams.
    pub pushed: usize,
    /// Tokens whose boundaries have been resolved (lexed streams;
    /// zero elsewhere).
    pub tokens_emitted: usize,
    /// Partial parse trees currently open on the LR stack (LR-backed
    /// streams; zero for DFA streams).
    pub stack_depth: usize,
}

/// An incremental parser over a shared compiled pipeline.
#[derive(Debug, Clone)]
pub struct StreamParser {
    pipeline: Arc<CompiledPipeline>,
    mode: Mode,
}

impl StreamParser {
    /// Opens a stream over `pipeline`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::NoStreamingBackend`] if the pipeline has
    /// neither a dense DFA nor LR tables behind it (the
    /// lookahead-automaton expression pipeline; CFG pipelines on the
    /// Earley fallback).
    pub fn open(pipeline: Arc<CompiledPipeline>) -> Result<StreamParser, EngineError> {
        let mode = if let Some(backend) = pipeline.backend() {
            Mode::Dfa {
                states: vec![backend.dfa.init()],
                input: GString::new(),
                live: backend.dfa.live_states(),
            }
        } else if let Some(lr) = pipeline.cfg_backend().and_then(|b| b.lr()) {
            Mode::Lr(lr.stream())
        } else if let Some(lr) = pipeline.lexed_backend().and_then(|b| b.cfg_backend().lr()) {
            let lexer = pipeline.lexed_backend().expect("just matched").lexer();
            Mode::LexedLr {
                lex: lexer.automaton().stream(),
                lr: lr.stream(),
                tokens: Vec::new(),
                cert: lexer.certifier(),
                lex_fault: None,
            }
        } else {
            return Err(EngineError::NoStreamingBackend(pipeline.spec().label()));
        };
        Ok(StreamParser { pipeline, mode })
    }

    /// Consumes one symbol: a single dense-table DFA transition, or one
    /// LR shift plus any reductions it unlocks.
    ///
    /// # Panics
    ///
    /// Panics on lexed pipelines, whose streams consume *characters* —
    /// use [`StreamParser::push_char`] there (pushing a token-level
    /// symbol directly would desynchronize the certified lexer from
    /// the raw text it certifies at `finish`).
    pub fn push(&mut self, sym: Symbol) {
        match &mut self.mode {
            Mode::Dfa { states, input, .. } => {
                let backend = self.pipeline.backend().expect("checked at open");
                let s = *states.last().expect("stream has an initial state");
                states.push(backend.dfa.delta(s, sym));
                input.push(sym);
            }
            Mode::Lr(stream) => {
                stream.push(sym);
            }
            Mode::LexedLr { .. } => {
                panic!("lexed streams consume raw text: use push_char, not push")
            }
        }
    }

    /// Consumes one raw character (lexed pipelines only): the lexer
    /// steps its tagged DFA, and any token whose right boundary the
    /// character resolved is shifted into the LR parse. Returns `false`
    /// once the stream can no longer accept any continuation.
    ///
    /// # Panics
    ///
    /// Panics on non-lexed pipelines, whose streams consume [`Symbol`]s
    /// — use [`StreamParser::push`] there.
    pub fn push_char(&mut self, c: char) -> bool {
        let Mode::LexedLr {
            lex,
            lr,
            tokens,
            cert,
            lex_fault,
        } = &mut self.mode
        else {
            panic!("only lexed streams consume raw text: use push, not push_char");
        };
        match lex.push(c) {
            Err(_) => false,
            Ok(resolved) => {
                let mut ok = true;
                for t in resolved {
                    // Certify the lexeme at its munch boundary: the
                    // token's span bytes are already part of the pushed
                    // text, so the running tiling cursor and the
                    // derivative re-match both resolve right here.
                    if lex_fault.is_none() {
                        if let Err(e) = cert.check(lex.raw_input(), &t) {
                            *lex_fault = Some(e);
                        }
                    }
                    if let Some(sym) = t.sym {
                        ok &= lr.push(sym);
                    }
                    tokens.push(t);
                }
                ok && lr.is_viable() && lex_fault.is_none()
            }
        }
    }

    /// Consumes a whole string of raw characters (lexed pipelines
    /// only). Returns the final viability bit, as
    /// [`StreamParser::push_char`] does.
    pub fn push_chars(&mut self, s: &str) -> bool {
        // Seed from the current viability so an empty chunk on a dead
        // stream honestly reports false.
        let mut ok = self.is_viable();
        for c in s.chars() {
            ok = self.push_char(c);
        }
        ok
    }

    /// Consumes a whole string.
    pub fn push_all(&mut self, w: &GString) {
        for sym in w.iter() {
            self.push(sym);
        }
    }

    /// Number of symbols consumed so far.
    pub fn len(&self) -> usize {
        self.input().len()
    }

    /// `true` if nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.input().is_empty()
    }

    /// The DFA state after the symbols consumed so far — `None` for LR
    /// streams, whose configuration is a state *stack*.
    pub fn state(&self) -> Option<StateId> {
        match &self.mode {
            Mode::Dfa { states, .. } => Some(*states.last().expect("stream has an initial state")),
            Mode::Lr(_) | Mode::LexedLr { .. } => None,
        }
    }

    /// Whether the input so far would be accepted if the stream ended
    /// here — one array probe in DFA mode; an end-of-input reduction
    /// simulation over a scratch state stack in LR mode. Neither builds
    /// trees or disturbs the stream.
    pub fn would_accept(&self) -> bool {
        match &self.mode {
            Mode::Dfa { states, .. } => {
                let s = *states.last().expect("stream has an initial state");
                self.pipeline
                    .backend()
                    .expect("checked at open")
                    .dfa
                    .is_accepting(s)
            }
            Mode::Lr(stream) => stream.would_accept(),
            // Flush the pending token boundary (a copy of the small
            // munch state, not of the accumulated input) and simulate
            // the flushed symbols plus the end-of-input reductions over
            // a scratch overlay of the LR state stack: the probe never
            // disturbs either live stream, builds no trees, and — since
            // nothing clones the accumulated input or the partial
            // derivation stack — costs O(pending + stack depth), not
            // O(input).
            Mode::LexedLr {
                lex, lr, lex_fault, ..
            } => {
                lex_fault.is_none()
                    && match lex.pending_flush() {
                        Err(_) => false,
                        Ok(flushed) => {
                            lr.would_accept_after(flushed.into_iter().filter_map(|t| t.sym))
                        }
                    }
            }
        }
    }

    /// [`StreamParser::would_accept`] plus the number of LR table
    /// actions the probe simulated — the differential suites use the
    /// count to pin the probe's cost to the stack depth. DFA probes
    /// count as one action.
    #[doc(hidden)]
    pub fn would_accept_counted(&self) -> (bool, usize) {
        match &self.mode {
            Mode::Dfa { .. } => (self.would_accept(), 1),
            Mode::Lr(stream) => stream.would_accept_after_counted(std::iter::empty()),
            Mode::LexedLr {
                lex, lr, lex_fault, ..
            } => {
                if lex_fault.is_some() {
                    return (false, 0);
                }
                match lex.pending_flush() {
                    Err(_) => (false, 0),
                    Ok(flushed) => {
                        lr.would_accept_after_counted(flushed.into_iter().filter_map(|t| t.sym))
                    }
                }
            }
        }
    }

    /// `true` while the consumed input can still extend to an accepted
    /// sentence. DFA mode answers from the precomputed co-reachability
    /// of the current state (the automata are total, so a dead input
    /// sits in a non-live sink rather than erroring); LR mode flips to
    /// `false` at the first symbol the table has no action for.
    pub fn is_viable(&self) -> bool {
        match &self.mode {
            Mode::Dfa { states, live, .. } => {
                live[*states.last().expect("stream has an initial state")]
            }
            Mode::Lr(stream) => stream.is_viable(),
            Mode::LexedLr {
                lex, lr, lex_fault, ..
            } => lex.is_alive() && lr.is_viable() && lex_fault.is_none(),
        }
    }

    /// The first lexer-certification violation the incremental checker
    /// caught (lexed streams only; always `None` for a correctly
    /// compiled lexer).
    pub fn lex_fault(&self) -> Option<&LexCertifyError> {
        match &self.mode {
            Mode::LexedLr { lex_fault, .. } => lex_fault.as_ref(),
            _ => None,
        }
    }

    /// The first LR-certification violation the incremental checker
    /// caught (LR-backed streams only; always `None` for a correctly
    /// compiled parser).
    pub fn lr_fault(&self) -> Option<&CertifyError> {
        match &self.mode {
            Mode::Lr(stream) => stream.fault(),
            Mode::LexedLr { lr, .. } => lr.fault(),
            Mode::Dfa { .. } => None,
        }
    }

    /// Injects a one-token lexer fault (test-only; lexed streams only).
    #[doc(hidden)]
    pub fn sabotage_lex(&mut self, s: lambek_lex::SabotageLex) {
        match &mut self.mode {
            Mode::LexedLr { lex, .. } => lex.sabotage(s),
            _ => panic!("only lexed streams have a lexer to sabotage"),
        }
    }

    /// Injects a one-step LR fault (test-only; LR-backed streams only).
    #[doc(hidden)]
    pub fn sabotage_lr(&mut self, s: lambek_lr::SabotageLr) {
        match &mut self.mode {
            Mode::Lr(stream) => stream.sabotage(s),
            Mode::LexedLr { lr, .. } => lr.sabotage(s),
            Mode::Dfa { .. } => panic!("DFA streams have no LR stack to sabotage"),
        }
    }

    /// The input consumed so far, at the *parser's* level: for lexed
    /// streams this is the token-level string (resolved tokens only —
    /// the buffered boundary is not yet part of it); the raw text lives
    /// in [`StreamParser::raw_input`].
    pub fn input(&self) -> &GString {
        match &self.mode {
            Mode::Dfa { input, .. } => input,
            Mode::Lr(stream) => stream.input(),
            Mode::LexedLr { lr, .. } => lr.input(),
        }
    }

    /// The raw text pushed so far (lexed streams only).
    pub fn raw_input(&self) -> Option<&str> {
        match &self.mode {
            Mode::LexedLr { lex, .. } => Some(lex.raw_input()),
            _ => None,
        }
    }

    /// The tokens whose boundaries have been resolved so far, skips
    /// included (lexed streams only).
    pub fn tokens(&self) -> Option<&[Token]> {
        match &self.mode {
            Mode::LexedLr { tokens, .. } => Some(tokens),
            _ => None,
        }
    }

    /// A cheap, always-available progress snapshot, regardless of
    /// backend mode. Unlike [`StreamParser::trace`] (DFA streams only)
    /// this works for all three modes and costs a few field reads.
    ///
    /// What `pushed` counts is mode-dependent: symbols for DFA and LR
    /// streams, raw *bytes* for lexed streams (the natural unit of
    /// their input). `tokens_emitted` and `stack_depth` are zero where
    /// the mode has no lexer or no LR stack.
    pub fn progress(&self) -> StreamProgress {
        match &self.mode {
            Mode::Dfa { input, .. } => StreamProgress {
                pushed: input.len(),
                tokens_emitted: 0,
                stack_depth: 0,
            },
            Mode::Lr(stream) => StreamProgress {
                pushed: stream.input().len(),
                tokens_emitted: 0,
                stack_depth: stream.pending(),
            },
            Mode::LexedLr {
                lex, lr, tokens, ..
            } => StreamProgress {
                pushed: lex.raw_input().len(),
                tokens_emitted: tokens.len(),
                stack_depth: lr.pending(),
            },
        }
    }

    /// The accept bit and the raw DFA trace of the input so far, built
    /// backwards from the recorded state sequence (Fig. 12's `parseD`,
    /// without re-running the automaton).
    ///
    /// Returns `None` for **both** LR streams and lexed streams — their
    /// incremental artifact is the partial derivation stack, not a
    /// trace, so there is nothing trace-shaped to hand back. Use
    /// [`StreamParser::progress`] for a mode-independent view of how
    /// far a stream has advanced.
    pub fn trace(&self) -> Option<(bool, ParseTree)> {
        let Mode::Dfa { states, input, .. } = &self.mode else {
            return None; // LR and lexed streams carry stacks, not traces
        };
        let backend = self.pipeline.backend().expect("checked at open");
        let b = backend
            .dfa
            .is_accepting(*states.last().expect("stream has an initial state"));
        let mut tree = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
        for (i, sym) in input.iter().enumerate().rev() {
            let s = states[i];
            let idx = backend.tg.cons_index(&backend.dfa, s, b, sym);
            tree = ParseTree::roll(ParseTree::inj(
                idx,
                ParseTree::pair(ParseTree::Char(sym), tree),
            ));
        }
        Some((b, tree))
    }

    /// Parks the stream: serializes its complete state to a versioned,
    /// checksummed [`SessionState`] that [`crate::Engine::resume`] can later
    /// turn back into an equivalent live stream — same accepts, same
    /// rejects, same certified trees, in this process or another.
    ///
    /// What goes over the wire is mode-dependent. DFA sessions carry
    /// only the input (the state sequence is a deterministic replay).
    /// LR sessions carry the state stack, the partial derivation stack
    /// with its certification claims (as process-independent
    /// [`ClaimRef`]s), and the input. Lexed sessions add the raw text,
    /// the resolved-boundary offset, and every emitted token — the
    /// in-flight munch state is *derived*, not shipped. In every case
    /// resume re-validates the lot against the compiled pipeline; the
    /// blob is never trusted.
    ///
    /// # Errors
    ///
    /// [`SessionError::Unsupported`] if the stream has recorded a
    /// certification fault — a faulted configuration is evidence of a
    /// driver bug, not a parse state worth parking.
    pub fn snapshot(&self) -> Result<SessionState, SessionError> {
        let fingerprint = self.pipeline.spec().session_fingerprint();
        let mut w = Writer::new();
        let tag = match &self.mode {
            Mode::Dfa { input, .. } => {
                session::write_gstring(&mut w, input);
                0
            }
            Mode::Lr(stream) => {
                let st = stream.export_state().ok_or_else(|| {
                    SessionError::Unsupported(
                        "faulted or full-validation LR streams cannot be parked".into(),
                    )
                })?;
                write_lr_state(&mut w, &st);
                1
            }
            Mode::LexedLr {
                lex,
                lr,
                tokens,
                lex_fault,
                ..
            } => {
                if lex_fault.is_some() {
                    return Err(SessionError::Unsupported(
                        "streams with a recorded lexer-certification fault cannot be parked".into(),
                    ));
                }
                let lr_st = lr.export_state().ok_or_else(|| {
                    SessionError::Unsupported(
                        "faulted or full-validation LR streams cannot be parked".into(),
                    )
                })?;
                write_lex_state(&mut w, &lex.export_state());
                write_lr_state(&mut w, &lr_st);
                w.usize(tokens.len());
                for t in tokens {
                    write_token(&mut w, t);
                }
                2
            }
        };
        Ok(session::seal(fingerprint, tag, w))
    }

    /// Un-parks a session over `pipeline` — the inverse of
    /// [`StreamParser::snapshot`], usually reached through
    /// [`Engine::resume`](crate::Engine::resume).
    ///
    /// The blob is treated as untrusted input throughout: the checksum
    /// and version gate the framing, the spec fingerprint gates *which
    /// pipeline* the state may re-enter, and the decoded state is then
    /// re-validated piece by piece — DFA input replayed through the
    /// automaton, LR stacks checked transition-by-transition against
    /// the tables with every parked tree re-certified against its claim
    /// and yield window, lexer state re-derived by replaying the
    /// unresolved suffix, and every token re-certified by a fresh
    /// incremental certifier (span tiling + derivative re-match). A
    /// blob that lies is rejected with a structured error; it cannot
    /// produce a stream whose future certifications are wrong.
    ///
    /// # Errors
    ///
    /// [`SessionError::Corrupt`] / [`SessionError::Version`] /
    /// [`SessionError::SpecMismatch`] for framing-level rejections,
    /// [`SessionError::Invalid`] when the decoded state fails
    /// re-validation against this pipeline.
    pub fn resume(
        pipeline: Arc<CompiledPipeline>,
        state: &SessionState,
    ) -> Result<StreamParser, SessionError> {
        let fingerprint = pipeline.spec().session_fingerprint();
        let (tag, mut r) = session::open(state, fingerprint)?;
        let invalid = SessionError::Invalid;
        let mode = match tag {
            0 => {
                let Some(backend) = pipeline.backend() else {
                    return Err(invalid(
                        "blob is a DFA session but the pipeline has no DFA backend".into(),
                    ));
                };
                let input = session::read_gstring(&mut r)?;
                r.finish()?;
                let n_syms = pipeline.alphabet().names().len();
                if let Some(sym) = input.iter().find(|s| s.index() >= n_syms) {
                    return Err(invalid(format!(
                        "symbol index {} is outside the {n_syms}-symbol alphabet",
                        sym.index()
                    )));
                }
                // The state sequence is not on the wire: replaying the
                // input through the actual automaton *is* the
                // validation (and the only self-consistent outcome).
                let mut states = Vec::with_capacity(input.len() + 1);
                states.push(backend.dfa.init());
                for sym in input.iter() {
                    let s = *states.last().expect("seeded with the initial state");
                    states.push(backend.dfa.delta(s, sym));
                }
                Mode::Dfa {
                    states,
                    input,
                    live: backend.dfa.live_states(),
                }
            }
            1 => {
                let Some(lr) = pipeline.cfg_backend().and_then(|b| b.lr()) else {
                    return Err(invalid(
                        "blob is an LR session but the pipeline has no LR backend".into(),
                    ));
                };
                let st = read_lr_state(&mut r)?;
                r.finish()?;
                let n_syms = pipeline.alphabet().names().len();
                if let Some(sym) = st.input.iter().find(|s| s.index() >= n_syms) {
                    return Err(invalid(format!(
                        "symbol index {} is outside the {n_syms}-symbol alphabet",
                        sym.index()
                    )));
                }
                Mode::Lr(lr.resume_stream(st).map_err(|e| invalid(e.to_string()))?)
            }
            2 => {
                let Some(backend) = pipeline.lexed_backend() else {
                    return Err(invalid(
                        "blob is a lexed session but the pipeline has no lexer".into(),
                    ));
                };
                let Some(lr_parser) = backend.cfg_backend().lr() else {
                    return Err(invalid(
                        "blob is a lexed-LR session but the token grammar is not LR".into(),
                    ));
                };
                let lex_st = read_lex_state(&mut r)?;
                let lr_st = read_lr_state(&mut r)?;
                let n = r.len()?;
                let mut tokens = Vec::with_capacity(n);
                for _ in 0..n {
                    tokens.push(read_token(&mut r)?);
                }
                r.finish()?;
                if tokens.len() != lex_st.emitted {
                    return Err(invalid(format!(
                        "blob carries {} tokens but the lexer state claims {} were emitted",
                        tokens.len(),
                        lex_st.emitted
                    )));
                }
                // Cross-layer consistency: the LR stream must have been
                // fed exactly the non-skip tokens' symbols, in order.
                let yielded: GString = tokens.iter().filter_map(|t| t.sym).collect();
                if yielded != lr_st.input {
                    return Err(invalid(
                        "the tokens' symbol yield does not match the LR input".into(),
                    ));
                }
                // Re-certify every parked token from scratch: span
                // tiling from byte 0, text-vs-input agreement, rule
                // bounds, symbol assignment, derivative re-match. This
                // also rebuilds the incremental certifier the resumed
                // stream carries forward.
                let mut cert = backend.lexer().certifier();
                for t in &tokens {
                    cert.check(&lex_st.input, t)
                        .map_err(|e| invalid(format!("token re-certification failed: {e}")))?;
                }
                match lex_st.dead {
                    None if cert.cursor() != lex_st.resume_from => {
                        return Err(invalid(format!(
                            "tokens tile {} bytes but the resolved boundary is recorded at {}",
                            cert.cursor(),
                            lex_st.resume_from
                        )));
                    }
                    // A dead stream may have delivered fewer tokens
                    // than it cut (a failed drain discards the cut),
                    // but never any reaching past the error offset.
                    Some((at, _)) if cert.cursor() > at => {
                        return Err(invalid(format!(
                            "tokens tile {} bytes, past the recorded lexical error at byte {at}",
                            cert.cursor()
                        )));
                    }
                    _ => {}
                }
                let lex = backend
                    .lexer()
                    .automaton()
                    .resume_stream(lex_st)
                    .map_err(|e| invalid(e.to_string()))?;
                let lr = lr_parser
                    .resume_stream(lr_st)
                    .map_err(|e| invalid(e.to_string()))?;
                Mode::LexedLr {
                    lex,
                    lr,
                    tokens,
                    cert,
                    lex_fault: None,
                }
            }
            t => {
                return Err(SessionError::Corrupt(format!(
                    "unknown session mode tag {t}"
                )))
            }
        };
        Ok(StreamParser { pipeline, mode })
    }

    /// Ends the stream, returning the intrinsically checked outcome.
    ///
    /// DFA mode re-runs the pipeline's composed verified parser over the
    /// accumulated input. LR mode completes the pending reductions —
    /// each already certified as it was performed — and closes the
    /// lone-start obligation: no whole-tree re-validation, same
    /// guarantee. Lexed mode flushes the buffered token boundary
    /// (certifying the flushed lexemes at their munch boundaries, like
    /// every earlier token), completes the LR reductions, and closes
    /// the two end-of-input obligations: the certified lexemes tile the
    /// whole raw text, and the LR stack holds exactly the start symbol.
    /// The cost of `finish` is the pending suffix, not the stream.
    ///
    /// # Errors
    ///
    /// Propagates transformer errors exactly as
    /// [`CompiledPipeline::parse`] does; a lexer certification failure
    /// surfaces as [`TransformError::Custom`].
    pub fn finish(self) -> Result<ParseOutcome, TransformError> {
        match self.mode {
            Mode::Dfa { input, .. } => self.pipeline.parse(&input),
            Mode::Lr(stream) => {
                let input = stream.input().clone();
                match stream.finish().map_err(|e| TransformError::OutputShape {
                    transformer: "certified-lr-stream".to_owned(),
                    cause: e.cause,
                })? {
                    LrOutcome::Accept(tree) => Ok(ParseOutcome::Accept(tree)),
                    // Same rejection convention as the one-shot CFG path:
                    // the ⊤-parse of the input.
                    LrOutcome::Reject(_) => Ok(ParseOutcome::Reject(ParseTree::Top(input))),
                }
            }
            Mode::LexedLr {
                lex,
                mut lr,
                mut cert,
                mut lex_fault,
                ..
            } => {
                // Layer 1 ran per token as the characters were pushed: a
                // violation recorded at any munch boundary surfaces now.
                if let Some(e) = lex_fault {
                    return Err(TransformError::Custom(format!(
                        "certified-lexer contract violation: {e}"
                    )));
                }
                let raw = lex.raw_input().to_owned();
                let flushed = match lex.finish() {
                    Ok(f) => f,
                    Err(_) => {
                        // An unlexable tail (or an earlier lexical
                        // error): the stream rejects with the ⊤-parse
                        // of the tokens parsed so far.
                        return Ok(ParseOutcome::Reject(ParseTree::Top(lr.input().clone())));
                    }
                };
                for t in flushed {
                    if lex_fault.is_none() {
                        if let Err(e) = cert.check(&raw, &t) {
                            lex_fault = Some(e);
                        }
                    }
                    if let Some(sym) = t.sym {
                        lr.push(sym);
                    }
                }
                // Close the tiling invariant: the certified lexemes
                // must cover every pushed byte.
                if lex_fault.is_none() {
                    if let Err(e) = cert.finish(&raw) {
                        lex_fault = Some(e);
                    }
                }
                if let Some(e) = lex_fault {
                    return Err(TransformError::Custom(format!(
                        "certified-lexer contract violation: {e}"
                    )));
                }
                // Layer 2: the LR reductions were certified as they
                // were performed; finish only closes the lone-start
                // obligation (no whole-tree re-validation).
                let input = lr.input().clone();
                match lr.finish().map_err(|e| TransformError::OutputShape {
                    transformer: "certified-lexed-lr-stream".to_owned(),
                    cause: e.cause,
                })? {
                    LrOutcome::Accept(tree) => Ok(ParseOutcome::Accept(tree)),
                    LrOutcome::Reject(_) => Ok(ParseOutcome::Reject(ParseTree::Top(input))),
                }
            }
        }
    }
}

/// Encodes extracted lexer-stream state (see [`LexStreamState`]).
fn write_lex_state(w: &mut Writer, st: &LexStreamState) {
    w.str(&st.input);
    w.usize(st.resume_from);
    w.usize(st.emitted);
    match st.dead {
        None => w.u8(0),
        Some((at, c)) => {
            w.u8(1);
            w.usize(at);
            w.u32(c as u32);
        }
    }
}

fn read_lex_state(r: &mut Reader<'_>) -> Result<LexStreamState, SessionError> {
    let input = r.string()?;
    let resume_from = r.u64()? as usize;
    let emitted = r.u64()? as usize;
    let dead = match r.u8()? {
        0 => None,
        1 => {
            let at = r.u64()? as usize;
            let c = char::from_u32(r.u32()?).ok_or_else(|| {
                SessionError::Corrupt("lexical-error character is not a scalar value".into())
            })?;
            Some((at, c))
        }
        t => return Err(SessionError::Corrupt(format!("bad option tag {t}"))),
    };
    Ok(LexStreamState {
        input,
        resume_from,
        emitted,
        dead,
    })
}

/// Encodes extracted LR-stream state (see [`LrStreamState`]).
fn write_lr_state(w: &mut Writer, st: &LrStreamState) {
    w.usize(st.states.len());
    for &s in &st.states {
        w.u32(s);
    }
    w.usize(st.trees.len());
    for t in &st.trees {
        session::write_tree(w, t);
    }
    w.usize(st.claims.len());
    for &c in &st.claims {
        match c {
            ClaimRef::Term(t) => {
                w.u8(0);
                w.usize(t);
            }
            ClaimRef::Var(n) => {
                w.u8(1);
                w.usize(n);
            }
        }
    }
    w.usize(st.shifts);
    w.usize(st.reduces);
    session::write_gstring(w, &st.input);
    match st.dead {
        None => w.u8(0),
        Some((at, state)) => {
            w.u8(1);
            w.usize(at);
            w.usize(state);
        }
    }
}

fn read_lr_state(r: &mut Reader<'_>) -> Result<LrStreamState, SessionError> {
    let n = r.len()?;
    let mut states = Vec::with_capacity(n);
    for _ in 0..n {
        states.push(r.u32()?);
    }
    let n = r.len()?;
    let mut trees = Vec::with_capacity(n);
    for _ in 0..n {
        trees.push(session::read_tree(r)?);
    }
    let n = r.len()?;
    let mut claims = Vec::with_capacity(n);
    for _ in 0..n {
        claims.push(match r.u8()? {
            0 => ClaimRef::Term(r.u64()? as usize),
            1 => ClaimRef::Var(r.u64()? as usize),
            t => return Err(SessionError::Corrupt(format!("bad claim tag {t}"))),
        });
    }
    let shifts = r.u64()? as usize;
    let reduces = r.u64()? as usize;
    let input = session::read_gstring(r)?;
    let dead = match r.u8()? {
        0 => None,
        1 => Some((r.u64()? as usize, r.u64()? as usize)),
        t => return Err(SessionError::Corrupt(format!("bad option tag {t}"))),
    };
    Ok(LrStreamState {
        states,
        trees,
        claims,
        shifts,
        reduces,
        input,
        dead,
    })
}

fn write_token(w: &mut Writer, t: &Token) {
    w.usize(t.rule);
    w.str(&t.text);
    w.usize(t.span.start);
    w.usize(t.span.end);
    match t.sym {
        None => w.u8(0),
        Some(s) => {
            w.u8(1);
            w.u16(s.index() as u16);
        }
    }
}

fn read_token(r: &mut Reader<'_>) -> Result<Token, SessionError> {
    let rule = r.u64()? as usize;
    let text = r.string()?;
    let span = Span {
        start: r.u64()? as usize,
        end: r.u64()? as usize,
    };
    let sym = match r.u8()? {
        0 => None,
        1 => Some(lambek_core::alphabet::Symbol::from_index(r.u16()? as usize)),
        t => return Err(SessionError::Corrupt(format!("bad option tag {t}"))),
    };
    Ok(Token {
        rule,
        text,
        span,
        sym,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, PipelineSpec};
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::parse_tree::validate;

    #[test]
    fn streaming_matches_one_shot_parsing() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
        let sigma = Alphabet::abc();
        for s in ["", "b", "aab", "c", "ca", "abab"] {
            let w = sigma.parse_str(s).unwrap();
            let mut stream = engine.stream(&spec).unwrap();
            stream.push_all(&w);
            assert_eq!(stream.len(), w.len());
            let pipeline = engine.get_or_compile(&spec).unwrap();
            assert_eq!(stream.would_accept(), pipeline.accepts(&w), "{s}");
            let outcome = stream.finish().unwrap();
            assert_eq!(outcome.is_accept(), pipeline.accepts(&w), "{s}");
        }
    }

    #[test]
    fn intermediate_accept_bits_track_prefixes() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(16);
        let sigma = Alphabet::parens();
        let w = sigma.parse_str("(())()").unwrap();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.is_empty());
        for (i, sym) in w.iter().enumerate() {
            stream.push(sym);
            let prefix = w.substring(0, i + 1);
            assert_eq!(stream.would_accept(), pipeline.accepts(&prefix), "{i}");
        }
    }

    #[test]
    fn trace_is_a_valid_trace_of_the_pushed_input() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(8);
        let sigma = Alphabet::parens();
        let w = sigma.parse_str("(()())").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        stream.push_all(&w);
        assert!(stream.state().is_some(), "DFA streams expose their state");
        let (b, trace) = stream.trace().expect("DFA streams have traces");
        assert!(b);
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let backend = pipeline.backend().unwrap();
        let g = backend.tg.trace(backend.dfa.init(), b);
        validate(&trace, &g, &w).unwrap();
    }

    #[test]
    fn expr_pipeline_has_no_stream() {
        let engine = Engine::new();
        assert!(matches!(
            engine.stream(&PipelineSpec::expr(4)),
            Err(EngineError::NoStreamingBackend(_))
        ));
    }

    #[test]
    fn dfa_stream_viability_tracks_co_reachability() {
        // ')' from the start of a Dyck automaton enters a dead sink: no
        // continuation can ever accept, and is_viable must say so.
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(6);
        let sigma = Alphabet::parens();
        let close = sigma.symbol(")").unwrap();
        let open = sigma.symbol("(").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.is_viable(), "ε extends to ()");
        stream.push(open);
        assert!(stream.is_viable(), "( extends to ()");
        stream.push(close);
        stream.push(close);
        assert!(!stream.is_viable(), "()) is dead in every continuation");
        stream.push(open);
        assert!(!stream.is_viable(), "sinks are absorbing");
        assert!(!stream.would_accept());
    }

    #[test]
    fn lr_stream_matches_one_shot_and_certifies() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck_cfg();
        let sigma = Alphabet::parens();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        for s in ["", "()", "(())()", ")(", "(()", "()()()"] {
            let w = sigma.parse_str(s).unwrap();
            let mut stream = engine.stream(&spec).unwrap();
            stream.push_all(&w);
            assert_eq!(stream.would_accept(), pipeline.accepts(&w), "{s}");
            assert!(stream.trace().is_none(), "LR streams have no DFA trace");
            assert!(stream.state().is_none());
            let outcome = stream.finish().unwrap();
            assert_eq!(outcome.is_accept(), pipeline.accepts(&w), "{s}");
            if let Some(tree) = outcome.accepted() {
                validate(tree, pipeline.grammar(), &w).unwrap();
            }
        }
    }

    #[test]
    fn lr_stream_prefix_probes_track_acceptance() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck_cfg();
        let sigma = Alphabet::parens();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let w = sigma.parse_str("(())()").unwrap();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.would_accept(), "ε is balanced");
        for (i, sym) in w.iter().enumerate() {
            stream.push(sym);
            let prefix = w.substring(0, i + 1);
            assert_eq!(stream.would_accept(), pipeline.accepts(&prefix), "{i}");
            assert!(stream.is_viable(), "every prefix of (())() is viable");
        }
    }

    #[test]
    fn expr_cfg_pipeline_streams_via_lr() {
        // The lookahead-automaton expr pipeline cannot stream; the
        // LR-backed CFG form of the same grammar can.
        let engine = Engine::new();
        let spec = PipelineSpec::expr_cfg();
        let t = lambek_automata::lookahead::ArithTokens::new();
        let mut stream = engine.stream(&spec).unwrap();
        for sym in [t.num, t.add, t.lp, t.num, t.rp] {
            stream.push(sym);
        }
        assert!(stream.would_accept(), "NUM + ( NUM ) is an expression");
        let outcome = stream.finish().unwrap();
        assert!(outcome.is_accept());
    }

    #[test]
    fn lexed_stream_agrees_with_one_shot_pointwise() {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        for input in [
            "12 + 3",
            "12+(345+6)",
            "7",
            "",
            "1 +",
            "((2)",
            "1 ++ 2",
            "12x",
        ] {
            let mut stream = engine.stream(&spec).unwrap();
            stream.push_chars(input);
            let one_shot = pipeline.parse_str(input).unwrap();
            assert_eq!(
                stream.would_accept(),
                one_shot.is_accept(),
                "{input:?} (would_accept)"
            );
            let outcome = stream.finish().unwrap();
            assert_eq!(
                outcome.is_accept(),
                one_shot.is_accept(),
                "{input:?} (finish)"
            );
            if let (Some(stream_tree), Some(batch_tree)) = (outcome.accepted(), one_shot.accepted())
            {
                assert_eq!(stream_tree, batch_tree, "{input:?}");
                validate(stream_tree, pipeline.grammar(), &stream_tree.flatten()).unwrap();
            }
        }
    }

    #[test]
    fn lexed_stream_probes_track_prefixes() {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let input = "12+(3+45)";
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.state().is_none() && stream.trace().is_none());
        for (i, c) in input.char_indices() {
            stream.push_char(c);
            let prefix = &input[..i + c.len_utf8()];
            assert_eq!(
                stream.would_accept(),
                pipeline.parse_str(prefix).unwrap().is_accept(),
                "{prefix:?}"
            );
            assert!(stream.is_viable(), "every prefix of {input:?} is viable");
        }
        assert_eq!(stream.raw_input(), Some(input));
        // Of the 7 tokens, the final ')' is still the buffered
        // longest-match boundary — only finish() flushes it.
        assert_eq!(stream.tokens().unwrap().len(), 6, "one token pending");
        let outcome = stream.finish().unwrap();
        assert!(outcome.is_accept());
    }

    #[test]
    fn lexed_stream_goes_dead_on_lex_errors() {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.push_char('1'));
        assert!(!stream.push_char('x'), "x is not lexable");
        assert!(!stream.is_viable());
        assert!(!stream.would_accept());
        assert!(!stream.push_char('2'));
        assert!(!stream.finish().unwrap().is_accept());
    }

    #[test]
    fn push_chars_empty_chunk_reports_dead_streams() {
        let engine = Engine::new();
        let mut stream = engine.stream(&PipelineSpec::arith_lexed()).unwrap();
        assert!(stream.push_chars(""), "fresh stream is viable");
        assert!(!stream.push_char('x'));
        assert!(!stream.push_chars(""), "a dead stream must not report ok");
    }

    #[test]
    #[should_panic(expected = "use push_char")]
    fn lexed_streams_refuse_symbol_pushes() {
        let engine = Engine::new();
        let mut stream = engine.stream(&PipelineSpec::arith_lexed()).unwrap();
        stream.push(Symbol::from_index(0));
    }

    #[test]
    #[should_panic(expected = "use push")]
    fn symbol_streams_refuse_char_pushes() {
        let engine = Engine::new();
        let mut stream = engine.stream(&PipelineSpec::dyck_cfg()).unwrap();
        stream.push_char('(');
    }

    #[test]
    fn earley_fallback_has_no_stream() {
        use lambek_cfg::grammar::{Cfg, GSym, Production};
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let ambiguous = Cfg::new(
            s,
            vec!["S".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::N(0)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        let engine = Engine::new();
        assert!(matches!(
            engine.stream(&PipelineSpec::cfg("amb", ambiguous)),
            Err(EngineError::NoStreamingBackend(_))
        ));
    }
}
