//! # lambek-engine — the compiled-parser serving layer
//!
//! The verified pipelines of this workspace (Corollary 4.12's regex
//! parser, Theorem 4.13's Dyck parser, Theorem 4.14's expression parser)
//! are *constructions*: every call rebuilds Thompson NFAs, determinizes,
//! and composes equivalences. That is the right shape for reproducing the
//! paper, and the wrong shape for serving traffic. This crate turns the
//! one-shot constructions into a reusable engine:
//!
//! * [`Engine`] — a thread-safe cache of compiled pipelines keyed by
//!   [`PipelineSpec`] (alphabet + grammar), so each pipeline is compiled
//!   once and shared (`Arc`) across requests and threads; specs compare
//!   and hash by an interned id-based [`SpecKey`] (computed once at
//!   construction via [`lambek_core::intern`]), so cache lookups never
//!   deep-compare alphabets or patterns;
//! * [`Engine::parse_many`] — batch parsing fanned out over
//!   [`std::thread::scope`] workers, returning one structured
//!   [`ParseReport`] per input (outcome, intrinsic yield check, timing);
//! * [`StreamParser`] — push-style incremental input for DFA-backed and
//!   LR-backed pipelines: each pushed symbol is one dense-table
//!   transition (or one LR shift plus its pending reductions), and
//!   [`StreamParser::finish`] produces the fully verified parse;
//! * [`PipelineSpec::cfg`] — arbitrary context-free grammars served
//!   through the certified LR(1) subsystem (`lambek-lr`): deterministic
//!   grammars get linear-time dense-table parsing (with every emitted
//!   tree re-validated by the core derivation checker), grammars with
//!   LR conflicts fall back to the Earley baseline, and the conflict
//!   report is preserved on the compiled [`CfgBackend`].
//!
//! Everything here rides on the `Send + Sync` parse-transformer layer
//! (grammars and transformers are `Arc`-shared) and on the dense
//! flat transition tables of
//! [`lambek_automata::dfa::Dfa`] — the engine holds no locks while
//! parsing, only while touching the pipeline cache (cache hits take a
//! read lock; a miss holds the write lock for the duration of the one
//! compilation, serializing lookups until the pipeline is cached —
//! compiles happen once per spec per process, so this is a startup
//! cost, not a steady-state one).
//!
//! ```
//! use lambek_core::alphabet::Alphabet;
//! use lambek_engine::{Engine, PipelineSpec};
//!
//! let engine = Engine::new();
//! let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
//! let pipeline = engine.get_or_compile(&spec).unwrap();
//!
//! let w = pipeline.alphabet().parse_str("aab").unwrap();
//! assert!(pipeline.parse(&w).unwrap().is_accept());
//!
//! // The second lookup is a cache hit: no recompilation.
//! let again = engine.get_or_compile(&spec).unwrap();
//! assert_eq!(engine.stats().compiles, 1);
//! assert!(std::sync::Arc::ptr_eq(&pipeline, &again));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod pipeline;
mod stream;

pub use batch::{
    parse_batch, parse_batch_str, ParseReport, ReportOutcome, StrParseReport, StrReportOutcome,
};
pub use pipeline::{
    CfgBackend, CfgMode, CompiledPipeline, DfaBackend, LexedCfgBackend, PipelineSpec, SpecKey,
    StrOutcome,
};
pub use stream::StreamParser;

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use lambek_core::alphabet::GString;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The pipeline failed to compile (bad regex syntax, equivalences
    /// that do not compose, …).
    Compile(String),
    /// A streaming parser was requested for a pipeline with no DFA
    /// backend (e.g. the lookahead-automaton expression pipeline).
    NoStreamingBackend(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(m) => write!(f, "pipeline compilation failed: {m}"),
            EngineError::NoStreamingBackend(m) => {
                write!(f, "pipeline {m} has no DFA backend for streaming")
            }
        }
    }
}

impl std::error::Error for EngineError {}

/// Cache observability counters (see [`Engine::stats`]).
///
/// `hits + misses` is the number of [`Engine::get_or_compile`] calls;
/// `compiles` counts actual pipeline constructions — the compile-once
/// guarantee is `compiles ≤ distinct specs` (a miss that loses a race
/// with a concurrent miss on the same spec is counted in `misses` but
/// performs no compilation, so `compiles ≤ misses`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Pipelines actually compiled.
    pub compiles: u64,
    /// Pipelines currently resident.
    pub entries: usize,
}

/// A serving engine: a thread-safe compile-once cache of verified parser
/// pipelines.
///
/// `Engine` is cheap to share (`&Engine` is all the batch workers need)
/// and holds its lock only around cache probes — parsing itself runs on
/// lock-free shared [`CompiledPipeline`]s.
#[derive(Debug, Default)]
pub struct Engine {
    cache: RwLock<HashMap<PipelineSpec, Arc<CompiledPipeline>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
}

impl Engine {
    /// Creates an empty engine.
    pub fn new() -> Engine {
        Engine::default()
    }

    /// Returns the compiled pipeline for `spec`, compiling it on first
    /// use and serving the shared `Arc` afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the spec does not compile
    /// (e.g. regex syntax errors); failed compilations are not cached.
    pub fn get_or_compile(
        &self,
        spec: &PipelineSpec,
    ) -> Result<Arc<CompiledPipeline>, EngineError> {
        if let Some(hit) = self.cache.read().expect("engine cache poisoned").get(spec) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Take the write lock for the whole miss path: concurrent misses
        // on the same spec then compile exactly once, which keeps the
        // compile-once contract strict (not merely eventual).
        let mut cache = self.cache.write().expect("engine cache poisoned");
        if let Some(raced) = cache.get(spec) {
            return Ok(raced.clone());
        }
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(spec.compile()?);
        cache.insert(spec.clone(), compiled.clone());
        Ok(compiled)
    }

    /// Parses every input against the pipeline for `spec`, fanning the
    /// batch out over `workers` scoped threads (1 = sequential in the
    /// calling thread, 0 = one worker per available core). Reports come
    /// back in input order.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be built;
    /// per-input failures are reported in the corresponding
    /// [`ParseReport`], never as an `Err`.
    pub fn parse_many(
        &self,
        spec: &PipelineSpec,
        inputs: &[GString],
        workers: usize,
    ) -> Result<Vec<ParseReport>, EngineError> {
        let pipeline = self.get_or_compile(spec)?;
        Ok(parse_batch(&pipeline, inputs, workers))
    }

    /// Parses every *raw-text* input against the pipeline for `spec`
    /// (the batch form of [`CompiledPipeline::parse_str`]): for lexed
    /// pipelines each input runs certified lexing and then the
    /// certified CFG backend, with rejections carrying byte offsets
    /// into the text. Fan-out and ordering as [`Engine::parse_many`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be
    /// built; per-input failures land in the matching
    /// [`StrParseReport`].
    pub fn parse_many_str(
        &self,
        spec: &PipelineSpec,
        inputs: &[&str],
        workers: usize,
    ) -> Result<Vec<StrParseReport>, EngineError> {
        let pipeline = self.get_or_compile(spec)?;
        Ok(parse_batch_str(&pipeline, inputs, workers))
    }

    /// Opens a push-mode streaming parser for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be built,
    /// or [`EngineError::NoStreamingBackend`] if it is not DFA-backed.
    pub fn stream(&self, spec: &PipelineSpec) -> Result<StreamParser, EngineError> {
        StreamParser::open(self.get_or_compile(spec)?)
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            entries: self.cache.read().expect("engine cache poisoned").len(),
        }
    }

    /// Drops every cached pipeline (counters are kept).
    pub fn clear(&self) {
        self.cache.write().expect("engine cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::alphabet::Alphabet;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<CompiledPipeline>();
        assert_send_sync::<Arc<CompiledPipeline>>();
    }

    #[test]
    fn bad_regex_is_a_compile_error_and_not_cached() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "(((");
        assert!(matches!(
            engine.get_or_compile(&spec),
            Err(EngineError::Compile(_))
        ));
        assert_eq!(engine.stats().entries, 0);
        // The failure is re-attempted (and re-fails) on the next call.
        assert!(engine.get_or_compile(&spec).is_err());
        assert_eq!(engine.stats().misses, 2);
    }

    #[test]
    fn clear_evicts_but_keeps_counters() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(8);
        engine.get_or_compile(&spec).unwrap();
        assert_eq!(engine.stats().entries, 1);
        engine.clear();
        assert_eq!(engine.stats().entries, 0);
        engine.get_or_compile(&spec).unwrap();
        assert_eq!(engine.stats().compiles, 2);
    }
}
