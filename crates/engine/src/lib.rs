//! # lambek-engine — the compiled-parser serving layer
//!
//! The verified pipelines of this workspace (Corollary 4.12's regex
//! parser, Theorem 4.13's Dyck parser, Theorem 4.14's expression parser)
//! are *constructions*: every call rebuilds Thompson NFAs, determinizes,
//! and composes equivalences. That is the right shape for reproducing the
//! paper, and the wrong shape for serving traffic. This crate turns the
//! one-shot constructions into a reusable engine:
//!
//! * [`Engine`] — a thread-safe cache of compiled pipelines keyed by
//!   [`PipelineSpec`] (alphabet + grammar), so each pipeline is compiled
//!   once and shared (`Arc`) across requests and threads; specs compare
//!   and hash by an interned id-based [`SpecKey`] (computed once at
//!   construction via [`lambek_core::intern`]), so cache lookups never
//!   deep-compare alphabets or patterns;
//! * [`Engine::parse_many`] — batch parsing sharded over the engine's
//!   persistent work-stealing worker pool, returning one structured
//!   [`ParseReport`] per input (outcome, intrinsic yield check, timing);
//!   the per-call [`std::thread::scope`] baseline survives as
//!   [`parse_batch`];
//! * [`StreamParser`] — push-style incremental input for DFA-backed and
//!   LR-backed pipelines: each pushed symbol is one dense-table
//!   transition (or one LR shift plus its pending reductions), and
//!   [`StreamParser::finish`] produces the fully verified parse;
//! * [`PipelineSpec::cfg`] — arbitrary context-free grammars served
//!   through the certified LR(1) subsystem (`lambek-lr`): deterministic
//!   grammars get linear-time dense-table parsing (with every emitted
//!   tree re-validated by the core derivation checker), grammars with
//!   LR conflicts fall back to the Earley baseline, and the conflict
//!   report is preserved on the compiled [`CfgBackend`].
//!
//! Everything here rides on the `Send + Sync` parse-transformer layer
//! (grammars and transformers are `Arc`-shared) and on the dense
//! flat transition tables of
//! [`lambek_automata::dfa::Dfa`] — the engine holds no locks while
//! parsing, only while touching the pipeline cache (a hit is one
//! id-keyed map probe plus a credit refresh under a mutex; a miss holds
//! the mutex for the duration of the one compilation, serializing
//! lookups until the pipeline is cached — the strict compile-once
//! contract).
//!
//! The serving tier on top of the pipelines:
//!
//! * a persistent work-stealing worker pool (created once per engine,
//!   lazily) that [`Engine::parse_many`]/[`Engine::parse_many_str`]
//!   submit request shards to, with per-request admission limits
//!   ([`RequestLimits`]) surfaced as structured report outcomes;
//! * a cost-weighted evicting pipeline cache ([`CacheConfig`]): entry
//!   weight is the *measured* compile time, so expensive lexed-CFG
//!   pipelines outlive swarms of cheap regex ones;
//! * serializable stream sessions: [`StreamParser::snapshot`] parks a
//!   push-mode session as a versioned, checksummed byte blob
//!   ([`SessionState`]) and [`Engine::resume`] re-validates and revives
//!   it — on this or any other engine — with the certification
//!   contract intact.
//!
//! ```
//! use lambek_core::alphabet::Alphabet;
//! use lambek_engine::{Engine, PipelineSpec};
//!
//! let engine = Engine::new();
//! let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
//! let pipeline = engine.get_or_compile(&spec).unwrap();
//!
//! let w = pipeline.alphabet().parse_str("aab").unwrap();
//! assert!(pipeline.parse(&w).unwrap().is_accept());
//!
//! // The second lookup is a cache hit: no recompilation.
//! let again = engine.get_or_compile(&spec).unwrap();
//! assert_eq!(engine.stats().compiles, 1);
//! assert!(std::sync::Arc::ptr_eq(&pipeline, &again));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod cache;
mod pipeline;
mod pool;
mod session;
mod stream;
mod text;

pub use batch::{
    parse_batch, parse_batch_str, ParseReport, ReportOutcome, RequestLimits, StrParseReport,
    StrReportOutcome,
};
pub use cache::CacheConfig;
pub use pipeline::{
    CfgBackend, CfgMode, CompiledPipeline, DfaBackend, LexedCfgBackend, PipelineSpec, SpecKey,
    StrOutcome,
};
pub use pool::PoolStats;
pub use session::{SessionError, SessionState, SESSION_VERSION};
pub use stream::{StreamParser, StreamProgress};
pub use text::{CompileTextOptions, PipelineHandle};
// The frontend's structured outcomes, re-exported so `compile_text`
// callers need no direct `lambek-frontend` dependency.
pub use lambek_frontend::{
    Budgets, ConflictReport, ConflictSite, FrontendError, FrontendErrorKind, FrontendReport,
};

use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use lambek_core::alphabet::GString;
use lambek_lex::{LexChunk, LexedOutcome, TokenStream};

use cache::PipelineCache;
use pool::WorkerPool;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The pipeline failed to compile (bad regex syntax, equivalences
    /// that do not compose, …).
    Compile(String),
    /// A streaming parser was requested for a pipeline with no DFA
    /// backend (e.g. the lookahead-automaton expression pipeline).
    NoStreamingBackend(String),
    /// Parallel lexing ([`Engine::lex_str_parallel`]) was requested for
    /// a pipeline that is not a lexed CFG pipeline.
    NotLexed(String),
    /// A certified component violated its own contract at serve time
    /// (e.g. the lexer emitted a lexeme the derivative checker rejects).
    /// This signals a bug in the serving layer, never an input error —
    /// malformed inputs come back as structured rejections.
    Contract(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(m) => write!(f, "pipeline compilation failed: {m}"),
            EngineError::NoStreamingBackend(m) => {
                write!(f, "pipeline {m} has no DFA backend for streaming")
            }
            EngineError::NotLexed(m) => {
                write!(f, "pipeline {m} has no certified lexer for parallel lexing")
            }
            EngineError::Contract(m) => write!(f, "certification contract violated: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

pub use lambek_obs::Histogram as LatencyHistogram;
pub use lambek_obs::HISTOGRAM_BUCKETS as LATENCY_BUCKETS;

/// Observability configuration for an engine (see
/// [`Engine::with_obs`]).
///
/// The metrics registry ([`Engine::metrics_text`] /
/// [`Engine::metrics_json`]) is always on — its instruments are relaxed
/// atomics whose cost is unmeasurable. Per-request *stage tracing* is
/// opt-in: when `tracing` is set, every request served through
/// [`Engine::parse_many`] / [`Engine::parse_many_str`] carries a
/// [`lambek_obs::Trace`] of timestamped stage spans in its report, and
/// the engine retains the last `trace_ring` completed traces for
/// [`Engine::recent_traces`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record per-request stage traces (default `false`). Tracing runs
    /// the lexed str path in staged form (scan, certify, then parse as
    /// separate passes) so the stages can be timed individually — the
    /// staged path is observationally identical to the fused one and
    /// within a few percent of its throughput.
    pub tracing: bool,
    /// How many completed traces [`Engine::recent_traces`] retains
    /// (default 32; minimum 1).
    pub trace_ring: usize,
}

impl Default for ObsConfig {
    fn default() -> ObsConfig {
        ObsConfig {
            tracing: false,
            trace_ring: 32,
        }
    }
}

/// The engine's registered instruments plus the trace ring — built once
/// per engine, shared (`Arc`) into every pooled batch closure.
#[derive(Debug)]
pub(crate) struct Metrics {
    registry: lambek_obs::Registry,
    pub(crate) hits: Arc<lambek_obs::Counter>,
    pub(crate) misses: Arc<lambek_obs::Counter>,
    pub(crate) compiles: Arc<lambek_obs::Counter>,
    pub(crate) hit_lat: Arc<lambek_obs::AtomicHistogram>,
    pub(crate) miss_lat: Arc<lambek_obs::AtomicHistogram>,
    pub(crate) requests: Arc<lambek_obs::Counter>,
    pub(crate) tokens: Arc<lambek_obs::Counter>,
    pub(crate) traces: lambek_obs::TraceRing,
    pub(crate) tracing: bool,
}

impl Metrics {
    fn new(config: &ObsConfig) -> Metrics {
        let registry = lambek_obs::Registry::new();
        let hits = registry.counter(
            "lambekd_cache_hits_total",
            "Pipeline-cache lookups answered from the cache",
        );
        let misses = registry.counter(
            "lambekd_cache_misses_total",
            "Pipeline-cache lookups that required compilation",
        );
        let compiles = registry.counter(
            "lambekd_cache_compiles_total",
            "Pipelines actually compiled",
        );
        let hit_lat = registry.histogram(
            "lambekd_cache_hit_latency_seconds",
            "End-to-end latency of cache hits (mutex wait + probe)",
        );
        let miss_lat = registry.histogram(
            "lambekd_cache_miss_latency_seconds",
            "End-to-end latency of cache misses (mutex wait + compilation)",
        );
        let requests = registry.counter(
            "lambekd_requests_total",
            "Requests served through the engine's batch entrances",
        );
        let tokens = registry.counter(
            "lambekd_tokens_total",
            "Yield tokens across accepted raw-text batch parses",
        );
        Metrics {
            registry,
            hits,
            misses,
            compiles,
            hit_lat,
            miss_lat,
            requests,
            tokens,
            traces: lambek_obs::TraceRing::new(config.trace_ring),
            tracing: config.tracing,
        }
    }
}

/// Cache observability counters (see [`Engine::stats`]).
///
/// `hits + misses` is the number of [`Engine::get_or_compile`] calls;
/// `compiles` counts actual pipeline constructions — the compile-once
/// guarantee is `compiles ≤ distinct specs` (a miss that loses a race
/// with a concurrent miss on the same spec is counted in `misses` but
/// performs no compilation, so `compiles ≤ misses`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Pipelines actually compiled.
    pub compiles: u64,
    /// Pipelines currently resident.
    pub entries: usize,
    /// End-to-end latency of cache hits (mutex wait + probe). Only
    /// successful lookups are recorded.
    pub hit_latency: LatencyHistogram,
    /// End-to-end latency of cache misses — mutex wait plus the full
    /// pipeline compilation. Failed compilations are not recorded.
    pub miss_latency: LatencyHistogram,
}

/// Full serving-tier observability (see [`Engine::engine_stats`]):
/// the cache counters of [`CacheStats`] plus eviction, compile-latency
/// and worker-pool counters.
///
/// Counter algebra a healthy engine maintains (asserted by the stress
/// suite): `hits + misses == get_or_compile calls`,
/// `compiles == misses` (the mutex leaves no race window),
/// `evictions ≤ compiles`, and
/// `cache.entries == compiles − evictions − cleared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// The hit/miss/compile counters.
    pub cache: CacheStats,
    /// Entries evicted by the cost-weighted policy (operator
    /// [`Engine::clear`]s are not counted).
    pub evictions: u64,
    /// Sum of the compile times of the currently resident pipelines —
    /// the quantity [`CacheConfig::max_weight`] bounds.
    pub resident_weight: Duration,
    /// Total wall-clock compile time across all compilations.
    pub compile_total: Duration,
    /// The single slowest compilation.
    pub compile_max: Duration,
    /// Worker-pool counters (all zero until the first pooled batch).
    pub pool: PoolStats,
}

/// A serving engine: a thread-safe compile-once cache of verified parser
/// pipelines, a persistent worker pool for batches, and the park/resume
/// endpoint for stream sessions.
///
/// `Engine` is cheap to share (`&Engine` is all the batch workers need)
/// and holds its lock only around cache probes — parsing itself runs on
/// lock-free shared [`CompiledPipeline`]s.
#[derive(Debug)]
pub struct Engine {
    cache: Mutex<PipelineCache>,
    /// The persistent worker pool, spawned lazily on the first batch
    /// that wants parallelism and kept alive for the engine's lifetime.
    pool: OnceLock<WorkerPool>,
    metrics: Arc<Metrics>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Creates an empty engine with the default (generous) cache
    /// bounds; see [`Engine::with_config`] for tight ones.
    pub fn new() -> Engine {
        Engine::with_config(CacheConfig::default())
    }

    /// Creates an empty engine whose pipeline cache enforces `config`
    /// (tracing off; see [`Engine::with_obs`]).
    pub fn with_config(config: CacheConfig) -> Engine {
        Engine::with_obs(config, ObsConfig::default())
    }

    /// Creates an empty engine with explicit cache *and* observability
    /// configuration — the constructor to use when per-request stage
    /// tracing ([`ObsConfig::tracing`]) is wanted.
    pub fn with_obs(config: CacheConfig, obs: ObsConfig) -> Engine {
        Engine {
            cache: Mutex::new(PipelineCache::new(config)),
            pool: OnceLock::new(),
            metrics: Arc::new(Metrics::new(&obs)),
        }
    }

    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(0))
    }

    /// Returns the compiled pipeline for `spec`, compiling it on first
    /// use and serving the shared `Arc` afterwards. A hit refreshes the
    /// entry's eviction credit; a miss may evict other entries to stay
    /// within the engine's [`CacheConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the spec does not compile
    /// (e.g. regex syntax errors); failed compilations are not cached.
    pub fn get_or_compile(
        &self,
        spec: &PipelineSpec,
    ) -> Result<Arc<CompiledPipeline>, EngineError> {
        self.get_or_compile_timed(spec).map(|(p, _, _)| p)
    }

    /// [`Engine::get_or_compile`] reporting how the time was spent:
    /// the probe duration (mutex wait + cache lookup) and, on a miss,
    /// the compile duration — the batch entrances stamp these into each
    /// request's trace as the `cache` and `compile` spans.
    fn get_or_compile_timed(
        &self,
        spec: &PipelineSpec,
    ) -> Result<(Arc<CompiledPipeline>, Duration, Option<Duration>), EngineError> {
        // One mutex for the whole probe-or-compile: concurrent misses
        // on the same spec compile exactly once, which keeps the
        // compile-once contract strict (not merely eventual). The
        // latency clock starts before the lock, so the histograms see
        // what callers see: a hit stuck behind a long compile lands in
        // a high hit bucket, which is exactly the signal an operator
        // wants from these counters.
        let t0 = std::time::Instant::now();
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        if let Some(hit) = cache.get(spec) {
            self.metrics.hits.inc();
            let lookup = t0.elapsed();
            self.metrics.hit_lat.record(lookup);
            return Ok((hit, lookup, None));
        }
        self.metrics.misses.inc();
        self.metrics.compiles.inc();
        let lookup = t0.elapsed();
        let tc = std::time::Instant::now();
        let compiled = Arc::new(spec.compile()?);
        let compile = tc.elapsed();
        cache.insert(spec.clone(), compiled.clone());
        self.metrics.miss_lat.record(t0.elapsed());
        Ok((compiled, lookup, Some(compile)))
    }

    /// Parses every input against the pipeline for `spec`, sharding the
    /// batch over the engine's persistent worker pool (`workers` caps
    /// the shard count; 1 = sequential in the calling thread, 0 = one
    /// shard per pool worker). Reports come back in input order. An
    /// empty batch short-circuits: no pool submission, no shards.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be built;
    /// per-input failures are reported in the corresponding
    /// [`ParseReport`], never as an `Err`.
    pub fn parse_many(
        &self,
        spec: &PipelineSpec,
        inputs: &[GString],
        workers: usize,
    ) -> Result<Vec<ParseReport>, EngineError> {
        self.parse_many_with(spec, inputs, workers, RequestLimits::none())
    }

    /// [`Engine::parse_many`] with per-request admission limits: inputs
    /// over the token budget, or picked up after the deadline, come
    /// back as [`ReportOutcome::BudgetExceeded`] /
    /// [`ReportOutcome::DeadlineExceeded`] instead of being parsed.
    ///
    /// # Errors
    ///
    /// As [`Engine::parse_many`].
    pub fn parse_many_with(
        &self,
        spec: &PipelineSpec,
        inputs: &[GString],
        workers: usize,
        limits: RequestLimits,
    ) -> Result<Vec<ParseReport>, EngineError> {
        let epoch = Instant::now();
        let (pipeline, lookup, compile) = self.get_or_compile_timed(spec)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut ctx = batch::ObsCtx {
            metrics: self.metrics.clone(),
            label: spec.label(),
            epoch,
            cache_lookup: lookup,
            compile,
            enqueue: epoch.elapsed(),
        };
        if workers == 1 {
            return Ok(inputs
                .iter()
                .enumerate()
                .map(|(i, w)| batch::parse_one_limited(&pipeline, i, w, &limits, Some(&ctx)))
                .collect());
        }
        // The pool's workers are long-lived ('static), so shards own
        // their inputs: one GString clone per request, paid against the
        // per-call thread spawn/join the pool amortizes away.
        let items: Vec<GString> = inputs.to_vec();
        ctx.enqueue = epoch.elapsed();
        Ok(self.pool().run_batch(items, workers, move |i, w| {
            batch::parse_one_limited(&pipeline, i, w, &limits, Some(&ctx))
        }))
    }

    /// Parses every *raw-text* input against the pipeline for `spec`
    /// (the batch form of [`CompiledPipeline::parse_str`]): for lexed
    /// pipelines each input runs certified lexing and then the
    /// certified CFG backend, with rejections carrying byte offsets
    /// into the text. Fan-out and ordering as [`Engine::parse_many`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be
    /// built; per-input failures land in the matching
    /// [`StrParseReport`].
    pub fn parse_many_str(
        &self,
        spec: &PipelineSpec,
        inputs: &[&str],
        workers: usize,
    ) -> Result<Vec<StrParseReport>, EngineError> {
        self.parse_many_str_with(spec, inputs, workers, RequestLimits::none())
    }

    /// [`Engine::parse_many_str`] with per-request admission limits
    /// (the budget counts raw bytes).
    ///
    /// # Errors
    ///
    /// As [`Engine::parse_many_str`].
    pub fn parse_many_str_with(
        &self,
        spec: &PipelineSpec,
        inputs: &[&str],
        workers: usize,
        limits: RequestLimits,
    ) -> Result<Vec<StrParseReport>, EngineError> {
        let epoch = Instant::now();
        let (pipeline, lookup, compile) = self.get_or_compile_timed(spec)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        let mut ctx = batch::ObsCtx {
            metrics: self.metrics.clone(),
            label: spec.label(),
            epoch,
            cache_lookup: lookup,
            compile,
            enqueue: epoch.elapsed(),
        };
        if workers == 1 {
            return Ok(inputs
                .iter()
                .enumerate()
                .map(|(i, s)| batch::parse_one_str_limited(&pipeline, i, s, &limits, Some(&ctx)))
                .collect());
        }
        let items: Vec<String> = inputs.iter().map(|s| (*s).to_owned()).collect();
        ctx.enqueue = epoch.elapsed();
        Ok(self.pool().run_batch(items, workers, move |i, s| {
            batch::parse_one_str_limited(&pipeline, i, s, &limits, Some(&ctx))
        }))
    }

    /// Certified lexing with speculative parallel chunked scanning:
    /// splits `input` at guessed char-boundary seams, fans the
    /// byte-sliced chunk scans ([`lambek_lex::LexAutomaton::lex_chunk`])
    /// across the engine's persistent worker pool, joins them by
    /// memoized replay ([`lambek_lex::LexAutomaton::join_chunks`] —
    /// re-munching only seam-straddling lexemes), and feeds the joined
    /// chain through the incremental span-based certifier. The outcome
    /// is observationally identical to the sequential
    /// [`lambek_lex::CertifiedLexer::lex`]: same tokens, same spans,
    /// same lex error — only the wall-clock differs.
    ///
    /// `chunks` caps the split (1 = sequential on the calling thread;
    /// tiny inputs collapse to fewer chunks). The pool is not
    /// reentrant, so do not call this from inside a pooled batch job.
    ///
    /// # Errors
    ///
    /// [`EngineError::Compile`] if the pipeline cannot be built,
    /// [`EngineError::NotLexed`] if `spec` is not a lexed CFG pipeline,
    /// and [`EngineError::Contract`] if certification of the joined
    /// chain fails (a serving-layer bug, never an input error — inputs
    /// that do not lex come back as [`LexedOutcome::Reject`]).
    pub fn lex_str_parallel(
        &self,
        spec: &PipelineSpec,
        input: &str,
        chunks: usize,
    ) -> Result<LexedOutcome, EngineError> {
        let pipeline = self.get_or_compile(spec)?;
        let Some(backend) = pipeline.lexed_backend() else {
            return Err(EngineError::NotLexed(spec.label()));
        };
        let lexer = backend.lexer();
        let starts = lambek_lex::chunk_starts(input, chunks);
        let scanned: Vec<LexChunk> = if starts.len() <= 1 {
            // Nothing to fan out: one chunk covering the whole input is
            // exactly the sequential scan.
            vec![lexer.automaton().lex_chunk(input, 0, input.len())]
        } else {
            // Pool jobs are 'static: share the text via Arc and clone
            // the (Arc-backed) automaton into the closure. One shard
            // per chunk so distinct workers can steal distinct seams.
            let text: Arc<str> = Arc::from(input);
            let auto = lexer.automaton().clone();
            let ranges: Vec<(usize, usize)> = starts
                .iter()
                .enumerate()
                .map(|(k, &s)| (s, starts.get(k + 1).copied().unwrap_or(input.len())))
                .collect();
            let shards = ranges.len();
            self.pool().run_batch(ranges, shards, move |_, &(s, e)| {
                auto.lex_chunk(&text, s, e)
            })
        };
        let joined = match lexer.automaton().join_chunks(input, &scanned) {
            Ok(lexemes) => lexemes,
            Err(e) => return Ok(LexedOutcome::Reject(e)),
        };
        // Certify the joined chain exactly as the sequential lexer
        // would: span tiling plus per-lexeme derivative membership,
        // then materialize the certified token stream.
        let mut cert = lexer.certifier();
        for l in &joined {
            cert.check_raw(input, l)
                .map_err(|e| EngineError::Contract(e.to_string()))?;
        }
        cert.finish(input)
            .map_err(|e| EngineError::Contract(e.to_string()))?;
        let tokens: Vec<_> = joined.into_iter().map(|l| l.to_token(input)).collect();
        Ok(LexedOutcome::Tokens(TokenStream::from_tokens(tokens)))
    }

    /// Opens a push-mode streaming parser for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be built,
    /// or [`EngineError::NoStreamingBackend`] if it is not DFA-backed.
    pub fn stream(&self, spec: &PipelineSpec) -> Result<StreamParser, EngineError> {
        StreamParser::open(self.get_or_compile(spec)?)
    }

    /// Revives a parked stream session (see [`StreamParser::snapshot`])
    /// against the pipeline for `spec` — on this engine or any other,
    /// in this process or another. The blob's checksum, version and
    /// structural spec fingerprint are verified, and every piece of
    /// restored parser state is re-validated against the compiled
    /// pipeline (partial derivations re-certified against their claims,
    /// lexemes re-certified against the raw text), so a resumed session
    /// certifies exactly what an uninterrupted one would — a corrupt or
    /// mismatched blob is a structured [`SessionError`], never a
    /// mis-certification.
    ///
    /// # Errors
    ///
    /// [`SessionError::Corrupt`] for damaged blobs,
    /// [`SessionError::Version`] / [`SessionError::SpecMismatch`] for
    /// incompatible ones, [`SessionError::Invalid`] for well-formed
    /// blobs whose state fails re-validation, and
    /// [`SessionError::Engine`] if the pipeline itself cannot be built.
    pub fn resume(
        &self,
        spec: &PipelineSpec,
        state: &SessionState,
    ) -> Result<StreamParser, SessionError> {
        let pipeline = self.get_or_compile(spec).map_err(SessionError::Engine)?;
        StreamParser::resume(pipeline, state)
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.metrics.hits.get(),
            misses: self.metrics.misses.get(),
            compiles: self.metrics.compiles.get(),
            entries: self.cache.lock().expect("engine cache poisoned").len(),
            hit_latency: self.metrics.hit_lat.snapshot(),
            miss_latency: self.metrics.miss_lat.snapshot(),
        }
    }

    /// The full serving-tier counters: cache, eviction, compile-latency
    /// and worker-pool observability in one structure.
    pub fn engine_stats(&self) -> EngineStats {
        let (evictions, resident_weight, compile_total, compile_max, entries) = {
            let cache = self.cache.lock().expect("engine cache poisoned");
            (
                cache.evictions(),
                cache.resident_weight(),
                cache.compile_total(),
                cache.compile_max(),
                cache.len(),
            )
        };
        EngineStats {
            cache: CacheStats {
                hits: self.metrics.hits.get(),
                misses: self.metrics.misses.get(),
                compiles: self.metrics.compiles.get(),
                entries,
                hit_latency: self.metrics.hit_lat.snapshot(),
                miss_latency: self.metrics.miss_lat.snapshot(),
            },
            evictions,
            resident_weight,
            compile_total,
            compile_max,
            pool: self.pool.get().map(WorkerPool::stats).unwrap_or_default(),
        }
    }

    /// Assembles every instrument the engine knows about into encoder
    /// input: the registered per-engine instruments, the dynamic cache
    /// and pool gauges, and the process-wide lex/LR/certifier hot-path
    /// probes.
    fn gather_metrics(&self) -> Vec<lambek_obs::Metric> {
        use lambek_obs::{Metric, MetricValue, Sample};
        let mut out = self.metrics.registry.gather();
        let (evictions, resident_weight, compile_total, compile_max, entries) = {
            let cache = self.cache.lock().expect("engine cache poisoned");
            (
                cache.evictions(),
                cache.resident_weight(),
                cache.compile_total(),
                cache.compile_max(),
                cache.len(),
            )
        };
        out.push(Metric::single(
            "lambekd_cache_entries",
            "Pipelines currently resident in the cache",
            MetricValue::Gauge(entries as f64),
        ));
        out.push(Metric::single(
            "lambekd_cache_evictions_total",
            "Entries evicted by the cost-weighted policy",
            MetricValue::Counter(evictions),
        ));
        out.push(Metric::single(
            "lambekd_cache_resident_weight_seconds",
            "Sum of resident pipelines' compile times (the evictor's weight)",
            MetricValue::Gauge(resident_weight.as_secs_f64()),
        ));
        out.push(Metric::single(
            "lambekd_compile_seconds_total",
            "Total wall-clock compile time across all compilations",
            MetricValue::Gauge(compile_total.as_secs_f64()),
        ));
        out.push(Metric::single(
            "lambekd_compile_max_seconds",
            "The single slowest compilation",
            MetricValue::Gauge(compile_max.as_secs_f64()),
        ));
        let pool = self.pool.get().map(WorkerPool::stats).unwrap_or_default();
        out.push(Metric::single(
            "lambekd_pool_workers",
            "Worker threads in the persistent pool (0 until first use)",
            MetricValue::Gauge(pool.workers as f64),
        ));
        out.push(Metric::single(
            "lambekd_pool_submitted_total",
            "Jobs submitted to the pool",
            MetricValue::Counter(pool.submitted),
        ));
        out.push(Metric::single(
            "lambekd_pool_executed_total",
            "Jobs executed by pool workers",
            MetricValue::Counter(pool.executed),
        ));
        out.push(Metric::single(
            "lambekd_pool_steals_total",
            "Jobs a worker stole from a sibling's queue",
            MetricValue::Counter(pool.steals),
        ));
        out.push(Metric::single(
            "lambekd_pool_batches_total",
            "Batches run on the pool",
            MetricValue::Counter(pool.batches),
        ));
        if let Some(p) = self.pool.get() {
            out.push(Metric {
                name: "lambekd_pool_queue_depth".to_string(),
                help: "Jobs currently waiting in each worker's queue".to_string(),
                samples: p
                    .queue_depths()
                    .into_iter()
                    .enumerate()
                    .map(|(shard, depth)| Sample {
                        labels: vec![("shard".to_string(), shard.to_string())],
                        value: MetricValue::Gauge(depth as f64),
                    })
                    .collect(),
            });
        }
        out.push(Metric::single(
            "lambekd_traces_total",
            "Per-request traces completed (tracing engines only)",
            MetricValue::Counter(self.metrics.traces.pushed()),
        ));
        // The hot-path probes are process-wide statics (the lex and LR
        // drivers are engine-agnostic), so under several engines these
        // report the process total, not this engine's share.
        let lex = lambek_lex::probes::snapshot();
        out.push(Metric::single(
            "lambekd_lex_scan_bytes_total",
            "Bytes walked by the maximal-munch scanner (process-wide)",
            MetricValue::Counter(lex.scan_bytes),
        ));
        out.push(Metric {
            name: "lambekd_lex_tokens_total".to_string(),
            help: "Lexemes settled by the scanner, by scan lane (process-wide)".to_string(),
            samples: vec![
                Sample {
                    labels: vec![("lane".to_string(), "fast".to_string())],
                    value: MetricValue::Counter(lex.fast_lane_tokens),
                },
                Sample {
                    labels: vec![("lane".to_string(), "fallback".to_string())],
                    value: MetricValue::Counter(lex.fallback_tokens),
                },
            ],
        });
        out.push(Metric::single(
            "lambekd_lex_backtracks_total",
            "Maximal-munch backtracks (scans read past the accepted end; process-wide)",
            MetricValue::Counter(lex.backtracks),
        ));
        out.push(Metric {
            name: "lambekd_certifier_verdict_lookups_total".to_string(),
            help: "Certifier derivative-cache lookups, by result (process-wide)".to_string(),
            samples: vec![
                Sample {
                    labels: vec![("result".to_string(), "hit".to_string())],
                    value: MetricValue::Counter(lex.verdict_cache_hits),
                },
                Sample {
                    labels: vec![("result".to_string(), "miss".to_string())],
                    value: MetricValue::Counter(lex.verdict_cache_misses),
                },
            ],
        });
        let lr = lambek_lr::probes::snapshot();
        out.push(Metric::single(
            "lambekd_lr_shifts_total",
            "Terminals shifted by completed LR drives (process-wide)",
            MetricValue::Counter(lr.shifts),
        ));
        out.push(Metric::single(
            "lambekd_lr_reduces_total",
            "Reductions performed by completed LR drives (process-wide)",
            MetricValue::Counter(lr.reduces),
        ));
        out.push(Metric::single(
            "lambekd_lr_claims_checked_total",
            "Certification claims discharged by the LR driver (process-wide)",
            MetricValue::Counter(lr.claims_checked),
        ));
        let frontend = lambek_frontend::probes::snapshot();
        out.push(Metric::single(
            "lambekd_frontend_texts_total",
            "Grammar-language texts submitted for compilation (process-wide)",
            MetricValue::Counter(frontend.texts_compiled),
        ));
        out.push(Metric::single(
            "lambekd_frontend_elab_failures_total",
            "Text submissions rejected by parse or elaboration (process-wide)",
            MetricValue::Counter(frontend.elab_failures),
        ));
        out.push(Metric::single(
            "lambekd_frontend_conflict_rejects_total",
            "Text submissions rejected for LALR conflicts (process-wide)",
            MetricValue::Counter(frontend.conflict_rejects),
        ));
        out.push(Metric::single(
            "lambekd_frontend_budget_sheds_total",
            "Text submissions shed by a compile-time budget (process-wide)",
            MetricValue::Counter(frontend.budget_sheds),
        ));
        out
    }

    /// Every engine metric in the Prometheus text exposition format
    /// (version 0.0.4) — cache, pool, trace, lex, LR and certifier
    /// instruments, ready to serve from a `/metrics` endpoint.
    pub fn metrics_text(&self) -> String {
        lambek_obs::prometheus_text(&self.gather_metrics())
    }

    /// Every engine metric as a stable JSON snapshot (metrics sorted by
    /// name, labels sorted by key, histograms lossless in nanoseconds).
    pub fn metrics_json(&self) -> String {
        lambek_obs::json_text(&self.gather_metrics())
    }

    /// The most recently completed per-request traces, newest first —
    /// empty unless the engine was built with [`ObsConfig::tracing`].
    /// The ring retains at most [`ObsConfig::trace_ring`] traces.
    pub fn recent_traces(&self) -> Vec<lambek_obs::Trace> {
        self.metrics.traces.recent()
    }

    /// The current depth of each pool worker's queue (empty until the
    /// pool first runs a batch). Each depth is exact per queue; the
    /// vector is not a cross-queue atomic snapshot.
    pub fn pool_queue_depths(&self) -> Vec<usize> {
        self.pool
            .get()
            .map(WorkerPool::queue_depths)
            .unwrap_or_default()
    }

    /// Drops every cached pipeline (counters are kept; operator clears
    /// do not count as evictions).
    pub fn clear(&self) {
        self.cache.lock().expect("engine cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::alphabet::Alphabet;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<CompiledPipeline>();
        assert_send_sync::<Arc<CompiledPipeline>>();
    }

    #[test]
    fn bad_regex_is_a_compile_error_and_not_cached() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "(((");
        assert!(matches!(
            engine.get_or_compile(&spec),
            Err(EngineError::Compile(_))
        ));
        assert_eq!(engine.stats().entries, 0);
        // The failure is re-attempted (and re-fails) on the next call.
        assert!(engine.get_or_compile(&spec).is_err());
        assert_eq!(engine.stats().misses, 2);
    }

    #[test]
    fn lex_str_parallel_matches_the_sequential_lexer() {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let lexer = pipeline.lexed_backend().unwrap().lexer();
        let good = "12 + (345 + 6) + 78";
        let bad = "12 + X + 34";
        for chunks in [1, 2, 3, 4, 8, 64] {
            assert_eq!(
                engine.lex_str_parallel(&spec, good, chunks).unwrap(),
                lexer.lex(good).unwrap(),
                "{chunks} chunks on accepting input"
            );
            assert_eq!(
                engine.lex_str_parallel(&spec, bad, chunks).unwrap(),
                lexer.lex(bad).unwrap(),
                "{chunks} chunks on rejecting input"
            );
            assert_eq!(
                engine.lex_str_parallel(&spec, "", chunks).unwrap(),
                lexer.lex("").unwrap(),
                "{chunks} chunks on empty input"
            );
        }
    }

    #[test]
    fn lex_str_parallel_rejects_unlexed_pipelines() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "a*b");
        assert!(matches!(
            engine.lex_str_parallel(&spec, "aab", 4),
            Err(EngineError::NotLexed(_))
        ));
    }

    #[test]
    fn cache_latency_histograms_count_hits_and_misses() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(4);
        assert_eq!(engine.stats().hit_latency.count(), 0);
        assert_eq!(engine.stats().miss_latency.count(), 0);
        engine.get_or_compile(&spec).unwrap();
        engine.get_or_compile(&spec).unwrap();
        engine.get_or_compile(&spec).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.miss_latency.count(), 1);
        assert_eq!(stats.hit_latency.count(), 2);
        // The quantile bound is monotone and sane: a compile takes at
        // least a microsecond on any hardware.
        let p100 = stats.miss_latency.quantile_nanos(1.0).unwrap();
        assert!(p100 >= stats.miss_latency.quantile_nanos(0.5).unwrap());
        assert!(p100 >= 1_000, "compile latency bound {p100}ns");
        // Failed compilations record no sample.
        let bad = PipelineSpec::regex(Alphabet::abc(), "(((");
        assert!(engine.get_or_compile(&bad).is_err());
        assert_eq!(engine.stats().miss_latency.count(), 1);
        assert!(engine.stats().hit_latency.quantile_nanos(0.99).is_some());
        assert_eq!(LatencyHistogram::default().quantile_nanos(0.5), None);
        assert_eq!(LatencyHistogram::bucket_floor_nanos(0), 0);
        assert_eq!(LatencyHistogram::bucket_floor_nanos(10), 1024);
    }

    #[test]
    fn clear_evicts_but_keeps_counters() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(8);
        engine.get_or_compile(&spec).unwrap();
        assert_eq!(engine.stats().entries, 1);
        engine.clear();
        assert_eq!(engine.stats().entries, 0);
        engine.get_or_compile(&spec).unwrap();
        assert_eq!(engine.stats().compiles, 2);
    }
}
