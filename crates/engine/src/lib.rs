//! # lambek-engine — the compiled-parser serving layer
//!
//! The verified pipelines of this workspace (Corollary 4.12's regex
//! parser, Theorem 4.13's Dyck parser, Theorem 4.14's expression parser)
//! are *constructions*: every call rebuilds Thompson NFAs, determinizes,
//! and composes equivalences. That is the right shape for reproducing the
//! paper, and the wrong shape for serving traffic. This crate turns the
//! one-shot constructions into a reusable engine:
//!
//! * [`Engine`] — a thread-safe cache of compiled pipelines keyed by
//!   [`PipelineSpec`] (alphabet + grammar), so each pipeline is compiled
//!   once and shared (`Arc`) across requests and threads; specs compare
//!   and hash by an interned id-based [`SpecKey`] (computed once at
//!   construction via [`lambek_core::intern`]), so cache lookups never
//!   deep-compare alphabets or patterns;
//! * [`Engine::parse_many`] — batch parsing sharded over the engine's
//!   persistent work-stealing worker pool, returning one structured
//!   [`ParseReport`] per input (outcome, intrinsic yield check, timing);
//!   the per-call [`std::thread::scope`] baseline survives as
//!   [`parse_batch`];
//! * [`StreamParser`] — push-style incremental input for DFA-backed and
//!   LR-backed pipelines: each pushed symbol is one dense-table
//!   transition (or one LR shift plus its pending reductions), and
//!   [`StreamParser::finish`] produces the fully verified parse;
//! * [`PipelineSpec::cfg`] — arbitrary context-free grammars served
//!   through the certified LR(1) subsystem (`lambek-lr`): deterministic
//!   grammars get linear-time dense-table parsing (with every emitted
//!   tree re-validated by the core derivation checker), grammars with
//!   LR conflicts fall back to the Earley baseline, and the conflict
//!   report is preserved on the compiled [`CfgBackend`].
//!
//! Everything here rides on the `Send + Sync` parse-transformer layer
//! (grammars and transformers are `Arc`-shared) and on the dense
//! flat transition tables of
//! [`lambek_automata::dfa::Dfa`] — the engine holds no locks while
//! parsing, only while touching the pipeline cache (a hit is one
//! id-keyed map probe plus a credit refresh under a mutex; a miss holds
//! the mutex for the duration of the one compilation, serializing
//! lookups until the pipeline is cached — the strict compile-once
//! contract).
//!
//! The serving tier on top of the pipelines:
//!
//! * a persistent work-stealing worker pool (created once per engine,
//!   lazily) that [`Engine::parse_many`]/[`Engine::parse_many_str`]
//!   submit request shards to, with per-request admission limits
//!   ([`RequestLimits`]) surfaced as structured report outcomes;
//! * a cost-weighted evicting pipeline cache ([`CacheConfig`]): entry
//!   weight is the *measured* compile time, so expensive lexed-CFG
//!   pipelines outlive swarms of cheap regex ones;
//! * serializable stream sessions: [`StreamParser::snapshot`] parks a
//!   push-mode session as a versioned, checksummed byte blob
//!   ([`SessionState`]) and [`Engine::resume`] re-validates and revives
//!   it — on this or any other engine — with the certification
//!   contract intact.
//!
//! ```
//! use lambek_core::alphabet::Alphabet;
//! use lambek_engine::{Engine, PipelineSpec};
//!
//! let engine = Engine::new();
//! let spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
//! let pipeline = engine.get_or_compile(&spec).unwrap();
//!
//! let w = pipeline.alphabet().parse_str("aab").unwrap();
//! assert!(pipeline.parse(&w).unwrap().is_accept());
//!
//! // The second lookup is a cache hit: no recompilation.
//! let again = engine.get_or_compile(&spec).unwrap();
//! assert_eq!(engine.stats().compiles, 1);
//! assert!(std::sync::Arc::ptr_eq(&pipeline, &again));
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

mod batch;
mod cache;
mod pipeline;
mod pool;
mod session;
mod stream;

pub use batch::{
    parse_batch, parse_batch_str, ParseReport, ReportOutcome, RequestLimits, StrParseReport,
    StrReportOutcome,
};
pub use cache::CacheConfig;
pub use pipeline::{
    CfgBackend, CfgMode, CompiledPipeline, DfaBackend, LexedCfgBackend, PipelineSpec, SpecKey,
    StrOutcome,
};
pub use pool::PoolStats;
pub use session::{SessionError, SessionState, SESSION_VERSION};
pub use stream::StreamParser;

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use lambek_core::alphabet::GString;
use lambek_lex::{LexChunk, LexedOutcome, TokenStream};

use cache::PipelineCache;
use pool::WorkerPool;

/// Errors surfaced by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The pipeline failed to compile (bad regex syntax, equivalences
    /// that do not compose, …).
    Compile(String),
    /// A streaming parser was requested for a pipeline with no DFA
    /// backend (e.g. the lookahead-automaton expression pipeline).
    NoStreamingBackend(String),
    /// Parallel lexing ([`Engine::lex_str_parallel`]) was requested for
    /// a pipeline that is not a lexed CFG pipeline.
    NotLexed(String),
    /// A certified component violated its own contract at serve time
    /// (e.g. the lexer emitted a lexeme the derivative checker rejects).
    /// This signals a bug in the serving layer, never an input error —
    /// malformed inputs come back as structured rejections.
    Contract(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Compile(m) => write!(f, "pipeline compilation failed: {m}"),
            EngineError::NoStreamingBackend(m) => {
                write!(f, "pipeline {m} has no DFA backend for streaming")
            }
            EngineError::NotLexed(m) => {
                write!(f, "pipeline {m} has no certified lexer for parallel lexing")
            }
            EngineError::Contract(m) => write!(f, "certification contract violated: {m}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Number of log₂ buckets in a [`LatencyHistogram`]: bucket `i` counts
/// observations in `[2^i, 2^{i+1})` nanoseconds (bucket 0 also absorbs
/// sub-nanosecond readings, the last bucket is open-ended at ~4.3 s).
pub const LATENCY_BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram snapshot (see
/// [`CacheStats::hit_latency`] / [`CacheStats::miss_latency`]).
///
/// The live counters are lock-free relaxed atomics — recording a sample
/// is one `leading_zeros` and one `fetch_add` — so the histograms cost
/// nothing measurable on the lookup path; a snapshot is a plain `Copy`
/// array of the counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyHistogram {
    /// `buckets[i]` = samples observed in `[2^i, 2^{i+1})` ns.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The inclusive lower bound of bucket `i`, in nanoseconds.
    pub fn bucket_floor_nanos(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// An upper bound (in nanoseconds, bucket granularity) on the `q`
    /// quantile of the recorded samples — e.g. `quantile_nanos(0.99)`
    /// bounds the p99. Returns `None` for an empty histogram.
    pub fn quantile_nanos(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }
}

/// Cache observability counters (see [`Engine::stats`]).
///
/// `hits + misses` is the number of [`Engine::get_or_compile`] calls;
/// `compiles` counts actual pipeline constructions — the compile-once
/// guarantee is `compiles ≤ distinct specs` (a miss that loses a race
/// with a concurrent miss on the same spec is counted in `misses` but
/// performs no compilation, so `compiles ≤ misses`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that required compilation.
    pub misses: u64,
    /// Pipelines actually compiled.
    pub compiles: u64,
    /// Pipelines currently resident.
    pub entries: usize,
    /// End-to-end latency of cache hits (mutex wait + probe). Only
    /// successful lookups are recorded.
    pub hit_latency: LatencyHistogram,
    /// End-to-end latency of cache misses — mutex wait plus the full
    /// pipeline compilation. Failed compilations are not recorded.
    pub miss_latency: LatencyHistogram,
}

/// Full serving-tier observability (see [`Engine::engine_stats`]):
/// the cache counters of [`CacheStats`] plus eviction, compile-latency
/// and worker-pool counters.
///
/// Counter algebra a healthy engine maintains (asserted by the stress
/// suite): `hits + misses == get_or_compile calls`,
/// `compiles == misses` (the mutex leaves no race window),
/// `evictions ≤ compiles`, and
/// `cache.entries == compiles − evictions − cleared`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// The hit/miss/compile counters.
    pub cache: CacheStats,
    /// Entries evicted by the cost-weighted policy (operator
    /// [`Engine::clear`]s are not counted).
    pub evictions: u64,
    /// Sum of the compile times of the currently resident pipelines —
    /// the quantity [`CacheConfig::max_weight`] bounds.
    pub resident_weight: Duration,
    /// Total wall-clock compile time across all compilations.
    pub compile_total: Duration,
    /// The single slowest compilation.
    pub compile_max: Duration,
    /// Worker-pool counters (all zero until the first pooled batch).
    pub pool: PoolStats,
}

/// A serving engine: a thread-safe compile-once cache of verified parser
/// pipelines, a persistent worker pool for batches, and the park/resume
/// endpoint for stream sessions.
///
/// `Engine` is cheap to share (`&Engine` is all the batch workers need)
/// and holds its lock only around cache probes — parsing itself runs on
/// lock-free shared [`CompiledPipeline`]s.
#[derive(Debug)]
pub struct Engine {
    cache: Mutex<PipelineCache>,
    /// The persistent worker pool, spawned lazily on the first batch
    /// that wants parallelism and kept alive for the engine's lifetime.
    pool: OnceLock<WorkerPool>,
    hits: AtomicU64,
    misses: AtomicU64,
    compiles: AtomicU64,
    hit_lat: [AtomicU64; LATENCY_BUCKETS],
    miss_lat: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::new()
    }
}

impl Engine {
    /// Creates an empty engine with the default (generous) cache
    /// bounds; see [`Engine::with_config`] for tight ones.
    pub fn new() -> Engine {
        Engine::with_config(CacheConfig::default())
    }

    /// Creates an empty engine whose pipeline cache enforces `config`.
    pub fn with_config(config: CacheConfig) -> Engine {
        Engine {
            cache: Mutex::new(PipelineCache::new(config)),
            pool: OnceLock::new(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            compiles: AtomicU64::new(0),
            hit_lat: std::array::from_fn(|_| AtomicU64::new(0)),
            miss_lat: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn pool(&self) -> &WorkerPool {
        self.pool.get_or_init(|| WorkerPool::new(0))
    }

    /// Records one latency sample into a log₂ histogram: bucket
    /// `floor(log2(ns))`, clamped into range. Relaxed atomics — the
    /// counters are monotone and read only by snapshots.
    fn record_latency(hist: &[AtomicU64; LATENCY_BUCKETS], elapsed: Duration) {
        let n = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX).max(1);
        let idx = (63 - n.leading_zeros() as usize).min(LATENCY_BUCKETS - 1);
        hist[idx].fetch_add(1, Ordering::Relaxed);
    }

    fn snapshot_latency(hist: &[AtomicU64; LATENCY_BUCKETS]) -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|i| hist[i].load(Ordering::Relaxed)),
        }
    }

    /// Returns the compiled pipeline for `spec`, compiling it on first
    /// use and serving the shared `Arc` afterwards. A hit refreshes the
    /// entry's eviction credit; a miss may evict other entries to stay
    /// within the engine's [`CacheConfig`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the spec does not compile
    /// (e.g. regex syntax errors); failed compilations are not cached.
    pub fn get_or_compile(
        &self,
        spec: &PipelineSpec,
    ) -> Result<Arc<CompiledPipeline>, EngineError> {
        // One mutex for the whole probe-or-compile: concurrent misses
        // on the same spec compile exactly once, which keeps the
        // compile-once contract strict (not merely eventual). The
        // latency clock starts before the lock, so the histograms see
        // what callers see: a hit stuck behind a long compile lands in
        // a high hit bucket, which is exactly the signal an operator
        // wants from these counters.
        let t0 = std::time::Instant::now();
        let mut cache = self.cache.lock().expect("engine cache poisoned");
        if let Some(hit) = cache.get(spec) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            Self::record_latency(&self.hit_lat, t0.elapsed());
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let compiled = Arc::new(spec.compile()?);
        cache.insert(spec.clone(), compiled.clone());
        Self::record_latency(&self.miss_lat, t0.elapsed());
        Ok(compiled)
    }

    /// Parses every input against the pipeline for `spec`, sharding the
    /// batch over the engine's persistent worker pool (`workers` caps
    /// the shard count; 1 = sequential in the calling thread, 0 = one
    /// shard per pool worker). Reports come back in input order. An
    /// empty batch short-circuits: no pool submission, no shards.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be built;
    /// per-input failures are reported in the corresponding
    /// [`ParseReport`], never as an `Err`.
    pub fn parse_many(
        &self,
        spec: &PipelineSpec,
        inputs: &[GString],
        workers: usize,
    ) -> Result<Vec<ParseReport>, EngineError> {
        self.parse_many_with(spec, inputs, workers, RequestLimits::none())
    }

    /// [`Engine::parse_many`] with per-request admission limits: inputs
    /// over the token budget, or picked up after the deadline, come
    /// back as [`ReportOutcome::BudgetExceeded`] /
    /// [`ReportOutcome::DeadlineExceeded`] instead of being parsed.
    ///
    /// # Errors
    ///
    /// As [`Engine::parse_many`].
    pub fn parse_many_with(
        &self,
        spec: &PipelineSpec,
        inputs: &[GString],
        workers: usize,
        limits: RequestLimits,
    ) -> Result<Vec<ParseReport>, EngineError> {
        let pipeline = self.get_or_compile(spec)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        if workers == 1 {
            return Ok(inputs
                .iter()
                .enumerate()
                .map(|(i, w)| batch::parse_one_limited(&pipeline, i, w, &limits))
                .collect());
        }
        // The pool's workers are long-lived ('static), so shards own
        // their inputs: one GString clone per request, paid against the
        // per-call thread spawn/join the pool amortizes away.
        let items: Vec<GString> = inputs.to_vec();
        Ok(self.pool().run_batch(items, workers, move |i, w| {
            batch::parse_one_limited(&pipeline, i, w, &limits)
        }))
    }

    /// Parses every *raw-text* input against the pipeline for `spec`
    /// (the batch form of [`CompiledPipeline::parse_str`]): for lexed
    /// pipelines each input runs certified lexing and then the
    /// certified CFG backend, with rejections carrying byte offsets
    /// into the text. Fan-out and ordering as [`Engine::parse_many`].
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be
    /// built; per-input failures land in the matching
    /// [`StrParseReport`].
    pub fn parse_many_str(
        &self,
        spec: &PipelineSpec,
        inputs: &[&str],
        workers: usize,
    ) -> Result<Vec<StrParseReport>, EngineError> {
        self.parse_many_str_with(spec, inputs, workers, RequestLimits::none())
    }

    /// [`Engine::parse_many_str`] with per-request admission limits
    /// (the budget counts raw bytes).
    ///
    /// # Errors
    ///
    /// As [`Engine::parse_many_str`].
    pub fn parse_many_str_with(
        &self,
        spec: &PipelineSpec,
        inputs: &[&str],
        workers: usize,
        limits: RequestLimits,
    ) -> Result<Vec<StrParseReport>, EngineError> {
        let pipeline = self.get_or_compile(spec)?;
        if inputs.is_empty() {
            return Ok(Vec::new());
        }
        if workers == 1 {
            return Ok(inputs
                .iter()
                .enumerate()
                .map(|(i, s)| batch::parse_one_str_limited(&pipeline, i, s, &limits))
                .collect());
        }
        let items: Vec<String> = inputs.iter().map(|s| (*s).to_owned()).collect();
        Ok(self.pool().run_batch(items, workers, move |i, s| {
            batch::parse_one_str_limited(&pipeline, i, s, &limits)
        }))
    }

    /// Certified lexing with speculative parallel chunked scanning:
    /// splits `input` at guessed char-boundary seams, fans the
    /// byte-sliced chunk scans ([`lambek_lex::LexAutomaton::lex_chunk`])
    /// across the engine's persistent worker pool, joins them by
    /// memoized replay ([`lambek_lex::LexAutomaton::join_chunks`] —
    /// re-munching only seam-straddling lexemes), and feeds the joined
    /// chain through the incremental span-based certifier. The outcome
    /// is observationally identical to the sequential
    /// [`lambek_lex::CertifiedLexer::lex`]: same tokens, same spans,
    /// same lex error — only the wall-clock differs.
    ///
    /// `chunks` caps the split (1 = sequential on the calling thread;
    /// tiny inputs collapse to fewer chunks). The pool is not
    /// reentrant, so do not call this from inside a pooled batch job.
    ///
    /// # Errors
    ///
    /// [`EngineError::Compile`] if the pipeline cannot be built,
    /// [`EngineError::NotLexed`] if `spec` is not a lexed CFG pipeline,
    /// and [`EngineError::Contract`] if certification of the joined
    /// chain fails (a serving-layer bug, never an input error — inputs
    /// that do not lex come back as [`LexedOutcome::Reject`]).
    pub fn lex_str_parallel(
        &self,
        spec: &PipelineSpec,
        input: &str,
        chunks: usize,
    ) -> Result<LexedOutcome, EngineError> {
        let pipeline = self.get_or_compile(spec)?;
        let Some(backend) = pipeline.lexed_backend() else {
            return Err(EngineError::NotLexed(spec.label()));
        };
        let lexer = backend.lexer();
        let starts = lambek_lex::chunk_starts(input, chunks);
        let scanned: Vec<LexChunk> = if starts.len() <= 1 {
            // Nothing to fan out: one chunk covering the whole input is
            // exactly the sequential scan.
            vec![lexer.automaton().lex_chunk(input, 0, input.len())]
        } else {
            // Pool jobs are 'static: share the text via Arc and clone
            // the (Arc-backed) automaton into the closure. One shard
            // per chunk so distinct workers can steal distinct seams.
            let text: Arc<str> = Arc::from(input);
            let auto = lexer.automaton().clone();
            let ranges: Vec<(usize, usize)> = starts
                .iter()
                .enumerate()
                .map(|(k, &s)| (s, starts.get(k + 1).copied().unwrap_or(input.len())))
                .collect();
            let shards = ranges.len();
            self.pool().run_batch(ranges, shards, move |_, &(s, e)| {
                auto.lex_chunk(&text, s, e)
            })
        };
        let joined = match lexer.automaton().join_chunks(input, &scanned) {
            Ok(lexemes) => lexemes,
            Err(e) => return Ok(LexedOutcome::Reject(e)),
        };
        // Certify the joined chain exactly as the sequential lexer
        // would: span tiling plus per-lexeme derivative membership,
        // then materialize the certified token stream.
        let mut cert = lexer.certifier();
        for l in &joined {
            cert.check_raw(input, l)
                .map_err(|e| EngineError::Contract(e.to_string()))?;
        }
        cert.finish(input)
            .map_err(|e| EngineError::Contract(e.to_string()))?;
        let tokens: Vec<_> = joined.into_iter().map(|l| l.to_token(input)).collect();
        Ok(LexedOutcome::Tokens(TokenStream::from_tokens(tokens)))
    }

    /// Opens a push-mode streaming parser for `spec`.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] if the pipeline cannot be built,
    /// or [`EngineError::NoStreamingBackend`] if it is not DFA-backed.
    pub fn stream(&self, spec: &PipelineSpec) -> Result<StreamParser, EngineError> {
        StreamParser::open(self.get_or_compile(spec)?)
    }

    /// Revives a parked stream session (see [`StreamParser::snapshot`])
    /// against the pipeline for `spec` — on this engine or any other,
    /// in this process or another. The blob's checksum, version and
    /// structural spec fingerprint are verified, and every piece of
    /// restored parser state is re-validated against the compiled
    /// pipeline (partial derivations re-certified against their claims,
    /// lexemes re-certified against the raw text), so a resumed session
    /// certifies exactly what an uninterrupted one would — a corrupt or
    /// mismatched blob is a structured [`SessionError`], never a
    /// mis-certification.
    ///
    /// # Errors
    ///
    /// [`SessionError::Corrupt`] for damaged blobs,
    /// [`SessionError::Version`] / [`SessionError::SpecMismatch`] for
    /// incompatible ones, [`SessionError::Invalid`] for well-formed
    /// blobs whose state fails re-validation, and
    /// [`SessionError::Engine`] if the pipeline itself cannot be built.
    pub fn resume(
        &self,
        spec: &PipelineSpec,
        state: &SessionState,
    ) -> Result<StreamParser, SessionError> {
        let pipeline = self.get_or_compile(spec).map_err(SessionError::Engine)?;
        StreamParser::resume(pipeline, state)
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            compiles: self.compiles.load(Ordering::Relaxed),
            entries: self.cache.lock().expect("engine cache poisoned").len(),
            hit_latency: Self::snapshot_latency(&self.hit_lat),
            miss_latency: Self::snapshot_latency(&self.miss_lat),
        }
    }

    /// The full serving-tier counters: cache, eviction, compile-latency
    /// and worker-pool observability in one structure.
    pub fn engine_stats(&self) -> EngineStats {
        let (evictions, resident_weight, compile_total, compile_max, entries) = {
            let cache = self.cache.lock().expect("engine cache poisoned");
            (
                cache.evictions(),
                cache.resident_weight(),
                cache.compile_total(),
                cache.compile_max(),
                cache.len(),
            )
        };
        EngineStats {
            cache: CacheStats {
                hits: self.hits.load(Ordering::Relaxed),
                misses: self.misses.load(Ordering::Relaxed),
                compiles: self.compiles.load(Ordering::Relaxed),
                entries,
                hit_latency: Self::snapshot_latency(&self.hit_lat),
                miss_latency: Self::snapshot_latency(&self.miss_lat),
            },
            evictions,
            resident_weight,
            compile_total,
            compile_max,
            pool: self.pool.get().map(WorkerPool::stats).unwrap_or_default(),
        }
    }

    /// Drops every cached pipeline (counters are kept; operator clears
    /// do not count as evictions).
    pub fn clear(&self) {
        self.cache.lock().expect("engine cache poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::alphabet::Alphabet;

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Engine>();
        assert_send_sync::<CompiledPipeline>();
        assert_send_sync::<Arc<CompiledPipeline>>();
    }

    #[test]
    fn bad_regex_is_a_compile_error_and_not_cached() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "(((");
        assert!(matches!(
            engine.get_or_compile(&spec),
            Err(EngineError::Compile(_))
        ));
        assert_eq!(engine.stats().entries, 0);
        // The failure is re-attempted (and re-fails) on the next call.
        assert!(engine.get_or_compile(&spec).is_err());
        assert_eq!(engine.stats().misses, 2);
    }

    #[test]
    fn lex_str_parallel_matches_the_sequential_lexer() {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let lexer = pipeline.lexed_backend().unwrap().lexer();
        let good = "12 + (345 + 6) + 78";
        let bad = "12 + X + 34";
        for chunks in [1, 2, 3, 4, 8, 64] {
            assert_eq!(
                engine.lex_str_parallel(&spec, good, chunks).unwrap(),
                lexer.lex(good).unwrap(),
                "{chunks} chunks on accepting input"
            );
            assert_eq!(
                engine.lex_str_parallel(&spec, bad, chunks).unwrap(),
                lexer.lex(bad).unwrap(),
                "{chunks} chunks on rejecting input"
            );
            assert_eq!(
                engine.lex_str_parallel(&spec, "", chunks).unwrap(),
                lexer.lex("").unwrap(),
                "{chunks} chunks on empty input"
            );
        }
    }

    #[test]
    fn lex_str_parallel_rejects_unlexed_pipelines() {
        let engine = Engine::new();
        let spec = PipelineSpec::regex(Alphabet::abc(), "a*b");
        assert!(matches!(
            engine.lex_str_parallel(&spec, "aab", 4),
            Err(EngineError::NotLexed(_))
        ));
    }

    #[test]
    fn cache_latency_histograms_count_hits_and_misses() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(4);
        assert_eq!(engine.stats().hit_latency.count(), 0);
        assert_eq!(engine.stats().miss_latency.count(), 0);
        engine.get_or_compile(&spec).unwrap();
        engine.get_or_compile(&spec).unwrap();
        engine.get_or_compile(&spec).unwrap();
        let stats = engine.stats();
        assert_eq!(stats.miss_latency.count(), 1);
        assert_eq!(stats.hit_latency.count(), 2);
        // The quantile bound is monotone and sane: a compile takes at
        // least a microsecond on any hardware.
        let p100 = stats.miss_latency.quantile_nanos(1.0).unwrap();
        assert!(p100 >= stats.miss_latency.quantile_nanos(0.5).unwrap());
        assert!(p100 >= 1_000, "compile latency bound {p100}ns");
        // Failed compilations record no sample.
        let bad = PipelineSpec::regex(Alphabet::abc(), "(((");
        assert!(engine.get_or_compile(&bad).is_err());
        assert_eq!(engine.stats().miss_latency.count(), 1);
        assert!(engine.stats().hit_latency.quantile_nanos(0.99).is_some());
        assert_eq!(LatencyHistogram::default().quantile_nanos(0.5), None);
        assert_eq!(LatencyHistogram::bucket_floor_nanos(0), 0);
        assert_eq!(LatencyHistogram::bucket_floor_nanos(10), 1024);
    }

    #[test]
    fn clear_evicts_but_keeps_counters() {
        let engine = Engine::new();
        let spec = PipelineSpec::dyck(8);
        engine.get_or_compile(&spec).unwrap();
        assert_eq!(engine.stats().entries, 1);
        engine.clear();
        assert_eq!(engine.stats().entries, 0);
        engine.get_or_compile(&spec).unwrap();
        assert_eq!(engine.stats().compiles, 2);
    }
}
