//! Pipeline specifications and their compiled form.
//!
//! A [`PipelineSpec`] is the *cache key*: a pure description of which
//! verified parser to build — the alphabet plus the grammar family and
//! its parameters. [`PipelineSpec::compile`] runs the paper's
//! construction once, and the resulting [`CompiledPipeline`] is the
//! immutable, `Send + Sync` artifact the engine shares across requests.

use std::time::{Duration, Instant};

use lambek_automata::counter::dyck_automaton;
use lambek_automata::dfa::{Dfa, DfaTraceGrammar};
use lambek_core::alphabet::{Alphabet, GString};
use lambek_core::grammar::expr::Grammar;
use lambek_core::theory::parser::{ParseOutcome, VerifiedParser};
use lambek_core::transform::TransformError;
use regex_grammars::ast::parse_regex;
use regex_grammars::pipeline::RegexParser;

use crate::EngineError;

/// What to compile: the engine's cache key.
///
/// Two specs are the same pipeline exactly when they compare equal.
/// Equality and hashing go through an interned [`SpecKey`] computed once
/// at construction: alphabets and patterns are interned in
/// [`lambek_core::intern`], so comparing (and hashing) cache keys is a
/// couple of integer compares — no deep traversal of the alphabet's name
/// table or the pattern string. Structurally identical alphabets share
/// cache entries.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    kind: SpecKind,
    key: SpecKey,
}

/// The payload of a [`PipelineSpec`]: what the compiler consumes.
#[derive(Debug, Clone)]
enum SpecKind {
    /// The verified regex pipeline of Corollary 4.12 (Thompson →
    /// determinize → trace parser → extend).
    Regex {
        /// The input alphabet Σ.
        alphabet: Alphabet,
        /// The regex source, in the syntax of
        /// [`regex_grammars::ast::parse_regex`].
        pattern: String,
    },
    /// The verified Dyck parser of Theorem 4.13, exact for inputs of
    /// length ≤ `max_len`.
    Dyck {
        /// Truncation bound of the counter automaton.
        max_len: usize,
    },
    /// The verified arithmetic-expression parser of Theorem 4.14, exact
    /// for inputs of length ≤ `max_len`.
    Expr {
        /// Truncation bound of the lookahead automaton.
        max_len: usize,
    },
}

/// The id-based identity of a [`PipelineSpec`]: a small `Copy` value
/// whose equality/hash is O(1). This is what the engine's pipeline cache
/// actually compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKey {
    /// Regex pipeline: interned alphabet + interned pattern.
    Regex(lambek_core::intern::AlphabetId, lambek_core::intern::Istr),
    /// Dyck pipeline at a truncation bound.
    Dyck(usize),
    /// Expression pipeline at a truncation bound.
    Expr(usize),
}

impl PartialEq for PipelineSpec {
    fn eq(&self, other: &PipelineSpec) -> bool {
        self.key == other.key
    }
}

impl Eq for PipelineSpec {}

impl std::hash::Hash for PipelineSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl PipelineSpec {
    /// A regex pipeline spec for `pattern` over `alphabet`.
    pub fn regex(alphabet: Alphabet, pattern: impl Into<String>) -> PipelineSpec {
        let pattern = pattern.into();
        let key = SpecKey::Regex(
            lambek_core::intern::alphabet_id(&alphabet),
            lambek_core::intern::istr(&pattern),
        );
        PipelineSpec {
            kind: SpecKind::Regex { alphabet, pattern },
            key,
        }
    }

    /// A Dyck pipeline spec, exact for inputs of length ≤ `max_len`.
    pub fn dyck(max_len: usize) -> PipelineSpec {
        PipelineSpec {
            kind: SpecKind::Dyck { max_len },
            key: SpecKey::Dyck(max_len),
        }
    }

    /// An expression pipeline spec, exact for inputs of length ≤
    /// `max_len`.
    pub fn expr(max_len: usize) -> PipelineSpec {
        PipelineSpec {
            kind: SpecKind::Expr { max_len },
            key: SpecKey::Expr(max_len),
        }
    }

    /// The interned O(1) cache key this spec compares and hashes by.
    pub fn key(&self) -> SpecKey {
        self.key
    }

    /// A short human-readable label (used in reports and errors).
    pub fn label(&self) -> String {
        match &self.kind {
            SpecKind::Regex { pattern, .. } => format!("regex({pattern})"),
            SpecKind::Dyck { max_len } => format!("dyck(≤{max_len})"),
            SpecKind::Expr { max_len } => format!("expr(≤{max_len})"),
        }
    }

    /// Runs the construction for this spec.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] on regex syntax errors or if the
    /// underlying equivalences fail to compose.
    pub fn compile(&self) -> Result<CompiledPipeline, EngineError> {
        let start = Instant::now();
        let (parser, backend) = match &self.kind {
            SpecKind::Regex { alphabet, pattern } => {
                let re = parse_regex(alphabet, pattern)
                    .map_err(|e| EngineError::Compile(format!("{e}")))?;
                let rp = RegexParser::compile(alphabet, re)
                    .map_err(|e| EngineError::Compile(format!("{e}")))?;
                let dfa = rp.determinized().dfa.clone();
                let tg = dfa.trace_grammar();
                (rp.verified_parser().clone(), Some(DfaBackend { dfa, tg }))
            }
            SpecKind::Dyck { max_len } => {
                let dfa = dyck_automaton(*max_len);
                let tg = dfa.trace_grammar();
                (
                    lambek_cfg::dyck::dyck_parser(*max_len),
                    Some(DfaBackend { dfa, tg }),
                )
            }
            SpecKind::Expr { max_len } => (lambek_cfg::expr::exp_parser(*max_len), None),
        };
        Ok(CompiledPipeline {
            spec: self.clone(),
            parser,
            backend,
            compile_time: start.elapsed(),
        })
    }
}

/// The dense DFA behind a pipeline, kept alongside the verified parser
/// for streaming input and allocation-free acceptance checks.
#[derive(Debug, Clone)]
pub struct DfaBackend {
    /// The (flat-table) automaton.
    pub dfa: Dfa,
    /// Its Bool-indexed trace grammar (Fig. 11 layout).
    pub tg: DfaTraceGrammar,
}

/// A compiled, immutable, thread-shareable parser pipeline.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    spec: PipelineSpec,
    parser: VerifiedParser,
    backend: Option<DfaBackend>,
    compile_time: Duration,
}

impl CompiledPipeline {
    /// The spec this pipeline was compiled from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The composed verified parser (Definition 4.6).
    pub fn parser(&self) -> &VerifiedParser {
        &self.parser
    }

    /// The dense DFA backend, if the pipeline has one (regex and Dyck do;
    /// the lookahead-automaton expression pipeline does not).
    pub fn backend(&self) -> Option<&DfaBackend> {
        self.backend.as_ref()
    }

    /// The input alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        self.parser.alphabet()
    }

    /// The grammar being parsed.
    pub fn grammar(&self) -> &Grammar {
        self.parser.grammar()
    }

    /// How long [`PipelineSpec::compile`] took.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Runs the verified parser (intrinsic checks included).
    ///
    /// # Errors
    ///
    /// Propagates contract violations from the underlying transformers —
    /// for the built-in pipelines this only happens past a truncation
    /// bound (e.g. [`PipelineSpec::expr`] inputs longer than `max_len`).
    pub fn parse(&self, w: &GString) -> Result<ParseOutcome, TransformError> {
        self.parser.parse(w)
    }

    /// Fast acceptance check: a dense-table DFA run when a backend is
    /// available, otherwise a full parse.
    ///
    /// Inputs the pipeline cannot process at all (backend-less pipelines
    /// past their truncation bound, where [`CompiledPipeline::parse`]
    /// returns an error) count as not accepted; use `parse` when the
    /// distinction between "rejected" and "failed" matters.
    pub fn accepts(&self, w: &GString) -> bool {
        match &self.backend {
            Some(b) => b.dfa.accepts(w),
            None => self.parser.parse(w).map(|o| o.is_accept()).unwrap_or(false),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn specs_with_equal_alphabets_are_equal_keys() {
        let a = PipelineSpec::regex(Alphabet::abc(), "a*b");
        let b = PipelineSpec::regex(Alphabet::from_chars("abc"), "a*b");
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn spec_keys_are_interned_ids() {
        // The cache key is a small Copy value computed at construction:
        // equal specs share it, different specs differ in it, and
        // comparing two keys never traverses the alphabet or pattern.
        let a = PipelineSpec::regex(Alphabet::abc(), "a*b");
        let b = PipelineSpec::regex(Alphabet::from_chars("abc"), "a*b");
        let k = a.key();
        let copied: SpecKey = k; // SpecKey: Copy
        assert_eq!(copied, b.key());
        assert_ne!(a.key(), PipelineSpec::regex(Alphabet::abc(), "a*c").key());
        assert_ne!(
            a.key(),
            PipelineSpec::regex(Alphabet::from_chars("ab"), "a*b").key()
        );
        assert_ne!(PipelineSpec::dyck(4).key(), PipelineSpec::expr(4).key());
        assert_eq!(PipelineSpec::dyck(4).key(), PipelineSpec::dyck(4).key());
    }

    #[test]
    fn dyck_pipeline_has_a_backend_expr_does_not() {
        let dyck = PipelineSpec::dyck(6).compile().unwrap();
        assert!(dyck.backend().is_some());
        let expr = PipelineSpec::expr(4).compile().unwrap();
        assert!(expr.backend().is_none());
    }

    #[test]
    fn backend_acceptance_matches_verified_parser() {
        let p = PipelineSpec::regex(Alphabet::abc(), "(a|b)*c")
            .compile()
            .unwrap();
        let sigma = p.alphabet().clone();
        for s in ["", "c", "abc", "ca", "abab", "bbac"] {
            let w = sigma.parse_str(s).unwrap();
            assert_eq!(p.accepts(&w), p.parse(&w).unwrap().is_accept(), "{s}");
        }
    }
}
