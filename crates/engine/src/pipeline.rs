//! Pipeline specifications and their compiled form.
//!
//! A [`PipelineSpec`] is the *cache key*: a pure description of which
//! verified parser to build — the alphabet plus the grammar family and
//! its parameters. [`PipelineSpec::compile`] runs the paper's
//! construction once, and the resulting [`CompiledPipeline`] is the
//! immutable, `Send + Sync` artifact the engine shares across requests.
//!
//! Two families of pipeline exist:
//!
//! * **verified-transformer pipelines** ([`PipelineSpec::regex`],
//!   [`PipelineSpec::dyck`], [`PipelineSpec::expr`]) wrap a
//!   [`VerifiedParser`] built by the paper's constructions, optionally
//!   with a dense [`DfaBackend`] for streaming;
//! * **CFG pipelines** ([`PipelineSpec::cfg`]) take an arbitrary
//!   [`Cfg`] and compile it to the certified LR(1)/LALR tables of
//!   `lambek-lr` — linear-time parsing for the deterministic fragment —
//!   falling back to the Earley baseline when the grammar has LR
//!   conflicts (the [`CfgBackend`] records the conflict report either
//!   way). Accepted trees from both paths are re-validated by the core
//!   derivation checker, preserving the intrinsic-verification
//!   contract; the *rejection* side of Definition 4.6 (a disjoint
//!   negative grammar) has no general CFG construction, so CFG
//!   rejections carry the trivial `⊤`-parse of the input as their
//!   witness.

use std::time::{Duration, Instant};

use lambek_automata::counter::dyck_automaton;
use lambek_automata::dfa::{Dfa, DfaTraceGrammar};
use lambek_cfg::earley::{earley_parse, earley_recognize, EarleyParse};
use lambek_cfg::grammar::Cfg;
use lambek_core::alphabet::{Alphabet, GString};
use lambek_core::grammar::expr::Grammar;
use lambek_core::grammar::parse_tree::{validate, ParseTree};
use lambek_core::theory::parser::{ParseOutcome, VerifiedParser};
use lambek_core::transform::TransformError;
use lambek_lex::{
    CertifiedLexer, LexCertifier, LexError, LexSpec, RawLexeme, Span, TokenSink, TokenStream,
};
use lambek_lr::{CertifiedLrParser, LrConflictReport, LrOutcome, LrSink};
use regex_grammars::ast::parse_regex;
use regex_grammars::pipeline::RegexParser;

use crate::EngineError;

/// What to compile: the engine's cache key.
///
/// Two specs are the same pipeline exactly when they compare equal.
/// Equality and hashing go through an interned [`SpecKey`] computed once
/// at construction: alphabets, patterns and grammars are interned in
/// [`lambek_core::intern`], so comparing (and hashing) cache keys is a
/// couple of integer compares — no deep traversal of the alphabet's name
/// table, the pattern string, or the CFG's μ-regular encoding.
/// Structurally identical alphabets (and structurally identical CFGs)
/// share cache entries.
#[derive(Debug, Clone)]
pub struct PipelineSpec {
    kind: SpecKind,
    key: SpecKey,
}

/// The payload of a [`PipelineSpec`]: what the compiler consumes.
#[derive(Debug, Clone)]
enum SpecKind {
    /// The verified regex pipeline of Corollary 4.12 (Thompson →
    /// determinize → trace parser → extend).
    Regex {
        /// The input alphabet Σ.
        alphabet: Alphabet,
        /// The regex source, in the syntax of
        /// [`regex_grammars::ast::parse_regex`].
        pattern: String,
    },
    /// The verified Dyck parser of Theorem 4.13, exact for inputs of
    /// length ≤ `max_len`.
    Dyck {
        /// Truncation bound of the counter automaton.
        max_len: usize,
    },
    /// The verified arithmetic-expression parser of Theorem 4.14, exact
    /// for inputs of length ≤ `max_len`.
    Expr {
        /// Truncation bound of the lookahead automaton.
        max_len: usize,
    },
    /// A context-free grammar compiled to certified LR tables (Earley
    /// fallback on conflict). No truncation bound: valid for inputs of
    /// any length.
    Cfg {
        /// Display label for reports.
        name: String,
        /// The grammar itself.
        cfg: Cfg,
    },
    /// A raw-text pipeline: a certified maximal-munch lexer in front of
    /// a token-level CFG backend. The spec's token alphabet must equal
    /// the grammar's alphabet (checked at compile).
    LexedCfg {
        /// Display label for reports.
        name: String,
        /// The lexical specification (token + skip rules).
        spec: LexSpec,
        /// The token-level grammar.
        cfg: Cfg,
    },
}

/// The id-based identity of a [`PipelineSpec`]: a small `Copy` value
/// whose equality/hash is O(1). This is what the engine's pipeline cache
/// actually compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpecKey {
    /// Regex pipeline: interned alphabet + interned pattern.
    Regex(lambek_core::intern::AlphabetId, lambek_core::intern::Istr),
    /// Dyck pipeline at a truncation bound.
    Dyck(usize),
    /// Expression pipeline at a truncation bound.
    Expr(usize),
    /// CFG pipeline: interned alphabet + interned μ-regular encoding
    /// (the encoding determines the productions and the start symbol).
    Cfg(
        lambek_core::intern::AlphabetId,
        lambek_core::intern::GrammarId,
    ),
    /// Lexed-CFG pipeline: the lexer's identity (interned character
    /// alphabet + interned spec fingerprint) plus the token grammar's
    /// identity (interned token alphabet + interned μ-regular
    /// encoding).
    LexedCfg(
        lambek_core::intern::AlphabetId,
        lambek_core::intern::Istr,
        lambek_core::intern::AlphabetId,
        lambek_core::intern::GrammarId,
    ),
}

impl PartialEq for PipelineSpec {
    fn eq(&self, other: &PipelineSpec) -> bool {
        self.key == other.key
    }
}

impl Eq for PipelineSpec {}

impl std::hash::Hash for PipelineSpec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.key.hash(state);
    }
}

impl PipelineSpec {
    /// A regex pipeline spec for `pattern` over `alphabet`.
    pub fn regex(alphabet: Alphabet, pattern: impl Into<String>) -> PipelineSpec {
        let pattern = pattern.into();
        let key = SpecKey::Regex(
            lambek_core::intern::alphabet_id(&alphabet),
            lambek_core::intern::istr(&pattern),
        );
        PipelineSpec {
            kind: SpecKind::Regex { alphabet, pattern },
            key,
        }
    }

    /// A Dyck pipeline spec, exact for inputs of length ≤ `max_len`.
    pub fn dyck(max_len: usize) -> PipelineSpec {
        PipelineSpec {
            kind: SpecKind::Dyck { max_len },
            key: SpecKey::Dyck(max_len),
        }
    }

    /// An expression pipeline spec, exact for inputs of length ≤
    /// `max_len`.
    pub fn expr(max_len: usize) -> PipelineSpec {
        PipelineSpec {
            kind: SpecKind::Expr { max_len },
            key: SpecKey::Expr(max_len),
        }
    }

    /// A CFG pipeline spec: `cfg` compiled to certified LR tables when
    /// the grammar is LALR(1), to the Earley baseline otherwise. `name`
    /// is the display label; the cache identity is the grammar itself
    /// (interned μ-regular encoding + alphabet), so two structurally
    /// equal CFGs share one pipeline regardless of label.
    pub fn cfg(name: impl Into<String>, cfg: Cfg) -> PipelineSpec {
        let key = SpecKey::Cfg(
            lambek_core::intern::alphabet_id(cfg.alphabet()),
            lambek_core::intern::grammar_id(&cfg.to_lambek()),
        );
        PipelineSpec {
            kind: SpecKind::Cfg {
                name: name.into(),
                cfg,
            },
            key,
        }
    }

    /// A raw-text pipeline: `spec`'s certified maximal-munch lexer
    /// composed with the CFG backend for `cfg` (LR tables when the
    /// grammar is LALR(1), Earley fallback otherwise). The cache
    /// identity is the pair (lexer spec, grammar), both interned;
    /// `name` is only the display label.
    ///
    /// The spec's token alphabet and the grammar's alphabet must be
    /// equal — [`PipelineSpec::compile`] rejects mismatches.
    pub fn lexed_cfg(name: impl Into<String>, spec: LexSpec, cfg: Cfg) -> PipelineSpec {
        let key = SpecKey::LexedCfg(
            lambek_core::intern::alphabet_id(spec.alphabet()),
            lambek_core::intern::istr(&spec.fingerprint()),
            lambek_core::intern::alphabet_id(cfg.alphabet()),
            lambek_core::intern::grammar_id(&cfg.to_lambek()),
        );
        PipelineSpec {
            kind: SpecKind::LexedCfg {
                name: name.into(),
                spec,
                cfg,
            },
            key,
        }
    }

    /// The raw-text arithmetic language as a lexed-CFG pipeline: the
    /// Fig. 15 expression grammar behind a lexer with multi-digit
    /// numerals and skipped whitespace
    /// ([`lambek_lex::demo::arith_spec`]).
    pub fn arith_lexed() -> PipelineSpec {
        PipelineSpec::lexed_cfg(
            "arith-lexed",
            lambek_lex::demo::arith_spec(),
            lambek_lex::demo::arith_token_cfg(),
        )
    }

    /// A JSON-subset language as a lexed-CFG pipeline
    /// ([`lambek_lex::demo::json_spec`] + [`lambek_lex::demo::json_cfg`]).
    pub fn json_lexed() -> PipelineSpec {
        PipelineSpec::lexed_cfg(
            "json-lexed",
            lambek_lex::demo::json_spec(),
            lambek_lex::demo::json_cfg(),
        )
    }

    /// The Dyck language as a CFG pipeline (LR-backed, no truncation
    /// bound) — the linear-time serving path for balanced parentheses.
    pub fn dyck_cfg() -> PipelineSpec {
        let p = lambek_cfg::dyck::Parens::new();
        PipelineSpec::cfg("dyck-cfg", lambek_cfg::dyck::dyck_cfg(&p))
    }

    /// The Fig. 15 expression grammar as a CFG pipeline (LR-backed, no
    /// truncation bound) — unlike [`PipelineSpec::expr`], this serving
    /// path also supports streaming.
    pub fn expr_cfg() -> PipelineSpec {
        let t = lambek_automata::lookahead::ArithTokens::new();
        PipelineSpec::cfg("expr-cfg", lambek_cfg::expr::exp_cfg(&t))
    }

    /// The interned O(1) cache key this spec compares and hashes by.
    pub fn key(&self) -> SpecKey {
        self.key
    }

    /// A short human-readable label (used in reports and errors).
    pub fn label(&self) -> String {
        match &self.kind {
            SpecKind::Regex { pattern, .. } => format!("regex({pattern})"),
            SpecKind::Dyck { max_len } => format!("dyck(≤{max_len})"),
            SpecKind::Expr { max_len } => format!("expr(≤{max_len})"),
            SpecKind::Cfg { name, .. } => format!("cfg({name})"),
            SpecKind::LexedCfg { name, .. } => format!("lexed({name})"),
        }
    }

    /// A process-independent 64-bit fingerprint of the spec's
    /// *structure*, stamped into serialized session blobs
    /// ([`crate::SessionState`]) so a resume against the wrong pipeline
    /// is rejected up front. Unlike [`PipelineSpec::key`], whose
    /// interned ids are only meaningful within one process, this hashes
    /// structural renderings (alphabet name tables, the pattern / spec
    /// fingerprint / grammar display form) — equal across processes for
    /// structurally equal specs. Display labels are excluded, matching
    /// the cache identity.
    pub fn session_fingerprint(&self) -> u64 {
        let mut h = crate::session::Fnv64::new();
        match &self.kind {
            SpecKind::Regex { alphabet, pattern } => {
                h.update(b"regex");
                for name in alphabet.names() {
                    h.update(name.as_bytes());
                    h.update(&[0]);
                }
                h.update(pattern.as_bytes());
            }
            SpecKind::Dyck { max_len } => {
                h.update(b"dyck");
                h.update(&(*max_len as u64).to_le_bytes());
            }
            SpecKind::Expr { max_len } => {
                h.update(b"expr");
                h.update(&(*max_len as u64).to_le_bytes());
            }
            SpecKind::Cfg { cfg, .. } => {
                h.update(b"cfg");
                for name in cfg.alphabet().names() {
                    h.update(name.as_bytes());
                    h.update(&[0]);
                }
                h.update(cfg.to_string().as_bytes());
            }
            SpecKind::LexedCfg { spec, cfg, .. } => {
                h.update(b"lexed");
                for name in spec.alphabet().names() {
                    h.update(name.as_bytes());
                    h.update(&[0]);
                }
                h.update(spec.fingerprint().as_bytes());
                h.update(&[0]);
                for name in cfg.alphabet().names() {
                    h.update(name.as_bytes());
                    h.update(&[0]);
                }
                h.update(cfg.to_string().as_bytes());
            }
        }
        h.finish()
    }

    /// Runs the construction for this spec.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::Compile`] on regex syntax errors or if the
    /// underlying equivalences fail to compose. A CFG spec never fails
    /// to compile: LR conflicts fall back to Earley, with the conflict
    /// report preserved on the [`CfgBackend`].
    pub fn compile(&self) -> Result<CompiledPipeline, EngineError> {
        let start = Instant::now();
        let imp = match &self.kind {
            SpecKind::Regex { alphabet, pattern } => {
                let re = parse_regex(alphabet, pattern)
                    .map_err(|e| EngineError::Compile(format!("{e}")))?;
                let rp = RegexParser::compile(alphabet, re)
                    .map_err(|e| EngineError::Compile(format!("{e}")))?;
                let dfa = rp.determinized().dfa.clone();
                let tg = dfa.trace_grammar();
                ParserImpl::Verified {
                    parser: rp.verified_parser().clone(),
                    dfa: Some(DfaBackend { dfa, tg }),
                }
            }
            SpecKind::Dyck { max_len } => {
                let dfa = dyck_automaton(*max_len);
                let tg = dfa.trace_grammar();
                ParserImpl::Verified {
                    parser: lambek_cfg::dyck::dyck_parser(*max_len),
                    dfa: Some(DfaBackend { dfa, tg }),
                }
            }
            SpecKind::Expr { max_len } => ParserImpl::Verified {
                parser: lambek_cfg::expr::exp_parser(*max_len),
                dfa: None,
            },
            SpecKind::Cfg { cfg, .. } => ParserImpl::Cfg(compile_cfg_backend(cfg)),
            SpecKind::LexedCfg { name, spec, cfg } => {
                if spec.token_alphabet() != cfg.alphabet() {
                    return Err(EngineError::Compile(format!(
                        "lexed pipeline {name}: the spec's token alphabet {:?} does not match \
                         the grammar's alphabet {:?}",
                        spec.token_alphabet().names(),
                        cfg.alphabet().names(),
                    )));
                }
                ParserImpl::LexedCfg(LexedCfgBackend {
                    lexer: CertifiedLexer::compile(spec.clone()),
                    inner: compile_cfg_backend(cfg),
                })
            }
        };
        Ok(CompiledPipeline {
            spec: self.clone(),
            imp,
            compile_time: start.elapsed(),
        })
    }
}

/// The dense DFA behind a pipeline, kept alongside the verified parser
/// for streaming input and allocation-free acceptance checks.
#[derive(Debug, Clone)]
pub struct DfaBackend {
    /// The (flat-table) automaton.
    pub dfa: Dfa,
    /// Its Bool-indexed trace grammar (Fig. 11 layout).
    pub tg: DfaTraceGrammar,
}

/// How a CFG pipeline parses: certified LR tables when the grammar is
/// deterministic, the Earley baseline otherwise.
#[derive(Debug, Clone)]
pub enum CfgMode {
    /// The grammar compiled conflict-free; parsing is linear-time LR
    /// (the parser owns the grammar, in both representations).
    Lr(CertifiedLrParser),
    /// The grammar is outside the LALR(1) fragment; parsing is Earley.
    Earley {
        /// The grammar being served.
        cfg: Cfg,
        /// Its μ-regular encoding, for tree certification.
        grammar: Grammar,
        /// Why LR compilation was rejected — the offending item sets.
        conflicts: LrConflictReport,
    },
}

/// The compiled form of a [`PipelineSpec::cfg`] spec.
#[derive(Debug, Clone)]
pub struct CfgBackend {
    mode: CfgMode,
}

/// Compiles a CFG to its backend: LR tables when conflict-free, Earley
/// with the preserved conflict report otherwise.
fn compile_cfg_backend(cfg: &Cfg) -> CfgBackend {
    let mode = match CertifiedLrParser::compile(cfg) {
        Ok(lr) => CfgMode::Lr(lr),
        Err(conflicts) => CfgMode::Earley {
            cfg: cfg.clone(),
            grammar: cfg.to_lambek(),
            conflicts,
        },
    };
    CfgBackend { mode }
}

impl CfgBackend {
    /// The grammar being served.
    pub fn cfg(&self) -> &Cfg {
        match &self.mode {
            CfgMode::Lr(lr) => lr.cfg(),
            CfgMode::Earley { cfg, .. } => cfg,
        }
    }

    /// The μ-regular encoding accepted trees are validated against.
    pub fn grammar(&self) -> &Grammar {
        match &self.mode {
            CfgMode::Lr(lr) => lr.grammar(),
            CfgMode::Earley { grammar, .. } => grammar,
        }
    }

    /// LR tables or Earley fallback.
    pub fn mode(&self) -> &CfgMode {
        &self.mode
    }

    /// The certified LR parser, when the grammar compiled conflict-free.
    pub fn lr(&self) -> Option<&CertifiedLrParser> {
        match &self.mode {
            CfgMode::Lr(lr) => Some(lr),
            CfgMode::Earley { .. } => None,
        }
    }

    /// The conflict report, when the grammar fell back to Earley.
    pub fn conflicts(&self) -> Option<&LrConflictReport> {
        match &self.mode {
            CfgMode::Lr(_) => None,
            CfgMode::Earley { conflicts, .. } => Some(conflicts),
        }
    }

    /// Parses with the backing parser and certifies the result: any
    /// accepted tree is validated against the μ-regular grammar and the
    /// input before being returned.
    fn parse(&self, w: &GString) -> Result<ParseOutcome, TransformError> {
        let accepted = match &self.mode {
            CfgMode::Lr(lr) => match lr.parse(w).map_err(|e| TransformError::OutputShape {
                transformer: "certified-lr".to_owned(),
                cause: e.cause,
            })? {
                LrOutcome::Accept(tree) => Some(tree),
                LrOutcome::Reject(_) => None,
            },
            CfgMode::Earley { cfg, grammar, .. } => match earley_parse(cfg, w) {
                // An ambiguous grammar still serves: the witness tree is
                // the first derivation (alternatives in order).
                EarleyParse::Unique(tree) | EarleyParse::Ambiguous { tree, .. } => {
                    validate(&tree, grammar, w).map_err(|cause| TransformError::OutputShape {
                        transformer: "earley-fallback".to_owned(),
                        cause,
                    })?;
                    Some(tree)
                }
                EarleyParse::NoParse => None,
            },
        };
        Ok(match accepted {
            Some(tree) => ParseOutcome::Accept(tree),
            // No general complement construction for CFGs: the rejection
            // witness is the trivial ⊤-parse of the input (yield-correct,
            // but ⊤ is not disjoint from the grammar — see module docs).
            None => ParseOutcome::Reject(ParseTree::Top(w.clone())),
        })
    }

    fn accepts(&self, w: &GString) -> bool {
        match &self.mode {
            CfgMode::Lr(lr) => lr.recognizes(w),
            CfgMode::Earley { cfg, .. } => earley_recognize(cfg, w),
        }
    }
}

/// The outcome of a raw-text parse: lexing and parsing certified at
/// their respective layers, rejections pointing at byte offsets of the
/// raw input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StrOutcome {
    /// The text lexed and the token string parsed. The tree has been
    /// re-validated against the token-level grammar and the token
    /// string; the lexemes have been re-validated against the raw text
    /// (span tiling + independent derivative re-matching). The fused
    /// path ([`LexedCfgBackend::parse_str`]) never materializes the
    /// token stream, so [`tokens`](StrOutcome::Accept::tokens) is
    /// `None` there — use [`LexedCfgBackend::parse_str_tokens`] when
    /// the stream itself is wanted. Non-lexed pipelines always report
    /// `None` (the "lexer" was the trivial char-per-symbol reading).
    Accept {
        /// The certified parse tree over the pipeline's grammar.
        tree: ParseTree,
        /// The certified token stream (materializing lexed paths only).
        tokens: Option<TokenStream>,
    },
    /// The text lexed but the token string is not in the grammar.
    RejectParse {
        /// Byte span of the offending token in the raw text (empty
        /// span at the end for "input ended too soon"; the whole input
        /// when the Earley fallback, which has no error position,
        /// rejected).
        span: Span,
        /// Human-readable rejection (the LR driver's expected-set
        /// report when available).
        message: String,
        /// The token stream that parsed up to the rejection (lexed
        /// pipelines only).
        tokens: Option<TokenStream>,
    },
    /// The text did not lex; the error carries the byte offset.
    RejectLex(LexError),
}

impl StrOutcome {
    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, StrOutcome::Accept { .. })
    }

    /// The accepted tree, if any.
    pub fn accepted(&self) -> Option<&ParseTree> {
        match self {
            StrOutcome::Accept { tree, .. } => Some(tree),
            _ => None,
        }
    }
}

/// The compiled form of a [`PipelineSpec::lexed_cfg`] spec: a certified
/// lexer in front of a certified CFG backend.
#[derive(Debug, Clone)]
pub struct LexedCfgBackend {
    lexer: CertifiedLexer,
    inner: CfgBackend,
}

/// The fused lex→certify→LR consumer: the byte-sliced scanner's
/// [`TokenSink`] for [`LexedCfgBackend::parse_str`]. Each lexeme is
/// certified *by span* (no text materialized) and its symbol shifted
/// straight into the LR machine; skip lexemes certify and vanish.
///
/// A certification failure aborts the lex (the sink's error plane); an
/// LR rejection does *not* — the LR side goes dead, lexing continues
/// to its own verdict so a later unlexable byte keeps priority, and
/// the span of the first refused shift is kept for the rejection
/// report.
struct FusedSink {
    cert: LexCertifier,
    lrs: LrSink,
    /// Span (in the raw input) of the yield token whose shift the LR
    /// machine first refused, if any.
    reject_span: Option<Span>,
}

impl TokenSink for FusedSink {
    type Err = TransformError;

    fn lexeme(&mut self, input: &str, lexeme: RawLexeme) -> Result<(), TransformError> {
        self.cert.check_raw(input, &lexeme).map_err(|e| {
            TransformError::Custom(format!("certified-lexer contract violation: {e}"))
        })?;
        if let Some(sym) = lexeme.sym {
            if !self.lrs.push(sym) && self.reject_span.is_none() {
                self.reject_span = Some(lexeme.span);
            }
        }
        Ok(())
    }
}

impl LexedCfgBackend {
    /// The certified lexer.
    pub fn lexer(&self) -> &CertifiedLexer {
        &self.lexer
    }

    /// The token-level CFG backend (LR tables or Earley fallback).
    pub fn cfg_backend(&self) -> &CfgBackend {
        &self.inner
    }

    /// Lexes `input` and parses the token string, certifying both
    /// layers. Rejections carry byte offsets into `input`.
    ///
    /// On LR-backed grammars this is the *fused* hot path: the
    /// byte-sliced scanner pushes each lexeme through span-based
    /// certification (running tiling cursor plus memoized derivative
    /// re-match, no text copied) and shifts its symbol straight into
    /// the LR stack — whose reductions are themselves certified as
    /// performed — with no `Vec<Token>`, no [`TokenStream`] and no
    /// per-token `String` ever allocated; accordingly the outcome's
    /// `tokens` field is `None`. Use
    /// [`LexedCfgBackend::parse_str_tokens`] when the caller wants the
    /// certified stream itself. The Earley fallback (and
    /// [`LexedCfgBackend::parse_str_full`]) still runs the original
    /// two-pass form.
    ///
    /// # Errors
    ///
    /// Contract violations only: a lexer certification failure or an
    /// LR/validation internal error. "Not in the language" is an `Ok`
    /// rejection.
    pub fn parse_str(&self, input: &str) -> Result<StrOutcome, TransformError> {
        let CfgMode::Lr(lr) = &self.inner.mode else {
            // Earley needs the whole token string anyway.
            return self.parse_str_full(input);
        };
        let mut sink = FusedSink {
            cert: self.lexer.certifier(),
            // A loose lower bound on the yield length: arithmetic-style
            // inputs average a handful of bytes per yield token, so the
            // LR machine's stacks mostly avoid regrowth without
            // over-reserving on token-sparse inputs.
            lrs: lr.sink_with_capacity(input.len() / 8),
            reject_span: None,
        };
        // Lex errors keep priority over LR rejections, exactly as in
        // the two-pass form (where lexing ran to completion first) — a
        // doomed LR stack never masks a later unlexable byte, because
        // the sink's LR side just goes (and stays) dead while lexing
        // continues.
        if let Err(e) = self.lexer.automaton().lex_into(input, &mut sink)? {
            return Ok(StrOutcome::RejectLex(e));
        }
        sink.cert.finish(input).map_err(|e| {
            TransformError::Custom(format!("certified-lexer contract violation: {e}"))
        })?;
        match sink.lrs.finish().map_err(|e| TransformError::OutputShape {
            transformer: "certified-lr".to_owned(),
            cause: e.cause,
        })? {
            LrOutcome::Accept(tree) => Ok(StrOutcome::Accept { tree, tokens: None }),
            LrOutcome::Reject(r) => Ok(StrOutcome::RejectParse {
                // The span of the yield token whose shift the LR stack
                // first refused — the same token `span_of_yield` finds
                // on the materializing paths — or the empty span at the
                // end of input when every shift succeeded and only the
                // final accept was refused.
                span: sink.reject_span.unwrap_or_else(|| Span::empty(input.len())),
                message: r.to_string(),
                tokens: None,
            }),
        }
    }

    /// [`LexedCfgBackend::parse_str`] in *staged* form with per-stage
    /// spans recorded into `rec` (offsets measured from `epoch`): the
    /// scan collects the whole lexeme chain, certification re-validates
    /// it in a second pass, and the parse drives the LR machine (or the
    /// Earley fallback) in a third — so the scan / certify / parse
    /// stages can be timed separately, which the fused single-pass form
    /// cannot do. Observationally identical to
    /// [`LexedCfgBackend::parse_str`]: same outcome — verdict, tree,
    /// spans, token reporting — on every input (asserted by the
    /// `prop_obs` differential suite).
    ///
    /// # Errors
    ///
    /// As [`LexedCfgBackend::parse_str`].
    pub(crate) fn parse_str_staged<R: lambek_obs::Recorder>(
        &self,
        input: &str,
        epoch: Instant,
        rec: &mut R,
    ) -> Result<StrOutcome, TransformError> {
        use lambek_obs::Stage;
        let s0 = epoch.elapsed();
        let scanned: Result<Vec<RawLexeme>, LexError> =
            self.lexer.automaton().raw_lexemes(input).collect();
        rec.record(Stage::Scan, s0, epoch.elapsed().saturating_sub(s0));
        let lexemes = match scanned {
            Ok(ls) => ls,
            Err(e) => return Ok(StrOutcome::RejectLex(e)),
        };
        let c0 = epoch.elapsed();
        let mut cert = self.lexer.certifier();
        for l in &lexemes {
            cert.check_raw(input, l).map_err(|e| {
                TransformError::Custom(format!("certified-lexer contract violation: {e}"))
            })?;
        }
        cert.finish(input).map_err(|e| {
            TransformError::Custom(format!("certified-lexer contract violation: {e}"))
        })?;
        rec.record(Stage::Certify, c0, epoch.elapsed().saturating_sub(c0));
        let p0 = epoch.elapsed();
        let out = self.parse_lexeme_chain(input, &lexemes);
        rec.record(Stage::Parse, p0, epoch.elapsed().saturating_sub(p0));
        out
    }

    /// The parse stage of [`LexedCfgBackend::parse_str_staged`]: drives
    /// an already-certified lexeme chain through the CFG backend,
    /// reproducing [`LexedCfgBackend::parse_str`]'s outcomes exactly
    /// (LR: token stream never materialized, rejection span = first
    /// refused shift; Earley: materializing, as `parse_str_full`).
    fn parse_lexeme_chain(
        &self,
        input: &str,
        lexemes: &[RawLexeme],
    ) -> Result<StrOutcome, TransformError> {
        match &self.inner.mode {
            CfgMode::Lr(lr) => {
                let mut lrs = lr.sink_with_capacity(lexemes.len());
                let mut reject_span = None;
                for l in lexemes {
                    if let Some(sym) = l.sym {
                        if !lrs.push(sym) && reject_span.is_none() {
                            reject_span = Some(l.span);
                        }
                    }
                }
                match lrs.finish().map_err(|e| TransformError::OutputShape {
                    transformer: "certified-lr".to_owned(),
                    cause: e.cause,
                })? {
                    LrOutcome::Accept(tree) => Ok(StrOutcome::Accept { tree, tokens: None }),
                    LrOutcome::Reject(r) => Ok(StrOutcome::RejectParse {
                        span: reject_span.unwrap_or_else(|| Span::empty(input.len())),
                        message: r.to_string(),
                        tokens: None,
                    }),
                }
            }
            CfgMode::Earley { cfg, grammar, .. } => {
                let tokens =
                    TokenStream::from_tokens(lexemes.iter().map(|l| l.to_token(input)).collect());
                let w = tokens.yield_string();
                match earley_parse(cfg, w) {
                    EarleyParse::Unique(tree) | EarleyParse::Ambiguous { tree, .. } => {
                        validate(&tree, grammar, w).map_err(|cause| {
                            TransformError::OutputShape {
                                transformer: "earley-fallback".to_owned(),
                                cause,
                            }
                        })?;
                        Ok(StrOutcome::Accept {
                            tree,
                            tokens: Some(tokens),
                        })
                    }
                    EarleyParse::NoParse => Ok(StrOutcome::RejectParse {
                        span: Span {
                            start: 0,
                            end: input.len(),
                        },
                        message: "token string is not in the grammar (Earley fallback)".to_owned(),
                        tokens: Some(tokens),
                    }),
                }
            }
        }
    }

    /// [`LexedCfgBackend::parse_str`] materializing the certified
    /// [`TokenStream`] alongside the outcome — the original incremental
    /// two-layer path: each token is certified at its munch boundary
    /// and shifted into the LR stream, and the collected tokens ride
    /// along in the outcome's `tokens` field. Callers that only need
    /// the verdict and tree should prefer the fused
    /// [`LexedCfgBackend::parse_str`].
    ///
    /// # Errors
    ///
    /// As [`LexedCfgBackend::parse_str`].
    pub fn parse_str_tokens(&self, input: &str) -> Result<StrOutcome, TransformError> {
        let CfgMode::Lr(lr) = &self.inner.mode else {
            // Earley needs the whole token string anyway.
            return self.parse_str_full(input);
        };
        let mut cert = self.lexer.certifier();
        let mut lrs = lr.stream();
        let mut tokens = Vec::new();
        for item in self.lexer.automaton().lexemes(input) {
            match item {
                Err(e) => return Ok(StrOutcome::RejectLex(e)),
                Ok(t) => {
                    cert.check(input, &t).map_err(|e| {
                        TransformError::Custom(format!("certified-lexer contract violation: {e}"))
                    })?;
                    if let Some(sym) = t.sym {
                        lrs.push(sym);
                    }
                    tokens.push(t);
                }
            }
        }
        cert.finish(input).map_err(|e| {
            TransformError::Custom(format!("certified-lexer contract violation: {e}"))
        })?;
        let tokens = TokenStream::from_tokens(tokens);
        match lrs.finish().map_err(|e| TransformError::OutputShape {
            transformer: "certified-lr".to_owned(),
            cause: e.cause,
        })? {
            LrOutcome::Accept(tree) => Ok(StrOutcome::Accept {
                tree,
                tokens: Some(tokens),
            }),
            LrOutcome::Reject(r) => {
                let span = tokens.span_of_yield(r.at, input.len());
                Ok(StrOutcome::RejectParse {
                    span,
                    message: r.to_string(),
                    tokens: Some(tokens),
                })
            }
        }
    }

    /// [`LexedCfgBackend::parse_str`] with both layers on their full
    /// (whole-output) re-validation paths: the lexer materializes and
    /// re-walks the complete token stream, and the LR parse re-validates
    /// the finished tree from the root. Kept as the slow reference the
    /// differential suites compare the fused incremental path against.
    ///
    /// # Errors
    ///
    /// As [`LexedCfgBackend::parse_str`].
    pub fn parse_str_full(&self, input: &str) -> Result<StrOutcome, TransformError> {
        let tokens = match self.lexer.lex_full(input).map_err(|e| {
            TransformError::Custom(format!("certified-lexer contract violation: {e}"))
        })? {
            lambek_lex::LexedOutcome::Reject(e) => return Ok(StrOutcome::RejectLex(e)),
            lambek_lex::LexedOutcome::Tokens(ts) => ts,
        };
        let w = tokens.yield_string();
        match &self.inner.mode {
            CfgMode::Lr(lr) => match lr.parse_full(w).map_err(|e| TransformError::OutputShape {
                transformer: "certified-lr".to_owned(),
                cause: e.cause,
            })? {
                LrOutcome::Accept(tree) => Ok(StrOutcome::Accept {
                    tree,
                    tokens: Some(tokens),
                }),
                LrOutcome::Reject(r) => {
                    let span = tokens.span_of_yield(r.at, input.len());
                    Ok(StrOutcome::RejectParse {
                        span,
                        message: r.to_string(),
                        tokens: Some(tokens),
                    })
                }
            },
            CfgMode::Earley { cfg, grammar, .. } => match earley_parse(cfg, w) {
                EarleyParse::Unique(tree) | EarleyParse::Ambiguous { tree, .. } => {
                    validate(&tree, grammar, w).map_err(|cause| TransformError::OutputShape {
                        transformer: "earley-fallback".to_owned(),
                        cause,
                    })?;
                    Ok(StrOutcome::Accept {
                        tree,
                        tokens: Some(tokens),
                    })
                }
                EarleyParse::NoParse => Ok(StrOutcome::RejectParse {
                    span: Span {
                        start: 0,
                        end: input.len(),
                    },
                    message: "token string is not in the grammar (Earley fallback)".to_owned(),
                    tokens: Some(tokens),
                }),
            },
        }
    }
}

/// How a [`CompiledPipeline`] actually parses.
#[derive(Debug, Clone)]
enum ParserImpl {
    /// A paper-construction verified parser, optionally DFA-backed.
    Verified {
        parser: VerifiedParser,
        dfa: Option<DfaBackend>,
    },
    /// A CFG compiled to LR tables (or the Earley fallback).
    Cfg(CfgBackend),
    /// A certified lexer composed with a CFG backend (raw-text input).
    LexedCfg(LexedCfgBackend),
}

/// A compiled, immutable, thread-shareable parser pipeline.
#[derive(Debug, Clone)]
pub struct CompiledPipeline {
    spec: PipelineSpec,
    imp: ParserImpl,
    compile_time: Duration,
}

impl CompiledPipeline {
    /// The spec this pipeline was compiled from.
    pub fn spec(&self) -> &PipelineSpec {
        &self.spec
    }

    /// The composed verified parser (Definition 4.6), for the
    /// verified-transformer pipelines; `None` for CFG pipelines, whose
    /// parser is the certified LR driver / Earley fallback behind
    /// [`CompiledPipeline::cfg_backend`].
    pub fn parser(&self) -> Option<&VerifiedParser> {
        match &self.imp {
            ParserImpl::Verified { parser, .. } => Some(parser),
            ParserImpl::Cfg(_) | ParserImpl::LexedCfg(_) => None,
        }
    }

    /// The dense DFA backend, if the pipeline has one (regex and Dyck
    /// do; the lookahead-automaton expression pipeline and CFG pipelines
    /// do not).
    pub fn backend(&self) -> Option<&DfaBackend> {
        match &self.imp {
            ParserImpl::Verified { dfa, .. } => dfa.as_ref(),
            ParserImpl::Cfg(_) | ParserImpl::LexedCfg(_) => None,
        }
    }

    /// The CFG backend, if this is a [`PipelineSpec::cfg`] pipeline
    /// (for lexed pipelines, reach it through
    /// [`CompiledPipeline::lexed_backend`]).
    pub fn cfg_backend(&self) -> Option<&CfgBackend> {
        match &self.imp {
            ParserImpl::Verified { .. } | ParserImpl::LexedCfg(_) => None,
            ParserImpl::Cfg(b) => Some(b),
        }
    }

    /// The lexer+CFG backend, if this is a [`PipelineSpec::lexed_cfg`]
    /// pipeline.
    pub fn lexed_backend(&self) -> Option<&LexedCfgBackend> {
        match &self.imp {
            ParserImpl::LexedCfg(b) => Some(b),
            _ => None,
        }
    }

    /// The input alphabet of the pipeline's *parser*: for lexed
    /// pipelines this is the token alphabet (the characters the lexer
    /// reads live in `lexed_backend().lexer().spec().alphabet()`).
    pub fn alphabet(&self) -> &Alphabet {
        match &self.imp {
            ParserImpl::Verified { parser, .. } => parser.alphabet(),
            ParserImpl::Cfg(b) => b.cfg().alphabet(),
            ParserImpl::LexedCfg(b) => b.inner.cfg().alphabet(),
        }
    }

    /// The grammar being parsed.
    pub fn grammar(&self) -> &Grammar {
        match &self.imp {
            ParserImpl::Verified { parser, .. } => parser.grammar(),
            ParserImpl::Cfg(b) => b.grammar(),
            ParserImpl::LexedCfg(b) => b.inner.grammar(),
        }
    }

    /// How long [`PipelineSpec::compile`] took.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Runs the pipeline's parser with the intrinsic checks on: any
    /// accepted tree has been validated against the grammar *and* the
    /// input string.
    ///
    /// # Errors
    ///
    /// Propagates contract violations from the underlying transformers —
    /// for the built-in pipelines this only happens past a truncation
    /// bound (e.g. [`PipelineSpec::expr`] inputs longer than `max_len`;
    /// CFG pipelines have no bound).
    pub fn parse(&self, w: &GString) -> Result<ParseOutcome, TransformError> {
        match &self.imp {
            ParserImpl::Verified { parser, .. } => parser.parse(w),
            ParserImpl::Cfg(b) => b.parse(w),
            // A lexed pipeline parsing a pre-tokenized string skips the
            // lexer (the string is already over the token alphabet).
            ParserImpl::LexedCfg(b) => b.inner.parse(w),
        }
    }

    /// Parses *raw text*, running the whole pipeline front to back.
    ///
    /// For lexed pipelines this is the main entrance: certified
    /// maximal-munch lexing, then the certified CFG backend over the
    /// token string, with rejections mapped to byte offsets of `input`.
    /// Other pipelines read the text through their alphabet's
    /// char-per-symbol parsing (a character outside the alphabet is a
    /// [`StrOutcome::RejectLex`] at its byte offset) and report parse
    /// rejections over the whole input.
    ///
    /// # Errors
    ///
    /// Contract violations of the underlying transformers, exactly as
    /// [`CompiledPipeline::parse`].
    pub fn parse_str(&self, input: &str) -> Result<StrOutcome, TransformError> {
        if let ParserImpl::LexedCfg(b) = &self.imp {
            return b.parse_str(input);
        }
        // Char-per-symbol reading for the other pipelines.
        let sigma = self.alphabet();
        let mut w = GString::new();
        for (at, c) in input.char_indices() {
            match sigma.symbol_of_char(c) {
                Some(sym) => w.push(sym),
                None => return Ok(StrOutcome::RejectLex(LexError { at, found: c })),
            }
        }
        Ok(match self.parse(&w)? {
            ParseOutcome::Accept(tree) => StrOutcome::Accept { tree, tokens: None },
            ParseOutcome::Reject(_) => StrOutcome::RejectParse {
                span: Span {
                    start: 0,
                    end: input.len(),
                },
                message: "input is not in the grammar".to_owned(),
                tokens: None,
            },
        })
    }

    /// [`CompiledPipeline::parse_str`] with per-stage spans recorded
    /// into `rec` (offsets measured from `epoch`). Observationally
    /// identical — same outcome on every input — but lexed LR
    /// pipelines run in staged form
    /// ([`LexedCfgBackend::parse_str_staged`]) so scan, certify and
    /// parse are timed as separate spans; other pipelines record a
    /// scan span (char-per-symbol reading) and a parse span.
    ///
    /// # Errors
    ///
    /// As [`CompiledPipeline::parse_str`].
    pub(crate) fn parse_str_traced<R: lambek_obs::Recorder>(
        &self,
        input: &str,
        epoch: Instant,
        rec: &mut R,
    ) -> Result<StrOutcome, TransformError> {
        use lambek_obs::Stage;
        if let ParserImpl::LexedCfg(b) = &self.imp {
            return b.parse_str_staged(input, epoch, rec);
        }
        let s0 = epoch.elapsed();
        let sigma = self.alphabet();
        let mut w = GString::new();
        for (at, c) in input.char_indices() {
            match sigma.symbol_of_char(c) {
                Some(sym) => w.push(sym),
                None => {
                    rec.record(Stage::Scan, s0, epoch.elapsed().saturating_sub(s0));
                    return Ok(StrOutcome::RejectLex(LexError { at, found: c }));
                }
            }
        }
        rec.record(Stage::Scan, s0, epoch.elapsed().saturating_sub(s0));
        let p0 = epoch.elapsed();
        let parsed = self.parse(&w)?;
        rec.record(Stage::Parse, p0, epoch.elapsed().saturating_sub(p0));
        Ok(match parsed {
            ParseOutcome::Accept(tree) => StrOutcome::Accept { tree, tokens: None },
            ParseOutcome::Reject(_) => StrOutcome::RejectParse {
                span: Span {
                    start: 0,
                    end: input.len(),
                },
                message: "input is not in the grammar".to_owned(),
                tokens: None,
            },
        })
    }

    /// Fast acceptance check: a dense-table DFA or LR run when one is
    /// available, otherwise a full parse.
    ///
    /// Inputs the pipeline cannot process at all (backend-less pipelines
    /// past their truncation bound, where [`CompiledPipeline::parse`]
    /// returns an error) count as not accepted; use `parse` when the
    /// distinction between "rejected" and "failed" matters.
    pub fn accepts(&self, w: &GString) -> bool {
        match &self.imp {
            ParserImpl::Verified { dfa: Some(b), .. } => b.dfa.accepts(w),
            ParserImpl::Verified { parser, dfa: None } => {
                parser.parse(w).map(|o| o.is_accept()).unwrap_or(false)
            }
            ParserImpl::Cfg(b) => b.accepts(w),
            ParserImpl::LexedCfg(b) => b.inner.accepts(w),
        }
    }

    /// Fast raw-text acceptance: lex, then the recognition-only table
    /// run (no trees, no certification — use
    /// [`CompiledPipeline::parse_str`] for the certified answer). Lexed
    /// pipelines pull lexemes lazily and keep only the token-level
    /// yield, never materializing a [`TokenStream`].
    pub fn accepts_str(&self, input: &str) -> bool {
        match &self.imp {
            ParserImpl::LexedCfg(b) => {
                let mut w = GString::new();
                for item in b.lexer.automaton().lexemes(input) {
                    match item {
                        Err(_) => return false,
                        Ok(t) => {
                            if let Some(sym) = t.sym {
                                w.push(sym);
                            }
                        }
                    }
                }
                b.inner.accepts(&w)
            }
            _ => self
                .alphabet()
                .parse_str(input)
                .is_some_and(|w| self.accepts(&w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_cfg::dyck::{dyck_cfg, parse_dyck_string, Parens};
    use lambek_cfg::grammar::{GSym, Production};

    #[test]
    // `Cfg`'s μ-encoding memo gives `PipelineSpec` interior mutability in
    // clippy's eyes; hashing and equality go through the id-based
    // `SpecKey` computed at construction, which the memo never touches.
    #[allow(clippy::mutable_key_type)]
    fn specs_with_equal_alphabets_are_equal_keys() {
        let a = PipelineSpec::regex(Alphabet::abc(), "a*b");
        let b = PipelineSpec::regex(Alphabet::from_chars("abc"), "a*b");
        assert_eq!(a, b);
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn spec_keys_are_interned_ids() {
        // The cache key is a small Copy value computed at construction:
        // equal specs share it, different specs differ in it, and
        // comparing two keys never traverses the alphabet or pattern.
        let a = PipelineSpec::regex(Alphabet::abc(), "a*b");
        let b = PipelineSpec::regex(Alphabet::from_chars("abc"), "a*b");
        let k = a.key();
        let copied: SpecKey = k; // SpecKey: Copy
        assert_eq!(copied, b.key());
        assert_ne!(a.key(), PipelineSpec::regex(Alphabet::abc(), "a*c").key());
        assert_ne!(
            a.key(),
            PipelineSpec::regex(Alphabet::from_chars("ab"), "a*b").key()
        );
        assert_ne!(PipelineSpec::dyck(4).key(), PipelineSpec::expr(4).key());
        assert_eq!(PipelineSpec::dyck(4).key(), PipelineSpec::dyck(4).key());
    }

    #[test]
    fn cfg_specs_share_keys_by_structure_not_label() {
        let p = Parens::new();
        let a = PipelineSpec::cfg("one", dyck_cfg(&p));
        let b = PipelineSpec::cfg("two", dyck_cfg(&p));
        assert_eq!(a, b, "labels are not part of the identity");
        assert_eq!(a.key(), PipelineSpec::dyck_cfg().key());
        assert_ne!(a.key(), PipelineSpec::expr_cfg().key());
        assert_ne!(a.key(), PipelineSpec::dyck(4).key());
        assert_eq!(a.label(), "cfg(one)");
    }

    #[test]
    fn dyck_pipeline_has_a_backend_expr_does_not() {
        let dyck = PipelineSpec::dyck(6).compile().unwrap();
        assert!(dyck.backend().is_some());
        let expr = PipelineSpec::expr(4).compile().unwrap();
        assert!(expr.backend().is_none());
    }

    #[test]
    fn backend_acceptance_matches_verified_parser() {
        let p = PipelineSpec::regex(Alphabet::abc(), "(a|b)*c")
            .compile()
            .unwrap();
        let sigma = p.alphabet().clone();
        for s in ["", "c", "abc", "ca", "abab", "bbac"] {
            let w = sigma.parse_str(s).unwrap();
            assert_eq!(p.accepts(&w), p.parse(&w).unwrap().is_accept(), "{s}");
        }
    }

    #[test]
    fn deterministic_cfg_compiles_to_lr() {
        let p = PipelineSpec::dyck_cfg().compile().unwrap();
        let b = p.cfg_backend().expect("cfg pipeline");
        assert!(b.lr().is_some(), "Dyck is LALR(1)");
        assert!(b.conflicts().is_none());
        assert!(p.parser().is_none(), "no verified transformer here");
        assert!(p.backend().is_none(), "no DFA either");
        let parens = Parens::new();
        let w = parens.alphabet.parse_str("(()())").unwrap();
        let outcome = p.parse(&w).unwrap();
        let tree = outcome.accepted().unwrap();
        assert_eq!(tree, &parse_dyck_string(&parens, &w).unwrap());
        assert!(p.accepts(&w));
        assert!(!p.accepts(&parens.alphabet.parse_str(")(").unwrap()));
    }

    #[test]
    fn conflicted_cfg_falls_back_to_earley() {
        // S ::= S S | a — ambiguous, hence conflicted, hence Earley.
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let cfg = Cfg::new(
            s.clone(),
            vec!["S".to_owned()],
            vec![vec![
                Production {
                    rhs: vec![GSym::N(0), GSym::N(0)],
                },
                Production {
                    rhs: vec![GSym::T(a)],
                },
            ]],
            0,
        );
        let p = PipelineSpec::cfg("ambiguous", cfg).compile().unwrap();
        let b = p.cfg_backend().unwrap();
        assert!(b.lr().is_none());
        let report = b.conflicts().expect("conflicts are preserved");
        assert!(!report.conflicts.is_empty());
        // The fallback still serves (and certifies) parses.
        let w = s.parse_str("aaa").unwrap();
        let outcome = p.parse(&w).unwrap();
        assert!(outcome.is_accept());
        assert_eq!(outcome.accepted().unwrap().flatten(), w);
        assert!(!p.parse(&s.parse_str("b").unwrap()).unwrap().is_accept());
    }

    #[test]
    fn lexed_pipeline_parses_raw_json_end_to_end() {
        let p = PipelineSpec::json_lexed().compile().unwrap();
        let b = p.lexed_backend().expect("lexed pipeline");
        assert!(b.cfg_backend().lr().is_some(), "the JSON subset is LALR(1)");
        assert!(p.cfg_backend().is_none(), "not a plain CFG pipeline");
        assert!(p.parser().is_none() && p.backend().is_none());

        let input = "{\"k\": [1, 2, {\"deep\": null}], \"ok\": true}";
        // The fused hot path: no token stream materialized.
        let out = p.parse_str(input).unwrap();
        let StrOutcome::Accept { tree, tokens } = out else {
            panic!("valid JSON subset must parse: {out:?}");
        };
        assert!(tokens.is_none(), "the fused path never materializes");
        // The materializing variant agrees on the tree and yields the
        // certified stream.
        let out = b.parse_str_tokens(input).unwrap();
        let StrOutcome::Accept {
            tree: tree2,
            tokens,
        } = out
        else {
            panic!("valid JSON subset must parse: {out:?}");
        };
        assert_eq!(tree, tree2, "fused and materializing paths agree");
        let tokens = tokens.expect("the materializing path reports tokens");
        // Double certification is re-checkable from the outside too:
        // the tree's yield is the token string…
        assert_eq!(&tree.flatten(), tokens.yield_string());
        validate(&tree, p.grammar(), tokens.yield_string()).unwrap();
        // …and the lexer's spans tile the raw text.
        b.lexer().certify(input, tokens.tokens()).unwrap();
        assert!(p.accepts_str(input));
    }

    #[test]
    fn lexed_rejections_point_at_bytes() {
        let p = PipelineSpec::json_lexed().compile().unwrap();
        // Lexical error: '?' is not in the character alphabet.
        match p.parse_str("{\"a\": ?}").unwrap() {
            StrOutcome::RejectLex(e) => {
                assert_eq!(e.at, 6);
                assert_eq!(e.found, '?');
            }
            other => panic!("expected a lex rejection, got {other:?}"),
        }
        // Parse error: the offending token's byte span is reported.
        match p.parse_str("{\"a\" 1}").unwrap() {
            StrOutcome::RejectParse { span, message, .. } => {
                assert_eq!((span.start, span.end), (5, 6), "the NUM token");
                assert!(message.contains("expected"), "{message}");
            }
            other => panic!("expected a parse rejection, got {other:?}"),
        }
        // Unexpected end of input: empty span at the end.
        match p.parse_str("{\"a\":").unwrap() {
            StrOutcome::RejectParse { span, .. } => {
                assert_eq!((span.start, span.end), (5, 5));
            }
            other => panic!("expected a parse rejection, got {other:?}"),
        }
        assert!(!p.accepts_str("{\"a\": ?}"));
        assert!(!p.accepts_str("{\"a\" 1}"));
    }

    #[test]
    fn lexed_specs_intern_their_cache_identity() {
        let a = PipelineSpec::json_lexed();
        let b = PipelineSpec::lexed_cfg(
            "other-label",
            lambek_lex::demo::json_spec(),
            lambek_lex::demo::json_cfg(),
        );
        assert_eq!(a, b, "labels are not part of the identity");
        assert_eq!(a.key(), b.key());
        assert_ne!(a.key(), PipelineSpec::arith_lexed().key());
        assert_ne!(a.key(), PipelineSpec::dyck_cfg().key());
        // Same grammar, different lexer ⇒ different pipeline.
        let sigma = lambek_lex::demo::json_chars();
        let mut builder = lambek_lex::LexSpecBuilder::new(sigma.clone());
        for r in lambek_lex::demo::json_spec().rules() {
            builder = if r.skip {
                builder.skip_re(&r.name, r.regex.clone()).unwrap()
            } else {
                builder.token_re(&r.name, r.regex.clone()).unwrap()
            };
        }
        let respaced = builder.skip("WS2", "::*").unwrap();
        let variant = PipelineSpec::lexed_cfg(
            "json-lexed",
            respaced.build().unwrap(),
            lambek_lex::demo::json_cfg(),
        );
        assert_ne!(a.key(), variant.key());
    }

    #[test]
    fn lexed_alphabet_mismatch_is_a_compile_error() {
        // Arithmetic lexer in front of the JSON grammar: the token
        // alphabets differ, and compile must say so.
        let spec = PipelineSpec::lexed_cfg(
            "mismatched",
            lambek_lex::demo::arith_spec(),
            lambek_lex::demo::json_cfg(),
        );
        match spec.compile() {
            Err(EngineError::Compile(m)) => assert!(m.contains("token alphabet"), "{m}"),
            other => panic!("expected a compile error, got {other:?}"),
        }
    }

    #[test]
    fn lexed_pipeline_still_parses_pretokenized_strings() {
        // parse(&GString) on a lexed pipeline goes straight to the
        // token-level backend — the batch `parse_many` path.
        let p = PipelineSpec::arith_lexed().compile().unwrap();
        let t = lambek_automata::lookahead::ArithTokens::new();
        let w: GString = [t.num, t.add, t.num].into_iter().collect();
        assert!(p.parse(&w).unwrap().is_accept());
        assert!(p.accepts(&w));
        // And the raw-text form of the same sentence agrees.
        assert!(p.parse_str("12 + 3").unwrap().is_accept());
    }

    #[test]
    fn non_lexed_parse_str_reads_chars() {
        let p = PipelineSpec::dyck_cfg().compile().unwrap();
        assert!(p.parse_str("(()())").unwrap().is_accept());
        assert!(p.accepts_str("(()())"));
        match p.parse_str("(()").unwrap() {
            StrOutcome::RejectParse { span, tokens, .. } => {
                assert_eq!((span.start, span.end), (0, 3), "whole-input span");
                assert!(tokens.is_none(), "no lexer, no token stream");
            }
            other => panic!("expected a parse rejection, got {other:?}"),
        }
        match p.parse_str("(x)").unwrap() {
            StrOutcome::RejectLex(e) => {
                assert_eq!((e.at, e.found), (1, 'x'));
            }
            other => panic!("expected a lex rejection, got {other:?}"),
        }
    }

    #[test]
    fn cfg_rejections_carry_the_top_witness() {
        let p = PipelineSpec::dyck_cfg().compile().unwrap();
        let parens = Parens::new();
        let w = parens.alphabet.parse_str("(()").unwrap();
        match p.parse(&w).unwrap() {
            ParseOutcome::Reject(t) => {
                assert_eq!(t, ParseTree::Top(w.clone()), "⊤-parse of the input");
                assert_eq!(t.flatten(), w, "yield-correct even on rejection");
            }
            ParseOutcome::Accept(_) => panic!("(() is unbalanced"),
        }
    }
}
