//! Std-only, lock-light observability primitives for the serving tier.
//!
//! Three layers, each independently usable:
//!
//! * **Instruments** — [`Counter`], [`Gauge`], and [`AtomicHistogram`]
//!   are plain relaxed atomics: recording is a single `fetch_add` (two
//!   for histograms), safe to call from any thread, never blocking.
//!   [`Histogram`] is the mergeable point-in-time snapshot type the
//!   engine's latency histograms are built on.
//! * **Registry and encoders** — a [`Registry`] hands out named
//!   instruments (registered once, by name) and [`Registry::gather`]s
//!   them into [`Metric`] samples, which [`prometheus_text`] and
//!   [`json_text`] encode with zero dependencies.
//! * **Traces** — a [`Trace`] is a per-request sequence of timestamped
//!   stage spans ([`TraceSpan`]), recorded through the [`Recorder`]
//!   trait so instrumented code can be generic over "tracing on"
//!   ([`Trace`]) and "tracing off" ([`NoopRecorder`], which compiles to
//!   nothing). A [`TraceRing`] retains the last N completed traces for
//!   post-mortem inspection.
//!
//! Everything here is `std`-only and allocation-free on the record
//! path (traces allocate only when spans are appended, which only
//! happens when tracing is enabled).

#![deny(missing_docs)]

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Number of power-of-two latency buckets in a [`Histogram`]: bucket
/// `i` counts durations in `[2^i, 2^{i+1})` nanoseconds (bucket 0
/// covers `[0, 2)`, the last bucket is unbounded above).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A mergeable point-in-time histogram of durations in power-of-two
/// nanosecond buckets.
///
/// This is the *snapshot* type: plain `u64`s, `Copy`, comparable, and
/// mergeable with [`Histogram::merge`]. The live, concurrently-written
/// counterpart is [`AtomicHistogram`]; [`AtomicHistogram::snapshot`]
/// produces one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Histogram {
    /// Bucket `i` counts samples in `[2^i, 2^{i+1})` nanoseconds
    /// (bucket 0 covers `[0, 2)`; the last bucket is unbounded).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all recorded durations, in nanoseconds (saturating).
    pub sum_nanos: u64,
}

/// Bucket index for a duration of `n` nanoseconds.
#[inline]
fn bucket_index(n: u64) -> usize {
    let n = n.max(1);
    ((63 - n.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
}

/// Nanosecond count for a `Duration`, saturating at `u64::MAX`.
#[inline]
fn duration_nanos(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

impl Histogram {
    /// Records one duration.
    pub fn record(&mut self, elapsed: Duration) {
        let n = duration_nanos(elapsed);
        self.buckets[bucket_index(n)] += 1;
        self.sum_nanos = self.sum_nanos.saturating_add(n);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The smallest duration (in nanoseconds) that lands in bucket `i`.
    pub fn bucket_floor_nanos(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << i
        }
    }

    /// An upper bound (in nanoseconds) for the `q`-quantile of the
    /// recorded durations: the ceiling of the bucket the quantile rank
    /// falls in. `None` when the histogram is empty.
    pub fn quantile_nanos(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(1u64 << (i + 1).min(63));
            }
        }
        None
    }

    /// Adds every sample of `other` into `self`. Merging is exact:
    /// buckets and sums add componentwise, so merging per-shard
    /// histograms equals recording every sample into one.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.sum_nanos = self.sum_nanos.saturating_add(other.sum_nanos);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.count();
        if total == 0 {
            return write!(f, "histogram(empty)");
        }
        let q = |q: f64| self.quantile_nanos(q).unwrap_or(0);
        write!(
            f,
            "histogram(count={total}, sum={}ns, p50\u{2264}{}ns, p90\u{2264}{}ns, p99\u{2264}{}ns)",
            self.sum_nanos,
            q(0.5),
            q(0.9),
            q(0.99)
        )
    }
}

/// The live, concurrently-written counterpart of [`Histogram`]: every
/// [`AtomicHistogram::record`] is two relaxed `fetch_add`s, safe from
/// any thread.
#[derive(Debug, Default)]
pub struct AtomicHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum_nanos: AtomicU64,
}

impl AtomicHistogram {
    /// A fresh, empty histogram.
    pub fn new() -> AtomicHistogram {
        AtomicHistogram::default()
    }

    /// Records one duration (relaxed; never blocks).
    pub fn record(&self, elapsed: Duration) {
        let n = duration_nanos(elapsed);
        self.buckets[bucket_index(n)].fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(n, Ordering::Relaxed);
    }

    /// A point-in-time copy. Under concurrent recording the buckets
    /// and sum are each individually exact but may straddle a record
    /// (monotone counters — never torn, at worst one sample apart).
    pub fn snapshot(&self) -> Histogram {
        let mut h = Histogram {
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            ..Histogram::default()
        };
        for (dst, src) in h.buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        h
    }
}

/// A monotone event counter (relaxed atomic `u64`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable instantaneous value (relaxed atomic `i64`) — queue
/// depths, resident weights, anything that goes up *and* down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A fresh gauge at zero.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One instrument's value at gather time.
///
/// The histogram variant is 33 words wide, dwarfing the scalar ones;
/// that is fine — `MetricValue`s exist only transiently inside a
/// gather (a few dozen per scrape), never in hot per-request state,
/// so boxing would buy nothing but an allocation per sample.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A monotone counter.
    Counter(u64),
    /// An instantaneous value.
    Gauge(f64),
    /// A duration histogram snapshot.
    Histogram(Histogram),
}

/// One labeled sample of a metric.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Label key/value pairs (may be empty).
    pub labels: Vec<(String, String)>,
    /// The sample's value.
    pub value: MetricValue,
}

/// A named metric with one or more labeled samples — the unit both
/// encoders consume.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric name (`[a-zA-Z_:][a-zA-Z0-9_:]*` for Prometheus).
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// The samples; all must share the same value kind.
    pub samples: Vec<Sample>,
}

impl Metric {
    /// A single unlabeled sample.
    pub fn single(name: &str, help: &str, value: MetricValue) -> Metric {
        Metric {
            name: name.to_string(),
            help: help.to_string(),
            samples: vec![Sample {
                labels: Vec::new(),
                value,
            }],
        }
    }
}

enum Instrument {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<AtomicHistogram>),
}

struct Registered {
    name: String,
    help: String,
    instrument: Instrument,
}

/// A set of named instruments, each registered once; [`Registry::gather`]
/// snapshots them all into [`Metric`]s for the encoders.
///
/// The registry lock is taken only on registration and gather — never
/// on the record path (instruments are shared out as `Arc`s).
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Vec<Registered>>,
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = self
            .inner
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|r| r.name.clone())
            .collect();
        f.debug_struct("Registry").field("metrics", &names).finish()
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn register<T>(
        &self,
        name: &str,
        help: &str,
        matching: impl Fn(&Instrument) -> Option<Arc<T>>,
        fresh: impl FnOnce() -> (Arc<T>, Instrument),
    ) -> Arc<T> {
        let mut inner = self.inner.lock().expect("obs registry poisoned");
        if let Some(existing) = inner.iter().find(|r| r.name == name) {
            return matching(&existing.instrument).unwrap_or_else(|| {
                panic!("metric {name:?} already registered with a different kind")
            });
        }
        let (handle, instrument) = fresh();
        inner.push(Registered {
            name: name.to_string(),
            help: help.to_string(),
            instrument,
        });
        handle
    }

    /// The counter named `name`, registering it on first use. Later
    /// calls with the same name return the same counter (and ignore
    /// `help`).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::Counter(c) => Some(c.clone()),
                _ => None,
            },
            || {
                let c = Arc::new(Counter::new());
                (c.clone(), Instrument::Counter(c))
            },
        )
    }

    /// The gauge named `name`, registering it on first use (see
    /// [`Registry::counter`] for the once-only contract).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::Gauge(g) => Some(g.clone()),
                _ => None,
            },
            || {
                let g = Arc::new(Gauge::new());
                (g.clone(), Instrument::Gauge(g))
            },
        )
    }

    /// The histogram named `name`, registering it on first use (see
    /// [`Registry::counter`] for the once-only contract).
    ///
    /// # Panics
    ///
    /// If `name` is already registered as a different instrument kind.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<AtomicHistogram> {
        self.register(
            name,
            help,
            |i| match i {
                Instrument::Histogram(h) => Some(h.clone()),
                _ => None,
            },
            || {
                let h = Arc::new(AtomicHistogram::new());
                (h.clone(), Instrument::Histogram(h))
            },
        )
    }

    /// Snapshots every registered instrument, in registration order.
    pub fn gather(&self) -> Vec<Metric> {
        self.inner
            .lock()
            .expect("obs registry poisoned")
            .iter()
            .map(|r| {
                let value = match &r.instrument {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get() as f64),
                    Instrument::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                Metric::single(&r.name, &r.help, value)
            })
            .collect()
    }
}

fn prometheus_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn label_escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", label_escape(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{v}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

/// Formats a float the way Prometheus exposition expects (shortest
/// round-trippable decimal; `inf` spelled `+Inf`).
fn prom_float(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v}")
    } else {
        format!("{v:e}")
    }
}

/// Encodes metrics in the Prometheus text exposition format (version
/// 0.0.4): `# HELP` / `# TYPE` headers followed by samples, histograms
/// as cumulative `_bucket{le=...}` series (bucket bounds in seconds)
/// plus `_sum` (seconds) and `_count`.
pub fn prometheus_text(metrics: &[Metric]) -> String {
    let mut out = String::new();
    for m in metrics {
        if m.samples.is_empty() {
            continue;
        }
        let kind = match m.samples[0].value {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        };
        out.push_str(&format!(
            "# HELP {} {}\n# TYPE {} {}\n",
            m.name,
            prometheus_escape(&m.help),
            m.name,
            kind
        ));
        for s in &m.samples {
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("{}{} {v}\n", m.name, label_block(&s.labels, None)));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!(
                        "{}{} {}\n",
                        m.name,
                        label_block(&s.labels, None),
                        prom_float(*v)
                    ));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets.iter().enumerate() {
                        cum += c;
                        let le = if i == HISTOGRAM_BUCKETS - 1 {
                            "+Inf".to_string()
                        } else {
                            // Upper bound of bucket i, in seconds.
                            prom_float(Histogram::bucket_floor_nanos(i + 1) as f64 / 1e9)
                        };
                        out.push_str(&format!(
                            "{}_bucket{} {cum}\n",
                            m.name,
                            label_block(&s.labels, Some(("le", &le)))
                        ));
                    }
                    out.push_str(&format!(
                        "{}_sum{} {}\n",
                        m.name,
                        label_block(&s.labels, None),
                        prom_float(h.sum_nanos as f64 / 1e9)
                    ));
                    out.push_str(&format!(
                        "{}_count{} {cum}\n",
                        m.name,
                        label_block(&s.labels, None)
                    ));
                }
            }
        }
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Encodes metrics as a stable JSON snapshot: metrics sorted by name,
/// labels sorted by key, histograms as lossless
/// `{"count", "sum_nanos", "buckets"}` objects. Two gathers of
/// identical instrument state produce byte-identical output.
pub fn json_text(metrics: &[Metric]) -> String {
    let mut sorted: Vec<&Metric> = metrics.iter().collect();
    sorted.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::from("{\"metrics\":[");
    for (mi, m) in sorted.iter().enumerate() {
        if mi > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"name\":\"{}\",\"help\":\"{}\",\"samples\":[",
            json_escape(&m.name),
            json_escape(&m.help)
        ));
        for (si, s) in m.samples.iter().enumerate() {
            if si > 0 {
                out.push(',');
            }
            let mut labels: Vec<&(String, String)> = s.labels.iter().collect();
            labels.sort_by(|a, b| a.0.cmp(&b.0));
            out.push_str("{\"labels\":{");
            for (li, (k, v)) in labels.iter().enumerate() {
                if li > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str("},");
            match &s.value {
                MetricValue::Counter(v) => {
                    out.push_str(&format!("\"type\":\"counter\",\"value\":{v}"));
                }
                MetricValue::Gauge(v) => {
                    out.push_str(&format!("\"type\":\"gauge\",\"value\":{}", prom_float(*v)));
                }
                MetricValue::Histogram(h) => {
                    let buckets: Vec<String> = h.buckets.iter().map(|b| b.to_string()).collect();
                    out.push_str(&format!(
                        "\"type\":\"histogram\",\"value\":{{\"count\":{},\"sum_nanos\":{},\"buckets\":[{}]}}",
                        h.count(),
                        h.sum_nanos,
                        buckets.join(",")
                    ));
                }
            }
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}");
    out
}

/// A pipeline stage a [`TraceSpan`] can cover.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Waiting in the pool queue between submission and pickup.
    Queue,
    /// Pipeline-cache lookup (shared by a whole batch).
    Cache,
    /// Grammar/automaton compilation on a cache miss.
    Compile,
    /// DFA scan of the raw text (lexing).
    Scan,
    /// Lexeme re-validation by the certified-lexer contract.
    Certify,
    /// The LR (or Earley) parse drive.
    Parse,
    /// Report assembly after the drive returns.
    Finish,
    /// Self-hosted parse of a grammar-language text submission.
    Frontend,
    /// Elaboration of a parsed spec AST into a lexer + grammar pair.
    Elaborate,
}

impl Stage {
    /// The stage's stable lowercase name (used in exports and
    /// `Display`).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Cache => "cache",
            Stage::Compile => "compile",
            Stage::Scan => "scan",
            Stage::Certify => "certify",
            Stage::Parse => "parse",
            Stage::Finish => "finish",
            Stage::Frontend => "frontend",
            Stage::Elaborate => "elaborate",
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One timestamped stage of a request: `start` is the offset from the
/// trace's epoch (its creation), `duration` the stage's wall time.
/// Both are `Duration`s (not `Instant`s) so traces stay comparable and
/// serializable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSpan {
    /// Which stage this span covers.
    pub stage: Stage,
    /// Offset of the span's start from the trace epoch.
    pub start: Duration,
    /// Wall time the stage took.
    pub duration: Duration,
}

/// A completed per-request trace: an ordered list of stage spans plus
/// request identity. Spans are appended through the [`Recorder`]
/// impl and never overlap — their durations sum to at most
/// [`Trace::total`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    /// Human label for the workload (e.g. the pipeline spec name).
    pub label: String,
    /// Index of the request in its batch.
    pub request: usize,
    /// Input size in bytes (or symbols for symbolic inputs).
    pub input_bytes: usize,
    /// The stage spans, in the order they were recorded.
    pub spans: Vec<TraceSpan>,
    /// Wall time from the trace epoch to completion (set by the code
    /// that finishes the trace; `ZERO` while in flight).
    pub total: Duration,
}

impl Trace {
    /// A fresh trace with no spans.
    pub fn new(label: &str, request: usize, input_bytes: usize) -> Trace {
        Trace {
            label: label.to_string(),
            request,
            input_bytes,
            ..Trace::default()
        }
    }

    /// The duration of the first span covering `stage`, if recorded.
    pub fn span_duration(&self, stage: Stage) -> Option<Duration> {
        self.spans
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.duration)
    }

    /// The sum of all span durations (≤ [`Trace::total`] for a
    /// completed trace, since spans never overlap).
    pub fn spans_total(&self) -> Duration {
        self.spans.iter().map(|s| s.duration).sum()
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace[{} #{} {}B total={:?}]",
            self.label, self.request, self.input_bytes, self.total
        )?;
        for s in &self.spans {
            write!(f, " {}={:?}", s.stage, s.duration)?;
        }
        Ok(())
    }
}

/// The sink instrumented code records stage spans into. Implemented by
/// [`Trace`] (appends a span) and [`NoopRecorder`] (does nothing, so
/// the disabled path optimizes out).
pub trait Recorder {
    /// Records one stage span: `start` is the offset from the trace
    /// epoch, `duration` the stage's wall time.
    fn record(&mut self, stage: Stage, start: Duration, duration: Duration);
}

impl Recorder for Trace {
    fn record(&mut self, stage: Stage, start: Duration, duration: Duration) {
        self.spans.push(TraceSpan {
            stage,
            start,
            duration,
        });
    }
}

/// A [`Recorder`] that discards everything — the "tracing off" path.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    #[inline]
    fn record(&mut self, _stage: Stage, _start: Duration, _duration: Duration) {}
}

/// A bounded ring of the most recently completed traces.
///
/// Lock-light: writers claim a slot with one atomic ticket
/// (`fetch_add`) and hold that slot's mutex only for the `Option`
/// swap; readers lock one slot at a time. No writer ever blocks
/// another except on a same-slot collision (ring wrap under heavy
/// concurrency).
#[derive(Debug)]
pub struct TraceRing {
    slots: Box<[Mutex<Option<Trace>>]>,
    next: AtomicU64,
}

impl TraceRing {
    /// A ring retaining the last `capacity` traces (minimum 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicU64::new(0),
        }
    }

    /// Number of traces the ring retains.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total traces ever pushed (not capped by capacity).
    pub fn pushed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }

    /// Stores a completed trace, evicting the oldest when full.
    pub fn push(&self, trace: Trace) {
        let ticket = self.next.fetch_add(1, Ordering::Relaxed);
        let slot = (ticket % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().expect("trace ring slot poisoned") = Some(trace);
    }

    /// The retained traces, most recent first. Under concurrent pushes
    /// the snapshot is per-slot consistent (each trace is whole) but
    /// the ordering across slots is best-effort.
    pub fn recent(&self) -> Vec<Trace> {
        let pushed = self.pushed();
        let n = self.slots.len() as u64;
        let newest = pushed;
        let oldest = pushed.saturating_sub(n);
        let mut out = Vec::with_capacity((newest - oldest) as usize);
        let mut t = newest;
        while t > oldest {
            t -= 1;
            let slot = (t % n) as usize;
            if let Some(tr) = self.slots[slot]
                .lock()
                .expect("trace ring slot poisoned")
                .clone()
            {
                out.push(tr);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_record_merge_and_quantiles() {
        let mut a = Histogram::default();
        a.record(Duration::from_nanos(1));
        a.record(Duration::from_nanos(3));
        let mut b = Histogram::default();
        b.record(Duration::from_nanos(1000));
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum_nanos, 1004);
        assert_eq!(Histogram::bucket_floor_nanos(0), 0);
        assert_eq!(Histogram::bucket_floor_nanos(10), 1024);
        assert!(a.quantile_nanos(1.0).unwrap() >= 1000);
        assert!(Histogram::default().quantile_nanos(0.5).is_none());
        assert!(format!("{a}").contains("count=3"));
    }

    #[test]
    fn atomic_histogram_snapshot_matches_sequential() {
        let h = AtomicHistogram::new();
        let mut reference = Histogram::default();
        for n in [1u64, 2, 5, 100, 4096, 1 << 40] {
            h.record(Duration::from_nanos(n));
            reference.record(Duration::from_nanos(n));
        }
        assert_eq!(h.snapshot(), reference);
    }

    #[test]
    fn registry_registers_once_and_gathers() {
        let reg = Registry::new();
        let c1 = reg.counter("requests_total", "requests");
        let c2 = reg.counter("requests_total", "ignored");
        c1.add(3);
        c2.inc();
        assert_eq!(c1.get(), 4);
        let g = reg.gauge("depth", "queue depth");
        g.set(-2);
        let gathered = reg.gather();
        assert_eq!(gathered.len(), 2);
        assert_eq!(gathered[0].samples[0].value, MetricValue::Counter(4));
        assert_eq!(gathered[1].samples[0].value, MetricValue::Gauge(-2.0));
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_collisions() {
        let reg = Registry::new();
        let _c = reg.counter("x", "a counter");
        let _g = reg.gauge("x", "now a gauge");
    }

    #[test]
    fn prometheus_text_shape() {
        let mut h = Histogram::default();
        h.record(Duration::from_nanos(3));
        let metrics = vec![
            Metric::single("lambekd_hits_total", "cache hits", MetricValue::Counter(7)),
            Metric::single("lambekd_lat", "latency", MetricValue::Histogram(h)),
        ];
        let text = prometheus_text(&metrics);
        assert!(text.contains("# HELP lambekd_hits_total cache hits"));
        assert!(text.contains("# TYPE lambekd_hits_total counter"));
        assert!(text.contains("lambekd_hits_total 7"));
        assert!(text.contains("# TYPE lambekd_lat histogram"));
        assert!(text.contains("lambekd_lat_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("lambekd_lat_count 1"));
        assert!(text.ends_with('\n'));
    }

    #[test]
    fn json_text_is_stable_and_sorted() {
        let metrics = vec![
            Metric::single("zzz", "last", MetricValue::Gauge(1.5)),
            Metric::single("aaa", "first", MetricValue::Counter(2)),
        ];
        let a = json_text(&metrics);
        let b = json_text(&metrics);
        assert_eq!(a, b);
        assert!(a.find("\"aaa\"").unwrap() < a.find("\"zzz\"").unwrap());
        assert!(a.starts_with("{\"metrics\":["));
    }

    #[test]
    fn trace_records_spans_in_order() {
        let mut t = Trace::new("demo", 3, 128);
        t.record(
            Stage::Scan,
            Duration::from_micros(1),
            Duration::from_micros(5),
        );
        t.record(
            Stage::Parse,
            Duration::from_micros(6),
            Duration::from_micros(9),
        );
        t.total = Duration::from_micros(20);
        assert_eq!(t.span_duration(Stage::Scan), Some(Duration::from_micros(5)));
        assert_eq!(t.span_duration(Stage::Queue), None);
        assert!(t.spans_total() <= t.total);
        assert!(format!("{t}").contains("scan="));
    }

    #[test]
    fn trace_ring_bounds_and_recency() {
        let ring = TraceRing::new(3);
        for i in 0..7 {
            ring.push(Trace::new("r", i, 0));
        }
        assert_eq!(ring.pushed(), 7);
        let recent = ring.recent();
        assert_eq!(recent.len(), 3);
        let ids: Vec<usize> = recent.iter().map(|t| t.request).collect();
        assert_eq!(ids, vec![6, 5, 4]);
        assert_eq!(TraceRing::new(0).capacity(), 1);
    }
}
