//! # lambekd — Dependent Lambek Calculus in Rust (workspace facade)
//!
//! A reproduction of *Intrinsic Verification of Parsers and Formal
//! Grammar Theory in Dependent Lambek Calculus* (Schaefer, Varner,
//! Azevedo de Amorim, New — PLDI 2025). This crate re-exports the
//! workspace members; see the individual crates for the full story:
//!
//! * [`core`] (`lambek-core`) — grammars as linear types, parse
//!   transformers, the formal grammar theory of §4, and the deep syntax
//!   with its ordered-linear type checker;
//! * [`automata`] (`lambek-automata`) — NFAs/DFAs with trace grammars,
//!   determinization, the counter and lookahead automata;
//! * [`regex`] (`regex-grammars`) — the verified regex parser pipeline
//!   (Corollary 4.12) plus the derivative baseline;
//! * [`cfg`](mod@cfg) (`lambek-cfg`) — context-free grammars: Dyck (Theorem 4.13),
//!   arithmetic expressions (Theorem 4.14), and an Earley baseline;
//! * [`turing`] (`lambek-turing`) — unrestricted grammars via `Reify`
//!   (Construction 4.15).

pub use lambek_automata as automata;
pub use lambek_cfg as cfg;
pub use lambek_core as core;
pub use lambek_turing as turing;
pub use regex_grammars as regex;
