//! # lambekd — Dependent Lambek Calculus in Rust (workspace facade)
//!
//! A reproduction of *Intrinsic Verification of Parsers and Formal
//! Grammar Theory in Dependent Lambek Calculus* (Schaefer, Varner,
//! Azevedo de Amorim, New — PLDI 2025). This crate re-exports the
//! workspace members; see the individual crates for the full story:
//!
//! * [`core`] (`lambek-core`) — grammars as linear types, parse
//!   transformers, the formal grammar theory of §4, and the deep syntax
//!   with its ordered-linear type checker;
//! * [`automata`] (`lambek-automata`) — NFAs/DFAs with trace grammars,
//!   determinization, the counter and lookahead automata;
//! * [`regex`] (`regex-grammars`) — the verified regex parser pipeline
//!   (Corollary 4.12) plus the derivative baseline;
//! * [`cfg`](mod@cfg) (`lambek-cfg`) — context-free grammars: Dyck (Theorem 4.13),
//!   arithmetic expressions (Theorem 4.14), FIRST/FOLLOW analysis, and an
//!   Earley baseline with explicit ambiguity reporting;
//! * [`lr`] (`lambek-lr`) — certified LR(1)/LALR parsing for the
//!   deterministic fragment: dense ACTION/GOTO tables, structured
//!   conflict reports, and parse trees re-validated by the core checker;
//! * [`lex`] (`lambek-lex`) — certified lexing: prioritized token rules
//!   compiled to a tagged-accept DFA, a maximal-munch driver with
//!   last-accept backtracking, and token streams re-validated (span
//!   tiling + independent derivative re-matching) at the boundary;
//! * [`turing`] (`lambek-turing`) — unrestricted grammars via `Reify`
//!   (Construction 4.15);
//! * [`obs`] (`lambek-obs`) — observability primitives: mergeable
//!   latency histograms, atomic counters/gauges, a metrics registry
//!   with Prometheus/JSON encoders, and per-request stage traces;
//! * [`engine`] (`lambek-engine`) — the serving layer: a compile-once
//!   pipeline cache, batch parsing over scoped threads, push-mode
//!   streaming for DFA-backed parsers, and the metrics/tracing surface
//!   (`Engine::metrics_text`, `Engine::recent_traces`);
//! * [`frontend`] (`lambek-frontend`) — the grammar language: BNF-style
//!   productions plus prioritized token rules as *text*, parsed by a
//!   self-hosted bootstrap pipeline (the meta grammar is itself served
//!   through the certified lex + LALR machinery), elaborated into a
//!   validated lexer/grammar pair with span-carrying diagnostics, and
//!   compiled into the engine cache via `Engine::compile_text`.
//!
//! See `ARCHITECTURE.md` at the workspace root for the pipeline diagram
//! and the complete theorem ↔ module map.
//!
//! # Quickstart
//!
//! The paper's running example through the facade: compile the verified
//! regex parser of Corollary 4.12 for `(a*b)|c` and parse a string. The
//! returned tree is intrinsically verified — its yield *is* the input.
//!
//! ```
//! use lambekd::core::alphabet::Alphabet;
//! use lambekd::regex::ast::parse_regex;
//! use lambekd::regex::pipeline::RegexParser;
//!
//! let sigma = Alphabet::abc();
//! let re = parse_regex(&sigma, "(a*b)|c").unwrap();
//! let parser = RegexParser::compile(&sigma, re).unwrap();
//!
//! let w = sigma.parse_str("aab").unwrap();
//! let outcome = parser.parse(&w).unwrap();
//! let tree = outcome.accepted().expect("aab matches (a*b)|c");
//! assert_eq!(tree.flatten(), w);
//!
//! let bad = sigma.parse_str("ba").unwrap();
//! assert!(!parser.parse(&bad).unwrap().is_accept());
//! ```

#![deny(missing_docs)]

pub use lambek_automata as automata;
pub use lambek_cfg as cfg;
pub use lambek_core as core;
pub use lambek_engine as engine;
pub use lambek_frontend as frontend;
pub use lambek_lex as lex;
pub use lambek_lr as lr;
pub use lambek_obs as obs;
pub use lambek_turing as turing;
pub use regex_grammars as regex;
